#include "tpt/tpt_tree.h"

#include <algorithm>
#include <limits>

#include "tpt/tpt_node.h"

namespace hpm {

TptTree::TptTree() : TptTree(Options{}) {}

TptTree::TptTree(Options options) : options_(options) {
  HPM_CHECK(options_.max_node_entries >= 4);
  HPM_CHECK(options_.min_node_entries >= 2);
  HPM_CHECK(options_.min_node_entries * 2 <= options_.max_node_entries + 1);
  root_ = std::make_unique<Node>();
}

TptTree::~TptTree() = default;
TptTree::TptTree(TptTree&&) noexcept = default;
TptTree& TptTree::operator=(TptTree&&) noexcept = default;

TptTree::Node* TptTree::ChooseLeaf(const PatternKey& key,
                                   std::vector<Node*>* path,
                                   std::vector<int>* entry_indices) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    const int n = node->NumEntries();
    HPM_CHECK(n > 0);
    int best = -1;
    // (a) Containing entries: choose the smallest Size.
    size_t best_size = std::numeric_limits<size_t>::max();
    for (int i = 0; i < n; ++i) {
      if (node->keys[static_cast<size_t>(i)].ContainsKey(key)) {
        const size_t sz = node->keys[static_cast<size_t>(i)].Size();
        if (sz < best_size) {
          best_size = sz;
          best = i;
        }
      }
    }
    // (b) Intersecting entries: smallest Difference, ties by Size.
    if (best < 0) {
      size_t best_diff = std::numeric_limits<size_t>::max();
      for (int i = 0; i < n; ++i) {
        const PatternKey& ek = node->keys[static_cast<size_t>(i)];
        if (!ek.Intersects(key)) continue;
        const size_t diff = key.DifferenceFrom(ek);
        const size_t sz = ek.Size();
        if (diff < best_diff || (diff == best_diff && sz < best_size)) {
          best_diff = diff;
          best_size = sz;
          best = i;
        }
      }
    }
    // (c) Fallback: smallest Difference over all entries, ties by Size.
    if (best < 0) {
      size_t best_diff = std::numeric_limits<size_t>::max();
      best_size = std::numeric_limits<size_t>::max();
      for (int i = 0; i < n; ++i) {
        const PatternKey& ek = node->keys[static_cast<size_t>(i)];
        const size_t diff = key.DifferenceFrom(ek);
        const size_t sz = ek.Size();
        if (diff < best_diff || (diff == best_diff && sz < best_size)) {
          best_diff = diff;
          best_size = sz;
          best = i;
        }
      }
    }
    HPM_CHECK(best >= 0);
    path->push_back(node);
    entry_indices->push_back(best);
    node = node->children[static_cast<size_t>(best)].get();
  }
  return node;
}

namespace {

/// Symmetric key distance for split-seed picking: bits set in exactly one
/// of the two keys.
size_t KeyDistance(const PatternKey& a, const PatternKey& b) {
  return a.DifferenceFrom(b) + b.DifferenceFrom(a);
}

}  // namespace

std::unique_ptr<TptTree::Node> TptTree::SplitNode(Node* node) {
  const int n = node->NumEntries();
  HPM_CHECK(n > options_.max_node_entries);

  // Quadratic seed pick: the pair of entries with the largest symmetric
  // difference starts the two groups (signature-tree / R-tree idiom).
  int seed_a = 0, seed_b = 1;
  size_t worst = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const size_t d = KeyDistance(node->EntryKey(i), node->EntryKey(j));
      if (d > worst) {
        worst = d;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  PatternKey key_a = node->EntryKey(seed_a);
  PatternKey key_b = node->EntryKey(seed_b);
  std::vector<int> group_a{seed_a}, group_b{seed_b};

  // Assign remaining entries to the group whose union key grows least;
  // once a group must absorb everything left to reach min fill, it does.
  std::vector<int> rest;
  for (int i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(i);
  }
  for (size_t r = 0; r < rest.size(); ++r) {
    const int remaining = static_cast<int>(rest.size() - r);
    const int i = rest[r];
    const PatternKey& ek = node->EntryKey(i);
    bool to_a;
    if (static_cast<int>(group_a.size()) + remaining ==
        options_.min_node_entries) {
      to_a = true;
    } else if (static_cast<int>(group_b.size()) + remaining ==
               options_.min_node_entries) {
      to_a = false;
    } else {
      const size_t grow_a = ek.DifferenceFrom(key_a);
      const size_t grow_b = ek.DifferenceFrom(key_b);
      if (grow_a != grow_b) {
        to_a = grow_a < grow_b;
      } else {
        to_a = group_a.size() <= group_b.size();
      }
    }
    if (to_a) {
      group_a.push_back(i);
      key_a.UnionWith(ek);
    } else {
      group_b.push_back(i);
      key_b.UnionWith(ek);
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    std::vector<IndexedPattern> kept;
    kept.reserve(group_a.size());
    for (int i : group_a) {
      kept.push_back(std::move(node->patterns[static_cast<size_t>(i)]));
    }
    sibling->patterns.reserve(group_b.size());
    for (int i : group_b) {
      sibling->patterns.push_back(
          std::move(node->patterns[static_cast<size_t>(i)]));
    }
    node->patterns = std::move(kept);
  } else {
    std::vector<PatternKey> kept_keys;
    std::vector<std::unique_ptr<Node>> kept_children;
    kept_keys.reserve(group_a.size());
    kept_children.reserve(group_a.size());
    for (int i : group_a) {
      kept_keys.push_back(std::move(node->keys[static_cast<size_t>(i)]));
      kept_children.push_back(
          std::move(node->children[static_cast<size_t>(i)]));
    }
    sibling->keys.reserve(group_b.size());
    sibling->children.reserve(group_b.size());
    for (int i : group_b) {
      sibling->keys.push_back(std::move(node->keys[static_cast<size_t>(i)]));
      sibling->children.push_back(
          std::move(node->children[static_cast<size_t>(i)]));
    }
    node->keys = std::move(kept_keys);
    node->children = std::move(kept_children);
  }
  return sibling;
}

Status TptTree::Insert(IndexedPattern pattern) {
  // All keys in one tree must agree on part lengths.
  if (size_ > 0) {
    const Node* probe = root_.get();
    const PatternKey& existing = probe->EntryKey(0);
    if (existing.premise().size() != pattern.key.premise().size() ||
        existing.consequence().size() != pattern.key.consequence().size()) {
      return Status::InvalidArgument(
          "pattern key part lengths differ from the tree's");
    }
  }

  std::vector<Node*> path;
  std::vector<int> entry_indices;
  Node* leaf = ChooseLeaf(pattern.key, &path, &entry_indices);
  const PatternKey inserted_key = pattern.key;
  leaf->patterns.push_back(std::move(pattern));
  ++size_;

  // Enlarge the union keys along the path.
  for (size_t level = 0; level < path.size(); ++level) {
    path[level]
        ->keys[static_cast<size_t>(entry_indices[level])]
        .UnionWith(inserted_key);
  }

  // Split upward while nodes overflow.
  Node* node = leaf;
  int level = static_cast<int>(path.size()) - 1;
  while (node->NumEntries() > options_.max_node_entries) {
    std::unique_ptr<Node> sibling = SplitNode(node);
    if (level < 0) {
      // Root split: grow a new root above the two halves.
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->keys.push_back(node->UnionKey());
      new_root->keys.push_back(sibling->UnionKey());
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      root_ = std::move(new_root);
      break;
    }
    Node* parent = path[static_cast<size_t>(level)];
    const int idx = entry_indices[static_cast<size_t>(level)];
    parent->keys[static_cast<size_t>(idx)] = node->UnionKey();
    parent->keys.push_back(sibling->UnionKey());
    parent->children.push_back(std::move(sibling));
    node = parent;
    --level;
  }
  return Status::OK();
}

StatusOr<TptTree> TptTree::BulkLoad(std::vector<IndexedPattern> patterns) {
  return BulkLoad(std::move(patterns), Options{});
}

StatusOr<TptTree> TptTree::BulkLoad(std::vector<IndexedPattern> patterns,
                                    Options options) {
  TptTree tree(options);
  for (IndexedPattern& p : patterns) {
    HPM_RETURN_IF_ERROR(tree.Insert(std::move(p)));
  }
  return tree;
}

void TptTree::SearchNode(const Node* node, const PatternKey& query,
                         SearchMode mode,
                         std::vector<const IndexedPattern*>* out,
                         TptSearchStats* stats) const {
  if (stats != nullptr) ++stats->nodes_visited;
  const auto matches = [&](const PatternKey& key) {
    if (stats != nullptr) ++stats->entries_tested;
    return mode == SearchMode::kPremiseAndConsequence
               ? key.Intersects(query)
               : key.IntersectsConsequence(query);
  };
  if (node->is_leaf) {
    for (const IndexedPattern& p : node->patterns) {
      if (matches(p.key)) out->push_back(&p);
    }
    return;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (matches(node->keys[i])) {
      SearchNode(node->children[i].get(), query, mode, out, stats);
    }
  }
}

std::vector<const IndexedPattern*> TptTree::Search(
    const PatternKey& query, SearchMode mode, TptSearchStats* stats) const {
  std::vector<const IndexedPattern*> out;
  SearchInto(query, mode, &out, stats);
  return out;
}

void TptTree::SearchInto(const PatternKey& query, SearchMode mode,
                         std::vector<const IndexedPattern*>* out,
                         TptSearchStats* stats) const {
  out->clear();
  if (size_ == 0) return;
  SearchNode(root_.get(), query, mode, out, stats);
}

namespace {

/// Moves every pattern stored under `node` into `out`.
void CollectSubtree(TptTree::Node* node, std::vector<IndexedPattern>* out) {
  if (node->is_leaf) {
    for (IndexedPattern& p : node->patterns) out->push_back(std::move(p));
    node->patterns.clear();
    return;
  }
  for (auto& child : node->children) CollectSubtree(child.get(), out);
}

/// Removes matching patterns below `node`, dissolving underfull nodes
/// into `orphans`. Returns true when `node` itself must be removed from
/// its parent. Union keys of surviving internal entries are refreshed.
bool PruneNode(TptTree::Node* node, bool is_root, int min_entries,
               const std::function<bool(const IndexedPattern&)>& predicate,
               size_t* removed, std::vector<IndexedPattern>* orphans) {
  if (node->is_leaf) {
    auto& patterns = node->patterns;
    const size_t before = patterns.size();
    patterns.erase(
        std::remove_if(patterns.begin(), patterns.end(), predicate),
        patterns.end());
    *removed += before - patterns.size();
    if (!is_root && static_cast<int>(patterns.size()) < min_entries) {
      for (IndexedPattern& p : patterns) orphans->push_back(std::move(p));
      patterns.clear();
      return true;
    }
    return false;
  }

  for (size_t i = 0; i < node->children.size();) {
    if (PruneNode(node->children[i].get(), false, min_entries, predicate,
                  removed, orphans)) {
      node->children.erase(node->children.begin() + static_cast<long>(i));
      node->keys.erase(node->keys.begin() + static_cast<long>(i));
    } else {
      node->keys[i] = node->children[i]->UnionKey();
      ++i;
    }
  }
  if (!is_root && static_cast<int>(node->children.size()) < min_entries) {
    // Too few children left: dissolve the subtree, re-inserting its
    // surviving patterns (R-tree condense idiom).
    CollectSubtree(node, orphans);
    return true;
  }
  return false;
}

}  // namespace

size_t TptTree::RemoveIf(
    const std::function<bool(const IndexedPattern&)>& predicate) {
  if (size_ == 0) return 0;
  size_t removed = 0;
  std::vector<IndexedPattern> orphans;
  PruneNode(root_.get(), true, options_.min_node_entries, predicate,
            &removed, &orphans);

  // Shrink the root: an internal root with one child loses a level; an
  // internal root with none becomes an empty leaf.
  while (!root_->is_leaf && root_->NumEntries() == 1) {
    root_ = std::move(root_->children[0]);
  }
  if (!root_->is_leaf && root_->NumEntries() == 0) {
    root_ = std::make_unique<Node>();
  }

  HPM_CHECK(size_ >= removed + orphans.size());
  size_ -= removed + orphans.size();
  for (IndexedPattern& p : orphans) {
    HPM_CHECK(Insert(std::move(p)).ok());
  }
  return removed;
}

bool TptTree::Remove(int pattern_id) {
  return RemoveIf([pattern_id](const IndexedPattern& p) {
           return p.pattern_id == pattern_id;
         }) > 0;
}

int TptTree::Height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++h;
    node = node->children[0].get();
  }
  return h;
}

namespace {

size_t NodeMemoryBytes(const TptTree::Node* node) {
  size_t bytes = sizeof(TptTree::Node);
  for (const IndexedPattern& p : node->patterns) {
    bytes += sizeof(IndexedPattern) + p.key.MemoryBytes();
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    bytes += sizeof(PatternKey) + node->keys[i].MemoryBytes();
    bytes += sizeof(std::unique_ptr<TptTree::Node>);
    bytes += NodeMemoryBytes(node->children[i].get());
  }
  return bytes;
}

}  // namespace

size_t TptTree::MemoryBytes() const {
  return sizeof(TptTree) + NodeMemoryBytes(root_.get());
}

namespace {

Status CheckNode(const TptTree::Node* node, bool is_root, int min_entries,
                 int max_entries, int depth, int* leaf_depth) {
  const int n = node->NumEntries();
  if (n > max_entries) return Status::Internal("node overflow");
  if (!is_root && n < min_entries) return Status::Internal("node underflow");
  if (node->is_leaf) {
    if (!node->keys.empty() || !node->children.empty()) {
      return Status::Internal("leaf node has internal payload");
    }
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at different depths");
    }
    return Status::OK();
  }
  if (!node->patterns.empty()) {
    return Status::Internal("internal node has leaf payload");
  }
  if (node->keys.size() != node->children.size()) {
    return Status::Internal("keys/children size mismatch");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const TptTree::Node* child = node->children[i].get();
    // The parent entry key must equal the union of the child's keys.
    if (!(node->keys[i] == child->UnionKey())) {
      return Status::Internal("internal entry key != union of subtree");
    }
    HPM_RETURN_IF_ERROR(CheckNode(child, false, min_entries, max_entries,
                                  depth + 1, leaf_depth));
  }
  return Status::OK();
}

}  // namespace

Status TptTree::CheckInvariants() const {
  if (size_ == 0) return Status::OK();
  int leaf_depth = -1;
  return CheckNode(root_.get(), true, options_.min_node_entries,
                   options_.max_node_entries, 0, &leaf_depth);
}

}  // namespace hpm
