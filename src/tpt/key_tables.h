// Region-key and consequence-key tables (paper §V-A, Tables I & II).
//
// The region key table maps frequent-region ids to bit positions via the
// hash 2^id (the table itself need not be materialised — the hash is the
// id — but the premise-key length is the number of frequent regions).
// The consequence key table collects the distinct time offsets appearing
// as pattern consequences, sorts them, and assigns dense time ids.

#ifndef HPM_TPT_KEY_TABLES_H_
#define HPM_TPT_KEY_TABLES_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geo/trajectory.h"
#include "mining/apriori.h"
#include "mining/frequent_region.h"
#include "tpt/pattern_key.h"

namespace hpm {

/// Immutable encoder from patterns / queries to pattern keys.
class KeyTables {
 public:
  KeyTables() = default;

  /// Builds the tables from the mined regions and patterns: premise-key
  /// length = number of regions; consequence-key length = number of
  /// distinct consequence offsets among `patterns`.
  static KeyTables Build(const FrequentRegionSet& regions,
                         const std::vector<TrajectoryPattern>& patterns);

  /// Length of every premise key (number of frequent regions).
  size_t premise_key_length() const { return num_regions_; }

  /// Length of every consequence key (number of consequence offsets).
  size_t consequence_key_length() const {
    return consequence_offsets_.size();
  }

  /// The sorted consequence offsets (time id i -> offset).
  const std::vector<Timestamp>& consequence_offsets() const {
    return consequence_offsets_;
  }

  /// Time id of an offset, or -1 when no pattern concludes at it.
  int TimeIdForOffset(Timestamp offset) const;

  /// Offset of a time id. Precondition: 0 <= id < consequence count.
  Timestamp OffsetForTimeId(int time_id) const;

  /// Encodes a mined pattern. All of its region ids and its consequence
  /// offset must be known to the tables (they are, when the tables were
  /// built from the same mining run).
  PatternKey EncodePattern(const TrajectoryPattern& pattern,
                           const FrequentRegionSet& regions) const;

  /// Encodes a query: premise bits for the recently-visited regions,
  /// one consequence bit for the query offset. Returns NotFound when no
  /// pattern concludes at `query_offset` (FQP then falls back to the
  /// motion function).
  StatusOr<PatternKey> EncodeQuery(const std::vector<int>& premise_regions,
                                   Timestamp query_offset) const;

  /// EncodeQuery writing into `out`, whose bitmaps are resized and reused
  /// in place — the allocation-free variant for per-query scratch buffers.
  /// Same NotFound contract; `out` is valid only on OK.
  Status EncodeQueryInto(const std::vector<int>& premise_regions,
                         Timestamp query_offset, PatternKey* out) const;

  /// Encodes a BQP query: premise bits as above, consequence bits for
  /// *every* table offset inside [lo, hi] (inclusive, clamped). The
  /// consequence part is empty-bitted when the interval covers no offset.
  PatternKey EncodeQueryInterval(const std::vector<int>& premise_regions,
                                 Timestamp lo, Timestamp hi) const;

  /// EncodeQueryInterval writing into `out` (see EncodeQueryInto).
  void EncodeQueryIntervalInto(const std::vector<int>& premise_regions,
                               Timestamp lo, Timestamp hi,
                               PatternKey* out) const;

 private:
  DynamicBitset EncodePremise(const std::vector<int>& region_ids) const;

  /// EncodePremise into a reused bitmap.
  void EncodePremiseInto(const std::vector<int>& region_ids,
                         DynamicBitset* out) const;

  size_t num_regions_ = 0;
  std::vector<Timestamp> consequence_offsets_;
  std::unordered_map<Timestamp, int> offset_to_time_id_;
};

}  // namespace hpm

#endif  // HPM_TPT_KEY_TABLES_H_
