#include "tpt/key_tables.h"

#include <algorithm>

namespace hpm {

KeyTables KeyTables::Build(const FrequentRegionSet& regions,
                           const std::vector<TrajectoryPattern>& patterns) {
  KeyTables tables;
  tables.num_regions_ = regions.NumRegions();

  std::vector<Timestamp> offsets;
  offsets.reserve(patterns.size());
  for (const TrajectoryPattern& p : patterns) {
    offsets.push_back(regions.Region(p.consequence).offset);
  }
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  tables.consequence_offsets_ = std::move(offsets);
  for (size_t i = 0; i < tables.consequence_offsets_.size(); ++i) {
    tables.offset_to_time_id_.emplace(tables.consequence_offsets_[i],
                                      static_cast<int>(i));
  }
  return tables;
}

int KeyTables::TimeIdForOffset(Timestamp offset) const {
  const auto it = offset_to_time_id_.find(offset);
  return it == offset_to_time_id_.end() ? -1 : it->second;
}

Timestamp KeyTables::OffsetForTimeId(int time_id) const {
  HPM_CHECK(time_id >= 0 &&
            static_cast<size_t>(time_id) < consequence_offsets_.size());
  return consequence_offsets_[static_cast<size_t>(time_id)];
}

DynamicBitset KeyTables::EncodePremise(
    const std::vector<int>& region_ids) const {
  DynamicBitset premise(num_regions_);
  for (int id : region_ids) {
    HPM_CHECK(id >= 0 && static_cast<size_t>(id) < num_regions_);
    premise.Set(static_cast<size_t>(id));
  }
  return premise;
}

void KeyTables::EncodePremiseInto(const std::vector<int>& region_ids,
                                  DynamicBitset* out) const {
  out->Resize(num_regions_);
  out->Reset();
  for (int id : region_ids) {
    HPM_CHECK(id >= 0 && static_cast<size_t>(id) < num_regions_);
    out->Set(static_cast<size_t>(id));
  }
}

PatternKey KeyTables::EncodePattern(const TrajectoryPattern& pattern,
                                    const FrequentRegionSet& regions) const {
  DynamicBitset premise = EncodePremise(pattern.premise);
  DynamicBitset consequence(consequence_key_length());
  const int time_id =
      TimeIdForOffset(regions.Region(pattern.consequence).offset);
  HPM_CHECK(time_id >= 0);
  consequence.Set(static_cast<size_t>(time_id));
  return PatternKey(std::move(premise), std::move(consequence));
}

StatusOr<PatternKey> KeyTables::EncodeQuery(
    const std::vector<int>& premise_regions, Timestamp query_offset) const {
  const int time_id = TimeIdForOffset(query_offset);
  if (time_id < 0) {
    return Status::NotFound("no pattern concludes at the query offset");
  }
  DynamicBitset consequence(consequence_key_length());
  consequence.Set(static_cast<size_t>(time_id));
  return PatternKey(EncodePremise(premise_regions), std::move(consequence));
}

Status KeyTables::EncodeQueryInto(const std::vector<int>& premise_regions,
                                  Timestamp query_offset,
                                  PatternKey* out) const {
  const int time_id = TimeIdForOffset(query_offset);
  if (time_id < 0) {
    return Status::NotFound("no pattern concludes at the query offset");
  }
  EncodePremiseInto(premise_regions, &out->mutable_premise());
  DynamicBitset& consequence = out->mutable_consequence();
  consequence.Resize(consequence_key_length());
  consequence.Reset();
  consequence.Set(static_cast<size_t>(time_id));
  return Status::OK();
}

PatternKey KeyTables::EncodeQueryInterval(
    const std::vector<int>& premise_regions, Timestamp lo,
    Timestamp hi) const {
  DynamicBitset consequence(consequence_key_length());
  if (lo > hi) {
    return PatternKey(EncodePremise(premise_regions),
                      std::move(consequence));
  }
  // consequence_offsets_ is sorted; mark every offset in [lo, hi].
  const auto begin = std::lower_bound(consequence_offsets_.begin(),
                                      consequence_offsets_.end(), lo);
  const auto end = std::upper_bound(consequence_offsets_.begin(),
                                    consequence_offsets_.end(), hi);
  for (auto it = begin; it != end; ++it) {
    consequence.Set(static_cast<size_t>(it - consequence_offsets_.begin()));
  }
  return PatternKey(EncodePremise(premise_regions), std::move(consequence));
}

void KeyTables::EncodeQueryIntervalInto(
    const std::vector<int>& premise_regions, Timestamp lo, Timestamp hi,
    PatternKey* out) const {
  EncodePremiseInto(premise_regions, &out->mutable_premise());
  DynamicBitset& consequence = out->mutable_consequence();
  consequence.Resize(consequence_key_length());
  consequence.Reset();
  if (lo > hi) return;
  const auto begin = std::lower_bound(consequence_offsets_.begin(),
                                      consequence_offsets_.end(), lo);
  const auto end = std::upper_bound(consequence_offsets_.begin(),
                                    consequence_offsets_.end(), hi);
  for (auto it = begin; it != end; ++it) {
    consequence.Set(static_cast<size_t>(it - consequence_offsets_.begin()));
  }
}

}  // namespace hpm
