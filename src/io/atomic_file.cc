#include "io/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/fault_injection.h"
#include "io/eintr.h"

namespace hpm {

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + tmp + ": " +
                                   std::strerror(errno));
  }
  const Status data_fault = HPM_FAULT_HIT("io/atomic_write_data");
  bool wrote;
  if (!data_fault.ok()) {
    // Model the short write the site stands for: a prefix of the content
    // reaches the temp file, then the device fails. The torn temp file is
    // removed below — the target must stay untouched.
    std::fwrite(content.data(), 1, content.size() / 2, f);
    wrote = false;
  } else {
    wrote =
        std::fwrite(content.data(), 1, content.size(), f) == content.size();
  }
  const bool flushed = wrote && std::fflush(f) == 0;
  Status sync_fault = Status::OK();
  bool synced = false;
  if (flushed) {
    sync_fault = HPM_FAULT_HIT("io/atomic_write_sync");
    const int fd = ::fileno(f);
    synced =
        sync_fault.ok() && RetryOnEintr([&] { return ::fsync(fd); }) == 0;
  }
  const bool closed = std::fclose(f) == 0;
  if (!(wrote && synced && closed)) {
    std::remove(tmp.c_str());
    if (!data_fault.ok()) return data_fault;
    if (!sync_fault.ok()) return sync_fault;
    return Status::DataLoss("short write to " + tmp + ": " +
                            std::strerror(errno));
  }

  // The crash window a torn-write test cares about: the temp file is
  // complete and durable, but the target has not been replaced yet.
  const Status fault = HPM_FAULT_HIT("io/atomic_write");
  if (!fault.ok()) {
    std::remove(tmp.c_str());
    return fault;
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::DataLoss("cannot rename " + tmp + " to " +
                                           path + ": " +
                                           std::strerror(errno));
    std::remove(tmp.c_str());
    return status;
  }
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) FsyncDirectory(path.substr(0, slash));
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  std::string content;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::DataLoss("short read from " + path);
  }
  return content;
}

void FsyncDirectory(const std::string& dir) {
  const int fd = RetryOnEintr(
      [&] { return ::open(dir.c_str(), O_RDONLY | O_DIRECTORY); });
  if (fd < 0) return;
  RetryOnEintr([&] { return ::fsync(fd); });
  ::close(fd);
}

}  // namespace hpm
