#include "io/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "io/atomic_file.h"

namespace hpm {

namespace {

Status LineError(size_t line_number, const std::string& message) {
  return Status::InvalidArgument("csv line " + std::to_string(line_number) +
                                 ": " + message);
}

/// Splits a CSV record into exactly three fields; no quoting (the format
/// carries only numbers).
bool SplitRecord(const std::string& line, std::string out[3]) {
  size_t field = 0;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      if (field >= 3) return false;
      out[field++] = line.substr(start, i - start);
      start = i + 1;
    }
  }
  return field == 3;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return errno == 0 && end == s.c_str() + s.size();
}

bool ParseTimestamp(const std::string& s, Timestamp* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return errno == 0 && end == s.c_str() + s.size();
}

}  // namespace

StatusOr<Trajectory> ParseTrajectoryCsv(const std::string& csv) {
  std::istringstream stream(csv);
  std::string line;
  size_t line_number = 0;
  bool header_seen = false;
  Trajectory trajectory;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::string fields[3];
    if (!SplitRecord(line, fields)) {
      return LineError(line_number, "expected exactly 3 fields (t,x,y)");
    }
    if (!header_seen) {
      if (fields[0] != "t" || fields[1] != "x" || fields[2] != "y") {
        return LineError(line_number, "expected header 't,x,y'");
      }
      header_seen = true;
      continue;
    }
    Timestamp t = 0;
    Point p;
    if (!ParseTimestamp(fields[0], &t)) {
      return LineError(line_number, "bad timestamp '" + fields[0] + "'");
    }
    if (t != static_cast<Timestamp>(trajectory.size())) {
      return LineError(line_number,
                       "timestamps must be consecutive from 0; got " +
                           fields[0]);
    }
    if (!ParseDouble(fields[1], &p.x) || !ParseDouble(fields[2], &p.y)) {
      return LineError(line_number, "bad coordinate");
    }
    trajectory.Append(p);
  }
  if (!header_seen) {
    return Status::InvalidArgument("csv is empty (no header)");
  }
  return trajectory;
}

StatusOr<Trajectory> ReadTrajectoryCsv(const std::string& path) {
  // ReadFileToString checks ferror: a short read surfaces as DataLoss
  // instead of silently parsing a truncated (but well-formed) prefix.
  StatusOr<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return ParseTrajectoryCsv(*content);
}

std::string FormatTrajectoryCsv(const Trajectory& trajectory) {
  std::string out = "t,x,y\n";
  char buf[96];
  for (size_t i = 0; i < trajectory.size(); ++i) {
    const Point& p = trajectory.points()[i];
    // %.17g is the shortest printf format that round-trips any double
    // exactly; store persistence relies on reloaded histories being
    // bit-identical to the saved ones.
    std::snprintf(buf, sizeof(buf), "%zu,%.17g,%.17g\n", i, p.x, p.y);
    out += buf;
  }
  return out;
}

Status WriteTrajectoryCsv(const Trajectory& trajectory,
                          const std::string& path) {
  return AtomicWriteFile(path, FormatTrajectoryCsv(trajectory))
      .Annotate("csv");
}

}  // namespace hpm
