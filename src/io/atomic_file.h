// Crash-safe whole-file IO.
//
// AtomicWriteFile gives the all-or-nothing guarantee persistence needs:
// after a crash at any instant, `path` holds either its previous content
// or the complete new content — never a torn prefix. The implementation
// is the classic write-to-temp + fsync + rename(2) dance (rename within
// a filesystem is atomic on POSIX).

#ifndef HPM_IO_ATOMIC_FILE_H_
#define HPM_IO_ATOMIC_FILE_H_

#include <string>

#include "common/status.h"

namespace hpm {

/// Replaces `path` with `content` atomically: writes `path`.tmp, flushes
/// it to disk, and renames it over `path`. On any failure the temp file
/// is removed and `path` is untouched. Unavailable is returned for
/// injected transient faults; real IO errors map to InvalidArgument
/// (unopenable path) or DataLoss (short write / failed flush).
Status AtomicWriteFile(const std::string& path, const std::string& content);

/// Reads all of `path`. Short reads are detected (ferror is checked), so
/// a successful return really is the whole file.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Best-effort fsync of a directory, making renames inside it durable.
/// Failures are ignored (some filesystems reject directory fsync).
void FsyncDirectory(const std::string& dir);

}  // namespace hpm

#endif  // HPM_IO_ATOMIC_FILE_H_
