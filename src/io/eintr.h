// EINTR-safe syscall wrappers.
//
// A signal delivered during read/write/fsync makes the call fail with
// EINTR even though nothing is wrong with the device. Before these
// helpers, a signal landing inside a WAL fdatasync tripped the
// disk-fault degradation path (store.wal_disabled) spuriously. Every
// raw syscall in io/ and net/ now goes through RetryOnEintr (whole-call
// retry) or WriteAllFd/ReadFullFd (partial-transfer + EINTR loops).

#ifndef HPM_IO_EINTR_H_
#define HPM_IO_EINTR_H_

#include <cerrno>
#include <cstddef>

#include <sys/types.h>
#include <unistd.h>

namespace hpm {

/// Calls `fn` until it returns something other than -1/EINTR. `fn` must
/// be an idempotent syscall-style callable returning a signed integer
/// with the -1-and-errno error convention (fsync, fdatasync, open,
/// close-less calls, single read/write attempts, poll without a
/// deadline adjustment).
template <typename Fn>
auto RetryOnEintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) result;
  do {
    result = fn();
  } while (result < 0 && errno == EINTR);
  return result;
}

/// Writes all `n` bytes to `fd`, resuming across EINTR and short
/// writes. Returns `n` on success, -1 (with errno set) on a real
/// failure; a zero-byte write is treated as out of space (errno ENOSPC).
inline ssize_t WriteAllFd(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t written =
        RetryOnEintr([&] { return ::write(fd, p + done, n - done); });
    if (written < 0) return -1;
    if (written == 0) {
      errno = ENOSPC;
      return -1;
    }
    done += static_cast<size_t>(written);
  }
  return static_cast<ssize_t>(done);
}

/// Reads exactly `n` bytes from `fd`, resuming across EINTR and short
/// reads. Returns the number of bytes read: `n` on success, fewer on
/// EOF, -1 (with errno set) on a real failure.
inline ssize_t ReadFullFd(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t got =
        RetryOnEintr([&] { return ::read(fd, p + done, n - done); });
    if (got < 0) return -1;
    if (got == 0) break;  // EOF
    done += static_cast<size_t>(got);
  }
  return static_cast<ssize_t>(done);
}

}  // namespace hpm

#endif  // HPM_IO_EINTR_H_
