// CSV import/export for trajectories.
//
// Real deployments feed GPS logs, not generators; this module reads and
// writes the minimal interchange format
//
//     t,x,y
//     0,4321.5,878.0
//     1,4330.2,880.1
//
// with a required header row, strictly consecutive integer timestamps
// starting at 0 (the paper's unit-sampled trajectory model), and one
// decimal point per coordinate. Lines that are empty or start with '#'
// are skipped.

#ifndef HPM_IO_CSV_H_
#define HPM_IO_CSV_H_

#include <string>

#include "common/status.h"
#include "geo/trajectory.h"

namespace hpm {

/// Parses a trajectory from CSV text. Returns InvalidArgument with a
/// line-numbered message on the first malformed record.
StatusOr<Trajectory> ParseTrajectoryCsv(const std::string& csv);

/// Reads a trajectory from a CSV file.
StatusOr<Trajectory> ReadTrajectoryCsv(const std::string& path);

/// Renders a trajectory as CSV text (header + one row per sample).
std::string FormatTrajectoryCsv(const Trajectory& trajectory);

/// Writes a trajectory to a CSV file.
Status WriteTrajectoryCsv(const Trajectory& trajectory,
                          const std::string& path);

}  // namespace hpm

#endif  // HPM_IO_CSV_H_
