#include "io/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "io/atomic_file.h"
#include "io/eintr.h"

namespace hpm {

namespace {

constexpr char kWalMagic[8] = {'H', 'P', 'M', 'W', 'A', 'L', '1', '\0'};
constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc
constexpr size_t kHeaderPayloadBytes = sizeof(kWalMagic) + 4 + 8 + 8;
// Record payloads are tens of bytes; anything past this bound is a
// corrupt length field, not a large record.
constexpr uint32_t kMaxPayloadBytes = 1 << 20;

void PutU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutF64(std::string* out, double v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double GetF64(const char* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::string FrameFor(const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame += payload;
  return frame;
}

std::string HeaderPayload(int shard, uint64_t seq, uint64_t base_gen) {
  std::string payload;
  payload.reserve(kHeaderPayloadBytes);
  payload.append(kWalMagic, sizeof(kWalMagic));
  PutU32(&payload, static_cast<uint32_t>(shard));
  PutU64(&payload, seq);
  PutU64(&payload, base_gen);
  return payload;
}

bool ParseHeaderPayload(const std::string& payload, int* shard,
                        uint64_t* seq, uint64_t* base_gen) {
  if (payload.size() != kHeaderPayloadBytes) return false;
  if (std::memcmp(payload.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return false;
  }
  const char* p = payload.data() + sizeof(kWalMagic);
  *shard = static_cast<int>(GetU32(p));
  *seq = GetU64(p + 4);
  *base_gen = GetU64(p + 12);
  return true;
}

std::string RecordPayload(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutU64(&payload, static_cast<uint64_t>(record.id));
  if (record.type == WalRecord::Type::kReport) {
    PutU64(&payload, static_cast<uint64_t>(record.t));
    PutF64(&payload, record.x);
    PutF64(&payload, record.y);
  } else if (record.type == WalRecord::Type::kRejectedBaseline) {
    PutU64(&payload, static_cast<uint64_t>(record.t));
  }
  return payload;
}

bool ParseRecordPayload(const std::string& payload, WalRecord* record) {
  if (payload.empty()) return false;
  const auto type = static_cast<WalRecord::Type>(payload[0]);
  const char* p = payload.data() + 1;
  switch (type) {
    case WalRecord::Type::kReport:
      if (payload.size() != 1 + 8 + 8 + 8 + 8) return false;
      record->type = type;
      record->id = static_cast<int64_t>(GetU64(p));
      record->t = static_cast<int64_t>(GetU64(p + 8));
      record->x = GetF64(p + 16);
      record->y = GetF64(p + 24);
      return true;
    case WalRecord::Type::kRejected:
      if (payload.size() != 1 + 8) return false;
      record->type = type;
      record->id = static_cast<int64_t>(GetU64(p));
      record->t = 0;
      record->x = 0.0;
      record->y = 0.0;
      return true;
    case WalRecord::Type::kRejectedBaseline:
      if (payload.size() != 1 + 8 + 8) return false;
      record->type = type;
      record->id = static_cast<int64_t>(GetU64(p));
      record->t = static_cast<int64_t>(GetU64(p + 8));
      record->x = 0.0;
      record->y = 0.0;
      return true;
  }
  return false;
}

std::string SegmentFileName(int shard, uint64_t seq) {
  return "wal-" + std::to_string(shard) + "-" + std::to_string(seq) + ".log";
}

bool ParseSegmentFileName(const std::string& name, int* shard,
                          uint64_t* seq) {
  int parsed_shard = 0;
  unsigned long long parsed_seq = 0;  // NOLINT: sscanf needs the C type
  char tail = '\0';
  if (std::sscanf(name.c_str(), "wal-%d-%llu.lo%c", &parsed_shard,
                  &parsed_seq, &tail) != 3 ||
      tail != 'g' || parsed_shard < 0) {
    return false;
  }
  if (name != SegmentFileName(parsed_shard, parsed_seq)) return false;
  *shard = parsed_shard;
  *seq = static_cast<uint64_t>(parsed_seq);
  return true;
}

/// What a frame boundary scan found at one offset.
enum class FrameScan { kOk, kTornTail, kCorrupt };

/// Extracts the frame at `offset`. kTornTail means the frame runs past
/// EOF or is the physically last frame with a bad checksum (a crash
/// mid-overwrite looks the same as a crash mid-append); kCorrupt means a
/// provably bad frame with more data after it.
FrameScan ScanFrame(const std::string& content, size_t offset,
                    std::string* payload, size_t* next_offset) {
  const size_t remaining = content.size() - offset;
  if (remaining < kFrameHeaderBytes) return FrameScan::kTornTail;
  const uint32_t length = GetU32(content.data() + offset);
  if (length > kMaxPayloadBytes) return FrameScan::kCorrupt;
  if (remaining < kFrameHeaderBytes + length) return FrameScan::kTornTail;
  const uint32_t stored_crc = GetU32(content.data() + offset + 4);
  const char* data = content.data() + offset + kFrameHeaderBytes;
  const bool last_frame =
      offset + kFrameHeaderBytes + length == content.size();
  if (Crc32(static_cast<const void*>(data), length) != stored_crc) {
    return last_frame ? FrameScan::kTornTail : FrameScan::kCorrupt;
  }
  payload->assign(data, length);
  *next_offset = offset + kFrameHeaderBytes + length;
  return FrameScan::kOk;
}

}  // namespace

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kEveryRecord:
      return "every_record";
    case WalSyncPolicy::kInterval:
      return "interval";
    case WalSyncPolicy::kNone:
      return "none";
  }
  return "unknown";
}

std::string EncodeWalFrame(const WalRecord& record) {
  return FrameFor(RecordPayload(record));
}

std::vector<WalSegmentInfo> ListWalSegments(const std::string& dir) {
  std::vector<WalSegmentInfo> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    WalSegmentInfo info;
    if (!ParseSegmentFileName(entry.path().filename().string(), &info.shard,
                              &info.seq)) {
      continue;
    }
    info.path = entry.path().string();
    // The header frame is all that is read here; a torn or corrupt one
    // leaves header_ok false and the caller quarantines the file.
    const int fd =
        RetryOnEintr([&] { return ::open(info.path.c_str(), O_RDONLY); });
    if (fd >= 0) {
      char buf[kFrameHeaderBytes + kHeaderPayloadBytes];
      const ssize_t n = ReadFullFd(fd, buf, sizeof(buf));
      ::close(fd);
      if (n == static_cast<ssize_t>(sizeof(buf)) &&
          GetU32(buf) == kHeaderPayloadBytes &&
          Crc32(static_cast<const void*>(buf + kFrameHeaderBytes),
                kHeaderPayloadBytes) ==
              GetU32(buf + 4)) {
        int header_shard = 0;
        uint64_t header_seq = 0;
        const std::string payload(buf + kFrameHeaderBytes,
                                  kHeaderPayloadBytes);
        info.header_ok =
            ParseHeaderPayload(payload, &header_shard, &header_seq,
                               &info.base_gen) &&
            header_shard == info.shard && header_seq == info.seq;
      }
    }
    segments.push_back(std::move(info));
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  return segments;
}

StatusOr<WalSegmentContents> ReadWalSegment(const std::string& path,
                                            bool truncate_torn_tail) {
  StatusOr<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();

  WalSegmentContents result;
  size_t offset = 0;
  std::string payload;

  // Header frame first. A torn header means the crash hit segment
  // creation itself: nothing was ever appended, so the whole file is
  // tail.
  size_t after_header = 0;
  switch (ScanFrame(*content, 0, &payload, &after_header)) {
    case FrameScan::kOk: {
      int shard = 0;
      uint64_t seq = 0;
      uint64_t base_gen = 0;
      if (!ParseHeaderPayload(payload, &shard, &seq, &base_gen)) {
        result.corrupt = true;
        result.corrupt_offset = 0;
        return result;
      }
      result.shard = shard;
      result.seq = seq;
      result.base_gen = base_gen;
      result.header_ok = true;
      offset = after_header;
      break;
    }
    case FrameScan::kTornTail:
      result.truncated_bytes = content->size();
      if (truncate_torn_tail && !content->empty()) {
        std::error_code ec;
        std::filesystem::resize_file(path, 0, ec);
      }
      return result;
    case FrameScan::kCorrupt:
      result.corrupt = true;
      result.corrupt_offset = 0;
      return result;
  }

  while (offset < content->size()) {
    size_t next = 0;
    switch (ScanFrame(*content, offset, &payload, &next)) {
      case FrameScan::kOk: {
        WalRecord record;
        if (!ParseRecordPayload(payload, &record)) {
          // A checksummed frame that fails to decode is not a crash
          // artifact — report it as corruption, keep what parsed.
          result.corrupt = true;
          result.corrupt_offset = offset;
          return result;
        }
        result.records.push_back(record);
        offset = next;
        break;
      }
      case FrameScan::kTornTail: {
        result.truncated_bytes = content->size() - offset;
        if (truncate_torn_tail) {
          std::error_code ec;
          std::filesystem::resize_file(path, offset, ec);
        }
        return result;
      }
      case FrameScan::kCorrupt:
        result.corrupt = true;
        result.corrupt_offset = offset;
        return result;
    }
  }
  return result;
}

WalWriter::WalWriter(std::string dir, int shard, uint64_t seq,
                     uint64_t base_gen, WalWriterOptions options)
    : dir_(std::move(dir)),
      shard_(shard),
      seq_(seq),
      base_gen_(base_gen),
      options_(std::move(options)) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::chrono::steady_clock::time_point WalWriter::Now() const {
  return options_.clock ? options_.clock()
                        : std::chrono::steady_clock::now();
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& dir, int shard, uint64_t seq, uint64_t base_gen,
    WalWriterOptions options) {
  std::unique_ptr<WalWriter> writer(
      new WalWriter(dir, shard, seq, base_gen, std::move(options)));
  HPM_RETURN_IF_ERROR(writer->OpenSegment());
  return writer;
}

Status WalWriter::OpenSegment() {
  path_ = dir_ + "/" + SegmentFileName(shard_, seq_);
  fd_ = RetryOnEintr([&] {
    return ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND,
                  0644);
  });
  if (fd_ < 0) {
    return Status::DataLoss("cannot create wal segment " + path_ + ": " +
                            std::strerror(errno));
  }
  const std::string frame = FrameFor(HeaderPayload(shard_, seq_, base_gen_));
  const ssize_t written = WriteAllFd(fd_, frame.data(), frame.size());
  if (written != static_cast<ssize_t>(frame.size()) ||
      RetryOnEintr([&] { return ::fdatasync(fd_); }) != 0) {
    const Status status = Status::DataLoss(
        "cannot write wal segment header " + path_ + ": " +
        std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return status;
  }
  // Segment creation is rare; always make the file itself durable so
  // recovery never finds a headerless segment in normal operation.
  FsyncDirectory(dir_);
  segment_bytes_ = frame.size();
  last_sync_ = Now();
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record, bool* synced) {
  if (synced != nullptr) *synced = false;
  if (fd_ < 0) {
    return Status::DataLoss("wal writer for shard " +
                            std::to_string(shard_) + " is broken");
  }
  const std::string frame = EncodeWalFrame(record);
  if (segment_bytes_ + frame.size() > options_.max_segment_bytes &&
      segment_bytes_ > kFrameHeaderBytes + kHeaderPayloadBytes) {
    HPM_RETURN_IF_ERROR(Rotate(base_gen_));
  }

  const Status fault = HPM_FAULT_HIT("wal/append");
  if (!fault.ok()) {
    // Model the failure the site stands for (short write / EIO /
    // ENOSPC): a prefix of the frame reaches the file, then the device
    // gives up — exactly the torn tail replay must truncate.
    const ssize_t ignored = WriteAllFd(fd_, frame.data(), frame.size() / 2);
    (void)ignored;
    ::close(fd_);
    fd_ = -1;
    return fault;
  }

  const ssize_t written = WriteAllFd(fd_, frame.data(), frame.size());
  if (written != static_cast<ssize_t>(frame.size())) {
    const Status status = Status::DataLoss(
        "wal short write to " + path_ + ": " +
        (written < 0 ? std::strerror(errno) : "out of space"));
    ::close(fd_);
    fd_ = -1;
    return status;
  }
  segment_bytes_ += frame.size();

  bool do_sync = false;
  switch (options_.sync_policy) {
    case WalSyncPolicy::kEveryRecord:
      do_sync = true;
      break;
    case WalSyncPolicy::kInterval:
      do_sync = Now() - last_sync_ >= options_.sync_interval;
      break;
    case WalSyncPolicy::kNone:
      break;
  }
  if (do_sync) {
    HPM_RETURN_IF_ERROR(Sync());
    if (synced != nullptr) *synced = true;
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) {
    return Status::DataLoss("wal writer for shard " +
                            std::to_string(shard_) + " is broken");
  }
  const Status fault = HPM_FAULT_HIT("wal/sync");
  if (!fault.ok()) {
    ::close(fd_);
    fd_ = -1;
    return fault;
  }
  if (RetryOnEintr([&] { return ::fdatasync(fd_); }) != 0) {
    const Status status = Status::DataLoss("wal fdatasync failed for " +
                                           path_ + ": " +
                                           std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return status;
  }
  last_sync_ = Now();
  return Status::OK();
}

Status WalWriter::Rotate(uint64_t new_base_gen) {
  const Status fault = HPM_FAULT_HIT("wal/rotate");
  if (!fault.ok()) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    return fault;
  }
  if (fd_ >= 0) {
    // The outgoing segment becomes durable before its successor exists:
    // replay then never sees a gap between segments.
    RetryOnEintr([&] { return ::fdatasync(fd_); });
    ::close(fd_);
    fd_ = -1;
  }
  ++seq_;
  base_gen_ = new_base_gen;
  return OpenSegment();
}

Status WalWriter::RetireBelow(uint64_t gen) {
  HPM_RETURN_IF_ERROR(HPM_FAULT_HIT("wal/retire"));
  for (const WalSegmentInfo& info : ListWalSegments(dir_)) {
    if (info.shard != shard_ || !info.header_ok) continue;
    if (info.seq >= seq_ || info.base_gen >= gen) continue;
    std::remove(info.path.c_str());
  }
  return Status::OK();
}

}  // namespace hpm
