#include "io/svg.h"

#include <cstdio>

namespace hpm {

namespace {

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

SvgWriter::SvgWriter(const BoundingBox& viewport, double width_px)
    : viewport_(viewport), width_px_(width_px) {
  HPM_CHECK(!viewport.IsEmpty());
  const double data_width = viewport.max().x - viewport.min().x;
  const double data_height = viewport.max().y - viewport.min().y;
  HPM_CHECK(data_width > 0.0 && data_height > 0.0);
  HPM_CHECK(width_px > 0.0);
  scale_ = width_px / data_width;
  height_px_ = data_height * scale_;
}

double SvgWriter::MapX(double x) const {
  return (x - viewport_.min().x) * scale_;
}

double SvgWriter::MapY(double y) const {
  return height_px_ - (y - viewport_.min().y) * scale_;
}

double SvgWriter::MapLength(double len) const { return len * scale_; }

void SvgWriter::AddPolyline(const std::vector<Point>& points,
                            const std::string& color, double stroke_width,
                            double opacity) {
  HPM_CHECK(points.size() >= 2);
  body_ += "  <polyline fill=\"none\" stroke=\"" + Escape(color) +
           "\" stroke-width=\"" + Num(stroke_width) + "\" opacity=\"" +
           Num(opacity) + "\" points=\"";
  for (const Point& p : points) {
    body_ += Num(MapX(p.x)) + "," + Num(MapY(p.y)) + " ";
  }
  body_ += "\"/>\n";
}

void SvgWriter::AddTrajectory(const Trajectory& trajectory,
                              const std::string& color, double stroke_width,
                              double opacity) {
  AddPolyline(trajectory.points(), color, stroke_width, opacity);
}

void SvgWriter::AddCircle(const Point& center, double radius,
                          const std::string& color, bool filled,
                          double opacity) {
  body_ += "  <circle cx=\"" + Num(MapX(center.x)) + "\" cy=\"" +
           Num(MapY(center.y)) + "\" r=\"" + Num(MapLength(radius)) +
           "\" opacity=\"" + Num(opacity) + "\" ";
  if (filled) {
    body_ += "fill=\"" + Escape(color) + "\"";
  } else {
    body_ += "fill=\"none\" stroke=\"" + Escape(color) + "\"";
  }
  body_ += "/>\n";
}

void SvgWriter::AddRect(const BoundingBox& box, const std::string& color,
                        double stroke_width, double opacity) {
  HPM_CHECK(!box.IsEmpty());
  body_ += "  <rect x=\"" + Num(MapX(box.min().x)) + "\" y=\"" +
           Num(MapY(box.max().y)) + "\" width=\"" +
           Num(MapLength(box.max().x - box.min().x)) + "\" height=\"" +
           Num(MapLength(box.max().y - box.min().y)) +
           "\" fill=\"none\" stroke=\"" + Escape(color) +
           "\" stroke-width=\"" + Num(stroke_width) + "\" opacity=\"" +
           Num(opacity) + "\"/>\n";
}

void SvgWriter::AddText(const Point& position, const std::string& text,
                        const std::string& color, double font_px) {
  body_ += "  <text x=\"" + Num(MapX(position.x)) + "\" y=\"" +
           Num(MapY(position.y)) + "\" font-size=\"" + Num(font_px) +
           "\" fill=\"" + Escape(color) + "\">" + Escape(text) +
           "</text>\n";
}

std::string SvgWriter::ToString() const {
  std::string doc =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
      Num(width_px_) + "\" height=\"" + Num(height_px_) +
      "\" viewBox=\"0 0 " + Num(width_px_) + " " + Num(height_px_) +
      "\">\n";
  doc += "  <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";
  doc += body_;
  doc += "</svg>\n";
  return doc;
}

Status SvgWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path);
  }
  const std::string doc = ToString();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok ? Status::OK() : Status::Internal("write failed: " + path);
}

}  // namespace hpm
