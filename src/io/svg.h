// Minimal SVG rendering for trajectories, frequent regions, and
// predictions — the visual sanity check every spatial system needs.

#ifndef HPM_IO_SVG_H_
#define HPM_IO_SVG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/bounding_box.h"
#include "geo/trajectory.h"

namespace hpm {

/// Builds an SVG document in data-space coordinates. The viewport maps
/// onto a fixed pixel width (height scales proportionally) and the y
/// axis is flipped so that data-space "up" renders upward.
class SvgWriter {
 public:
  /// `viewport` must be non-empty and non-degenerate.
  explicit SvgWriter(const BoundingBox& viewport, double width_px = 800.0);

  /// Polyline through the given points (at least 2).
  void AddPolyline(const std::vector<Point>& points,
                   const std::string& color, double stroke_width = 1.0,
                   double opacity = 1.0);

  /// Convenience: a trajectory's sample path.
  void AddTrajectory(const Trajectory& trajectory, const std::string& color,
                     double stroke_width = 1.0, double opacity = 1.0);

  /// Circle of data-space radius `radius`.
  void AddCircle(const Point& center, double radius,
                 const std::string& color, bool filled = true,
                 double opacity = 1.0);

  /// Axis-aligned rectangle outline (e.g. a frequent region's MBR).
  void AddRect(const BoundingBox& box, const std::string& color,
               double stroke_width = 1.0, double opacity = 1.0);

  /// Text label anchored at `position`.
  void AddText(const Point& position, const std::string& text,
               const std::string& color = "#333333",
               double font_px = 12.0);

  /// The complete SVG document.
  std::string ToString() const;

  /// Writes the document to a file.
  Status WriteToFile(const std::string& path) const;

 private:
  /// Data-space -> pixel-space.
  double MapX(double x) const;
  double MapY(double y) const;
  double MapLength(double len) const;

  BoundingBox viewport_;
  double width_px_;
  double height_px_;
  double scale_;
  std::string body_;
};

}  // namespace hpm

#endif  // HPM_IO_SVG_H_
