// Write-ahead report journal: crash-safe append-only segments.
//
// The store's generational snapshots (server/store_io) make persistence
// crash-safe only at save boundaries; every report acknowledged since the
// last snapshot would be lost. The WAL closes that window: each shard
// appends a CRC32-framed, length-prefixed record for every report *before*
// the report's epoch-published view swap makes it visible, so an
// acknowledged report is always either in a committed snapshot or in a
// journal segment that replay can recover.
//
// On-disk layout (all inside one flat directory, `wal_dir`):
//   wal-<shard>-<seq>.log    one segment: a header frame followed by
//                            record frames, strictly appended
//   frame                    u32 payload_len | u32 crc32(payload) | payload
//   header payload           "HPMWAL1\0" magic, u32 shard, u64 seq,
//                            u64 base_gen
//   record payload           u8 type, i64 id [, i64 t, f64 x, f64 y]
//
// `base_gen` is the newest snapshot generation that was (being) committed
// when the segment was opened: every record in the segment arrived after
// that generation's per-shard snapshot, so recovery of generation G must
// replay exactly the segments with base_gen >= G (older segments are
// wholly contained in G and are retired after the covering commit).
//
// Failure semantics mirror io/atomic_file: a torn tail (crash mid-append)
// is truncated at the first bad frame and replay continues as if the torn
// record was never acknowledged — which it was not, appends return only
// after the frame (and, per sync policy, the fdatasync) completes. A CRC
// mismatch *before* the tail is real corruption: the reader reports it and
// the store quarantines the segment instead of crashing.

#ifndef HPM_IO_WAL_H_
#define HPM_IO_WAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace hpm {

/// When an appended record becomes durable (fdatasync'd), trading ingest
/// latency for the size of the crash window. docs/ROBUSTNESS.md has the
/// durability matrix.
enum class WalSyncPolicy {
  /// fdatasync after every record: an acknowledged report survives even a
  /// power loss. The slowest policy — one device flush per report.
  kEveryRecord,
  /// fdatasync at most once per `sync_interval` (checked on append, using
  /// the injectable clock): bounds the power-loss window to the interval
  /// while amortising the flush. Process crashes lose nothing either way
  /// (the page cache survives them).
  kInterval,
  /// Never fdatasync explicitly: durable against process crashes only;
  /// power loss may drop the OS-buffered tail.
  kNone,
};

const char* WalSyncPolicyName(WalSyncPolicy policy);

/// One journaled event. Reports carry the full sample; rejected reports
/// journal only the id so the per-object rejection accounting survives a
/// crash too.
struct WalRecord {
  enum class Type : uint8_t {
    kReport = 1,    ///< An acknowledged location report.
    kRejected = 2,  ///< A malformed report counted against the object.
    /// An object's total rejection tally as of a snapshot save. Written
    /// at the head of each post-rotation segment (snapshots don't carry
    /// the tallies), so replay seeds the count before later kRejected
    /// increments land on top. `t` holds the tally.
    kRejectedBaseline = 3,
  };
  Type type = Type::kReport;
  int64_t id = 0;
  /// The object-clock tick the report landed on (== history size before
  /// the append). Replay uses it to skip records already covered by the
  /// loaded snapshot and to refuse gaps from stale segments.
  /// For kRejectedBaseline: the tally.
  int64_t t = 0;
  double x = 0.0;
  double y = 0.0;
};

/// Serialises `record` into a complete frame (length + crc + payload),
/// ready to be appended to a segment. Exposed for tests and hpm_tool.
std::string EncodeWalFrame(const WalRecord& record);

/// One segment discovered on disk. `shard`/`seq` parse from the file
/// name; `base_gen` comes from the header frame. When the header is
/// unreadable or fails its checksum `header_ok` is false and `base_gen`
/// is meaningless — the caller quarantines such files.
struct WalSegmentInfo {
  std::string path;
  int shard = 0;
  uint64_t seq = 0;
  uint64_t base_gen = 0;
  bool header_ok = false;
};

/// Every wal-<shard>-<seq>.log under `dir`, sorted by (shard, seq).
/// Missing or unreadable directories yield an empty list.
std::vector<WalSegmentInfo> ListWalSegments(const std::string& dir);

/// A fully scanned segment.
struct WalSegmentContents {
  int shard = 0;
  uint64_t seq = 0;
  uint64_t base_gen = 0;
  /// False when the header frame itself was torn off by a crash during
  /// segment creation; such a segment has no usable records.
  bool header_ok = false;
  /// Records up to the first bad frame (all of them, when the segment is
  /// clean).
  std::vector<WalRecord> records;
  /// Bytes dropped from a torn tail (crash mid-append). 0 when clean.
  uint64_t truncated_bytes = 0;
  /// True when a frame *before* the physical tail failed its checksum —
  /// real corruption, not a crash artifact. `corrupt_offset` is the
  /// byte offset of the bad frame; `records` stops just before it.
  bool corrupt = false;
  uint64_t corrupt_offset = 0;
};

/// Scans one segment. A torn tail is reported via `truncated_bytes` and,
/// when `truncate_torn_tail` is set, physically cut off so later scans
/// see a clean segment. Only unreadable files return an error; torn and
/// corrupt segments return OK with the fields above set — the caller
/// decides to replay / quarantine, never to crash.
StatusOr<WalSegmentContents> ReadWalSegment(const std::string& path,
                                            bool truncate_torn_tail);

struct WalWriterOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryRecord;
  /// kInterval only: minimum spacing between fdatasync calls.
  std::chrono::microseconds sync_interval{50000};
  /// kInterval only: time source for the spacing check. Null = steady
  /// clock. Injectable so tests drive the policy deterministically.
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// A segment reaching this size rolls over to seq+1 (same base_gen) so
  /// no single file grows unboundedly between snapshots.
  size_t max_segment_bytes = 4 * 1024 * 1024;
};

/// Appender for one shard's segment stream. Not internally synchronised:
/// the store calls it under the owning shard's write mutex, which is the
/// same serialisation the in-memory append uses — journal order therefore
/// equals publication order.
class WalWriter {
 public:
  /// Creates wal-<shard>-<seq>.log (which must not exist), writes and
  /// syncs its header, and fsyncs the directory so the segment itself
  /// survives a crash.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                   int shard, uint64_t seq,
                                                   uint64_t base_gen,
                                                   WalWriterOptions options);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record frame and applies the sync policy. `synced`
  /// (optional) reports whether this append flushed the device. On any
  /// error the writer is broken (every later call fails): the store
  /// treats that as the signal to degrade to non-durable serving.
  Status Append(const WalRecord& record, bool* synced);

  /// Explicit fdatasync (fault site "wal/sync").
  Status Sync();

  /// Rolls over to segment seq+1 with `new_base_gen`, syncing and closing
  /// the current segment first. Called at snapshot start, under the shard
  /// lock that also takes the snapshot: everything in older segments is
  /// then covered by the snapshot being written.
  Status Rotate(uint64_t new_base_gen);

  /// Deletes this shard's closed segments whose base_gen < `gen` — they
  /// are wholly contained in every on-disk generation >= `gen`. Unparsable
  /// files are left alone (never delete what cannot be proven covered).
  Status RetireBelow(uint64_t gen);

  int shard() const { return shard_; }
  uint64_t seq() const { return seq_; }
  uint64_t base_gen() const { return base_gen_; }
  const std::string& segment_path() const { return path_; }

 private:
  WalWriter(std::string dir, int shard, uint64_t seq, uint64_t base_gen,
            WalWriterOptions options);

  /// Creates + syncs the current (path_, seq_, base_gen_) segment file.
  Status OpenSegment();
  std::chrono::steady_clock::time_point Now() const;

  std::string dir_;
  int shard_ = 0;
  uint64_t seq_ = 0;
  uint64_t base_gen_ = 0;
  WalWriterOptions options_;
  std::string path_;
  int fd_ = -1;
  size_t segment_bytes_ = 0;
  std::chrono::steady_clock::time_point last_sync_{};
};

}  // namespace hpm

#endif  // HPM_IO_WAL_H_
