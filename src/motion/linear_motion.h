// Linear motion model: l(tq) = l0 + v * (tq - t0).

#ifndef HPM_MOTION_LINEAR_MOTION_H_
#define HPM_MOTION_LINEAR_MOTION_H_

#include "motion/motion_function.h"

namespace hpm {

/// The classic linear model used by TPR-tree-style predictive indexes
/// (paper §II-A): velocity is estimated by a least-squares line over the
/// fitted window, anchored at the most recent location.
class LinearMotionFunction : public MotionFunction {
 public:
  /// Needs at least 2 recent points.
  Status Fit(const std::vector<TimedPoint>& recent) override;

  StatusOr<Point> Predict(Timestamp tq) const override;

  std::string Name() const override { return "Linear"; }

  /// Estimated velocity (units per timestamp) after Fit.
  const Point& velocity() const { return velocity_; }

 private:
  bool fitted_ = false;
  Timestamp anchor_time_ = 0;
  Point anchor_;
  Point velocity_;
};

}  // namespace hpm

#endif  // HPM_MOTION_LINEAR_MOTION_H_
