// Recursive Motion Function (RMF) — Tao, Faloutsos, Papadias, Liu,
// SIGMOD'04 ("Prediction and indexing of moving objects with unknown
// motion patterns").
//
// RMF models the next location as a linear recurrence over the f most
// recent locations: l_t = sum_{i=1..f} C_i * l_{t-i}, where each C_i is a
// constant d x d matrix and f is the "retrospect". The coefficients are
// fitted over a sliding window of recent movements by SVD-based least
// squares (the n^3 cost the HPM paper attributes to RMF), and prediction
// iterates the recurrence forward to the query time.

#ifndef HPM_MOTION_RECURSIVE_MOTION_H_
#define HPM_MOTION_RECURSIVE_MOTION_H_

#include <deque>
#include <vector>

#include "geo/bounding_box.h"
#include "linalg/matrix.h"
#include "motion/motion_function.h"

namespace hpm {

/// RMF configuration.
struct RmfOptions {
  /// Retrospect f: how many past locations feed the recurrence. When
  /// `auto_retrospect` is true this is the maximum tried.
  int retrospect = 3;

  /// Try retrospects 1..retrospect and keep the one with the smallest
  /// one-step-ahead validation error on the fitted window, mirroring the
  /// RMF paper's model selection.
  bool auto_retrospect = true;

  /// Maximum number of recent points used for fitting. RMF is a local
  /// model; a bounded window keeps the SVD cheap and the fit responsive.
  int window = 30;

  /// Predictions are clamped into this box when non-empty. The HPM
  /// experiments normalise data to [0,10000]^2; clamping prevents an
  /// unstable recurrence (spectral radius > 1) from emitting astronomical
  /// coordinates, matching how any deployed system would bound output.
  BoundingBox clamp_box = BoundingBox({0.0, 0.0}, {10000.0, 10000.0});
};

/// Recursive Motion Function predictor.
class RecursiveMotionFunction : public MotionFunction {
 public:
  explicit RecursiveMotionFunction(RmfOptions options = {});

  /// Needs at least retrospect+1 points (with auto_retrospect, at least 2:
  /// smaller retrospects are tried when history is short). Timestamps must
  /// be strictly increasing and consecutive (unit sampling), matching the
  /// paper's discrete trajectory model.
  Status Fit(const std::vector<TimedPoint>& recent) override;

  /// Iterates the recurrence from the end of the fitted window to `tq`.
  /// If the recurrence diverges to non-finite values the prediction
  /// degrades to linear extrapolation from the window, then clamps.
  StatusOr<Point> Predict(Timestamp tq) const override;

  std::string Name() const override { return "RMF"; }

  /// The retrospect selected by the last successful Fit, or 0 when the
  /// out-of-sample model selection preferred plain linear extrapolation
  /// (which then serves the predictions).
  int fitted_retrospect() const { return fitted_retrospect_; }

  /// True when the last Fit selected the linear-extrapolation candidate.
  bool used_linear_model() const { return use_linear_; }

  /// Fitted coefficient matrices C_1..C_f (each 2x2), most recent lag
  /// first. Empty before a successful Fit.
  const std::vector<Matrix>& coefficients() const { return coefficients_; }

 private:
  /// Fits coefficients for a fixed retrospect over the `n` points at
  /// `recent`; returns the mean squared one-step residual on the window
  /// through `*error`. Takes a pointer-length view so the fitting window
  /// and its validation prefix (both contiguous subranges of the caller's
  /// history) need no per-fit copies — this runs once per RMF fallback on
  /// the serving hot path.
  Status FitRetrospect(const TimedPoint* recent, int n, int f,
                       std::vector<Matrix>* coeffs, double* error) const;

  Point ClampToBox(const Point& p) const;

  RmfOptions options_;
  bool fitted_ = false;
  bool use_linear_ = false;
  int fitted_retrospect_ = 0;
  std::vector<Matrix> coefficients_;
  /// Last f locations of the fitted window, oldest first.
  std::vector<Point> tail_;
  Timestamp tail_end_time_ = 0;
  /// Fallback linear model in case the recurrence diverges.
  Point anchor_;
  Point fallback_velocity_;
};

}  // namespace hpm

#endif  // HPM_MOTION_RECURSIVE_MOTION_H_
