#include "motion/linear_motion.h"

namespace hpm {

Status LinearMotionFunction::Fit(const std::vector<TimedPoint>& recent) {
  if (recent.size() < 2) {
    return Status::FailedPrecondition(
        "linear motion needs at least 2 recent points");
  }
  for (size_t i = 1; i < recent.size(); ++i) {
    if (recent[i].time <= recent[i - 1].time) {
      return Status::InvalidArgument(
          "recent movements must have strictly increasing timestamps");
    }
  }

  // Least-squares slope of location against time. With the anchor at the
  // last observation this degrades gracefully to two-point velocity when
  // only two samples exist.
  const size_t n = recent.size();
  double mean_t = 0.0;
  Point mean_l;
  for (const auto& tp : recent) {
    mean_t += static_cast<double>(tp.time);
    mean_l = mean_l + tp.location;
  }
  mean_t /= static_cast<double>(n);
  mean_l = mean_l / static_cast<double>(n);

  double var_t = 0.0;
  Point cov;
  for (const auto& tp : recent) {
    const double dt = static_cast<double>(tp.time) - mean_t;
    var_t += dt * dt;
    cov = cov + (tp.location - mean_l) * dt;
  }
  velocity_ = var_t > 0.0 ? cov / var_t : Point{0.0, 0.0};
  anchor_time_ = recent.back().time;
  anchor_ = recent.back().location;
  fitted_ = true;
  return Status::OK();
}

StatusOr<Point> LinearMotionFunction::Predict(Timestamp tq) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Fit has not succeeded yet");
  }
  if (tq < anchor_time_) {
    return Status::InvalidArgument("query time precedes fitted history");
  }
  const double dt = static_cast<double>(tq - anchor_time_);
  return anchor_ + velocity_ * dt;
}

}  // namespace hpm
