// Motion-function abstraction (paper §II-A, §VI).
//
// A motion function extrapolates an object's future location from its
// recent movements alone. HPM uses one as the fallback predictor whenever
// no trajectory pattern matches a query; the paper plugs in RMF because it
// is the most accurate published motion function, but the interface admits
// any model ("The motion function can be any type").

#ifndef HPM_MOTION_MOTION_FUNCTION_H_
#define HPM_MOTION_MOTION_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/trajectory.h"

namespace hpm {

/// Interface for recent-movement extrapolators.
///
/// Lifecycle: construct → Fit(recent movements) → Predict(tq) any number
/// of times. Fit may be called again to re-train on newer movements.
class MotionFunction {
 public:
  virtual ~MotionFunction() = default;

  /// Trains the function on recent movements, ordered oldest-first with
  /// strictly increasing timestamps. Implementations document their
  /// minimum history length; fewer points yield FailedPrecondition.
  virtual Status Fit(const std::vector<TimedPoint>& recent) = 0;

  /// Predicts the location at time `tq`. Requires a successful Fit;
  /// `tq` at or after the last fitted timestamp. Implementations must
  /// return a finite location (clamping or degrading internally rather
  /// than emitting NaN/Inf).
  virtual StatusOr<Point> Predict(Timestamp tq) const = 0;

  /// Short model name for reports ("Linear", "RMF").
  virtual std::string Name() const = 0;
};

}  // namespace hpm

#endif  // HPM_MOTION_MOTION_FUNCTION_H_
