#include "motion/recursive_motion.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/svd.h"

namespace hpm {

RecursiveMotionFunction::RecursiveMotionFunction(RmfOptions options)
    : options_(options) {}

Status RecursiveMotionFunction::FitRetrospect(
    const TimedPoint* recent, int n, int f,
    std::vector<Matrix>* coeffs, double* error) const {
  const int rows = n - f;
  if (rows < 1) {
    return Status::FailedPrecondition("window too short for retrospect");
  }

  // Centre the window: fitting the recurrence on displacements from the
  // window mean conditions the system far better than raw coordinates in
  // [0,10000]^2. The model becomes (l_t - mu) = sum C_i (l_{t-i} - mu),
  // which represents the same family of motions locally.
  Point mu;
  for (int i = 0; i < n; ++i) mu = mu + recent[i].location;
  mu = mu / static_cast<double>(n);

  // Row t: target l_t from inputs [l_{t-1} ... l_{t-f}], all centred.
  Matrix a(static_cast<size_t>(rows), static_cast<size_t>(2 * f));
  Matrix b(static_cast<size_t>(rows), 2);
  for (int r = 0; r < rows; ++r) {
    const int t = r + f;
    const Point target = recent[t].location - mu;
    b(static_cast<size_t>(r), 0) = target.x;
    b(static_cast<size_t>(r), 1) = target.y;
    for (int i = 1; i <= f; ++i) {
      const Point input = recent[t - i].location - mu;
      a(static_cast<size_t>(r), static_cast<size_t>(2 * (i - 1))) = input.x;
      a(static_cast<size_t>(r), static_cast<size_t>(2 * (i - 1) + 1)) =
          input.y;
    }
  }

  StatusOr<Matrix> x = SolveLeastSquaresSvd(a, b);
  if (!x.ok()) return x.status();

  // X is (2f x 2): rows 2(i-1)..2(i-1)+1 hold C_i^T.
  coeffs->clear();
  coeffs->reserve(static_cast<size_t>(f));
  for (int i = 0; i < f; ++i) {
    Matrix c(2, 2);
    c(0, 0) = (*x)(static_cast<size_t>(2 * i), 0);
    c(0, 1) = (*x)(static_cast<size_t>(2 * i + 1), 0);
    c(1, 0) = (*x)(static_cast<size_t>(2 * i), 1);
    c(1, 1) = (*x)(static_cast<size_t>(2 * i + 1), 1);
    coeffs->push_back(std::move(c));
  }

  // Mean squared one-step residual over the window, penalised slightly
  // per extra lag so that ties prefer the simpler recurrence. The penalty
  // must include an additive, data-scaled term: an underdetermined fit
  // (rows < 2f) reaches sse == 0.0 exactly, where a multiplicative
  // penalty alone cannot break the tie and the min-norm solution of the
  // larger retrospect extrapolates wildly despite its perfect residual.
  Matrix residual = a * *x - b;
  double sse = 0.0;
  for (size_t i = 0; i < residual.data().size(); ++i) {
    sse += residual.data()[i] * residual.data()[i];
  }
  double target_scale = 0.0;
  for (size_t i = 0; i < b.data().size(); ++i) {
    target_scale += b.data()[i] * b.data()[i];
  }
  target_scale /= static_cast<double>(rows);
  *error = sse / static_cast<double>(rows) * (1.0 + 0.01 * f) +
           1e-12 * target_scale * f;
  return Status::OK();
}

Status RecursiveMotionFunction::Fit(const std::vector<TimedPoint>& recent) {
  if (recent.size() < 2) {
    return Status::FailedPrecondition("RMF needs at least 2 recent points");
  }
  for (size_t i = 1; i < recent.size(); ++i) {
    if (recent[i].time != recent[i - 1].time + 1) {
      return Status::InvalidArgument(
          "RMF expects consecutive unit timestamps");
    }
  }
  if (options_.retrospect < 1) {
    return Status::InvalidArgument("retrospect must be >= 1");
  }

  // Trim to the fitting window (most recent points) — a suffix of
  // `recent`, viewed in place rather than copied.
  const TimedPoint* window = recent.data();
  int n = static_cast<int>(recent.size());
  if (options_.window > 1 && n > options_.window) {
    window += n - options_.window;
    n = options_.window;
  }

  const int max_f = std::min(options_.retrospect, n - 1);
  const int min_f = options_.auto_retrospect ? 1 : options_.retrospect;
  if (max_f < min_f) {
    return Status::FailedPrecondition(
        "not enough history for the requested retrospect");
  }

  // Model selection: each candidate retrospect is fitted on a prefix of
  // the window and judged by *multi-step held-out* error on the last few
  // points — in-sample residuals reward over-fitted recurrences that
  // extrapolate wildly. A plain linear extrapolation competes as an
  // additional candidate; RMF must beat it out of sample to be used
  // (per its published claim of dominating the linear model).
  const int holdout =
      options_.auto_retrospect ? std::clamp(n / 4, 0, 5) : 0;
  const bool validate = holdout >= 1 && n - holdout >= max_f + 1;

  std::vector<Point> state;  // multi_step_error's rolling seed, reused.
  const auto multi_step_error = [&](const std::vector<Matrix>& coeffs,
                                    int f, const Point& mu) {
    // Seed with the last f prefix points (centred on the fit's mean) and
    // roll the recurrence through the held-out span.
    state.clear();
    for (int i = n - holdout - f; i < n - holdout; ++i) {
      state.push_back(window[static_cast<size_t>(i)].location - mu);
    }
    double sse = 0.0;
    for (int step = 0; step < holdout; ++step) {
      Point next;
      for (int i = 1; i <= f; ++i) {
        const Point& lag = state[state.size() - static_cast<size_t>(i)];
        const Matrix& c = coeffs[static_cast<size_t>(i - 1)];
        next.x += c(0, 0) * lag.x + c(0, 1) * lag.y;
        next.y += c(1, 0) * lag.x + c(1, 1) * lag.y;
      }
      if (!std::isfinite(next.x) || !std::isfinite(next.y)) {
        return std::numeric_limits<double>::infinity();
      }
      const Point actual =
          window[static_cast<size_t>(n - holdout + step)].location - mu;
      sse += SquaredDistance(next, actual);
      state.erase(state.begin());
      state.push_back(next);
    }
    return sse / holdout;
  };

  double best_error = std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_coeffs;
  int best_f = 0;
  for (int f = min_f; f <= max_f; ++f) {
    std::vector<Matrix> coeffs;
    double error = 0.0;
    if (validate) {
      const int prefix_n = n - holdout;
      if (prefix_n <= f) continue;
      if (!FitRetrospect(window, prefix_n, f, &coeffs, &error).ok()) {
        continue;
      }
      Point mu;
      for (int i = 0; i < prefix_n; ++i) mu = mu + window[i].location;
      mu = mu / static_cast<double>(prefix_n);
      error = multi_step_error(coeffs, f, mu);
    } else {
      if (!FitRetrospect(window, n, f, &coeffs, &error).ok()) continue;
    }
    if (error < best_error) {
      best_error = error;
      best_f = f;
    }
  }
  if (best_f == 0) {
    return Status::Internal("RMF fitting failed for all retrospects");
  }

  use_linear_ = false;
  if (!validate && n - best_f < 2 * best_f) {
    // The window is too short for held-out validation AND the winning
    // recurrence is underdetermined (fewer rows than unknowns per
    // coordinate), so its perfect in-sample residual says nothing about
    // extrapolation — the minimum-norm solution can oscillate wildly.
    // Degrade to the linear model rather than trust it.
    use_linear_ = true;
  }
  if (validate) {
    // The linear candidate: least-squares velocity over the prefix,
    // extrapolated through the held-out span.
    const int prefix_n = n - holdout;
    double mean_t = 0.0;
    Point mean_l;
    for (int i = 0; i < prefix_n; ++i) {
      mean_t += static_cast<double>(i);
      mean_l = mean_l + window[static_cast<size_t>(i)].location;
    }
    mean_t /= prefix_n;
    mean_l = mean_l / static_cast<double>(prefix_n);
    double var_t = 0.0;
    Point cov;
    for (int i = 0; i < prefix_n; ++i) {
      const double dt = static_cast<double>(i) - mean_t;
      var_t += dt * dt;
      cov = cov + (window[static_cast<size_t>(i)].location - mean_l) * dt;
    }
    const Point velocity = var_t > 0.0 ? cov / var_t : Point{0.0, 0.0};
    const Point anchor = window[static_cast<size_t>(prefix_n - 1)].location;
    double linear_sse = 0.0;
    for (int step = 1; step <= holdout; ++step) {
      const Point predicted = anchor + velocity * static_cast<double>(step);
      linear_sse += SquaredDistance(
          predicted,
          window[static_cast<size_t>(prefix_n - 1 + step)].location);
    }
    if (linear_sse / holdout < best_error) use_linear_ = true;
  }

  if (!use_linear_) {
    // Refit the winning retrospect on the full window.
    std::vector<Matrix> coeffs;
    double ignored = 0.0;
    HPM_RETURN_IF_ERROR(FitRetrospect(window, n, best_f, &coeffs, &ignored));
    best_coeffs = std::move(coeffs);
  }

  coefficients_ = std::move(best_coeffs);
  fitted_retrospect_ = use_linear_ ? 0 : best_f;

  // Keep the centred tail needed to seed the recurrence. The centring
  // mean must match the one used during fitting.
  Point mu;
  for (int i = 0; i < n; ++i) mu = mu + window[i].location;
  mu = mu / static_cast<double>(n);
  anchor_ = mu;

  tail_.clear();
  const int tail_len = use_linear_ ? 1 : best_f;
  for (int i = n - tail_len; i < n; ++i) {
    tail_.push_back(window[i].location - mu);
  }
  tail_end_time_ = window[n - 1].time;

  // Linear velocity: least squares over the whole window (used both as
  // the selected model in linear mode and as the divergence fallback).
  {
    double mean_t = 0.0;
    Point mean_l;
    for (int i = 0; i < n; ++i) {
      mean_t += static_cast<double>(i);
      mean_l = mean_l + window[i].location;
    }
    mean_t /= static_cast<double>(n);
    mean_l = mean_l / static_cast<double>(n);
    double var_t = 0.0;
    Point cov;
    for (int i = 0; i < n; ++i) {
      const double dt = static_cast<double>(i) - mean_t;
      var_t += dt * dt;
      cov = cov + (window[i].location - mean_l) * dt;
    }
    fallback_velocity_ = var_t > 0.0 ? cov / var_t : Point{0.0, 0.0};
  }
  fitted_ = true;
  return Status::OK();
}

Point RecursiveMotionFunction::ClampToBox(const Point& p) const {
  if (options_.clamp_box.IsEmpty()) return p;
  Point q = p;
  q.x = std::clamp(q.x, options_.clamp_box.min().x,
                   options_.clamp_box.max().x);
  q.y = std::clamp(q.y, options_.clamp_box.min().y,
                   options_.clamp_box.max().y);
  return q;
}

StatusOr<Point> RecursiveMotionFunction::Predict(Timestamp tq) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Fit has not succeeded yet");
  }
  if (tq < tail_end_time_) {
    return Status::InvalidArgument("query time precedes fitted history");
  }
  if (tq == tail_end_time_) {
    return ClampToBox(tail_.back() + anchor_);
  }
  if (use_linear_) {
    const double dt = static_cast<double>(tq - tail_end_time_);
    return ClampToBox(tail_.back() + anchor_ + fallback_velocity_ * dt);
  }

  const int f = fitted_retrospect_;
  std::vector<Point> state = tail_;  // Oldest first, length f (centred).
  Point current;
  for (Timestamp t = tail_end_time_ + 1; t <= tq; ++t) {
    Point next;
    for (int i = 1; i <= f; ++i) {
      const Point& lag = state[state.size() - static_cast<size_t>(i)];
      const Matrix& c = coefficients_[static_cast<size_t>(i - 1)];
      next.x += c(0, 0) * lag.x + c(0, 1) * lag.y;
      next.y += c(1, 0) * lag.x + c(1, 1) * lag.y;
    }
    if (!std::isfinite(next.x) || !std::isfinite(next.y)) {
      // The recurrence diverged: degrade to linear extrapolation from the
      // end of the window, as any robust deployment of RMF must.
      const double dt = static_cast<double>(tq - tail_end_time_);
      const Point linear =
          tail_.back() + anchor_ + fallback_velocity_ * dt;
      return ClampToBox(linear);
    }
    state.erase(state.begin());
    state.push_back(next);
    current = next;
  }
  return ClampToBox(current + anchor_);
}

}  // namespace hpm
