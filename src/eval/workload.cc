#include "eval/workload.h"

#include "common/random.h"

namespace hpm {

StatusOr<std::vector<QueryCase>> MakeQueryCases(
    const Trajectory& full, Timestamp period, int train_subs,
    const WorkloadConfig& config) {
  if (config.num_queries < 1 || config.recent_length < 2) {
    return Status::InvalidArgument(
        "need num_queries >= 1 and recent_length >= 2");
  }
  if (config.prediction_length < 1) {
    return Status::InvalidArgument("prediction_length must be >= 1");
  }
  const int total_subs = static_cast<int>(full.NumSubTrajectories(period));
  if (train_subs < 0 || train_subs >= total_subs) {
    return Status::InvalidArgument(
        "train_subs leaves no held-out sub-trajectories");
  }
  const Timestamp min_tc = config.recent_length - 1;
  const Timestamp max_tc = period - 1 - config.prediction_length;
  if (max_tc < min_tc) {
    return Status::InvalidArgument(
        "period too short for recent_length + prediction_length");
  }

  Random rng(config.seed);
  std::vector<QueryCase> cases;
  cases.reserve(static_cast<size_t>(config.num_queries));
  for (int q = 0; q < config.num_queries; ++q) {
    const int sub = static_cast<int>(
        rng.UniformInt(train_subs, total_subs - 1));
    const Timestamp tc_offset = rng.UniformInt(min_tc, max_tc);
    const Timestamp base = static_cast<Timestamp>(sub) * period;

    QueryCase qc;
    qc.query.current_time = base + tc_offset;
    qc.query.query_time = qc.query.current_time + config.prediction_length;
    qc.query.k = 1;
    qc.query.recent_movements =
        full.RecentMovements(qc.query.current_time, config.recent_length);
    qc.actual = full.At(qc.query.query_time);
    cases.push_back(std::move(qc));
  }
  return cases;
}

}  // namespace hpm
