// Accuracy and cost measurement over a query workload (paper §VII).

#ifndef HPM_EVAL_METRICS_H_
#define HPM_EVAL_METRICS_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/hybrid_predictor.h"
#include "eval/workload.h"
#include "motion/motion_function.h"
#include "motion/recursive_motion.h"

namespace hpm {

/// Aggregated results for one predictor over one workload.
struct EvalResult {
  /// Mean Euclidean error of the top-1 prediction.
  double mean_error = 0.0;

  /// Median error (robust to fallback outliers).
  double median_error = 0.0;

  /// Mean per-query response time in milliseconds.
  double mean_response_ms = 0.0;

  /// Queries answered from patterns vs. the motion-function fallback
  /// (always 0 / all for pure motion-function baselines).
  int pattern_answers = 0;
  int motion_answers = 0;
};

/// Runs every case through `predictor.Predict` and aggregates top-1
/// error and response time. Propagates the first query error.
StatusOr<EvalResult> EvaluateHpm(const HybridPredictor& predictor,
                                 const std::vector<QueryCase>& cases);

/// Evaluates a pure motion-function baseline: `factory` builds a fresh
/// model per query, which is fitted on the case's recent movements and
/// asked for the query time (the paper's RMF comparison retrains from
/// recent history on every query). Cases whose history is too short for
/// the model fall back to the last known location.
StatusOr<EvalResult> EvaluateMotionBaseline(
    const std::vector<QueryCase>& cases,
    const std::function<std::unique_ptr<MotionFunction>()>& factory);

/// The RMF baseline with the given options.
StatusOr<EvalResult> EvaluateRmf(const std::vector<QueryCase>& cases,
                                 const RmfOptions& options = {});

/// The linear-motion baseline.
StatusOr<EvalResult> EvaluateLinear(const std::vector<QueryCase>& cases);

}  // namespace hpm

#endif  // HPM_EVAL_METRICS_H_
