#include "eval/metrics.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "motion/linear_motion.h"

namespace hpm {

namespace {

EvalResult Aggregate(std::vector<double> errors, double total_ms,
                     int pattern_answers, int motion_answers) {
  EvalResult result;
  result.pattern_answers = pattern_answers;
  result.motion_answers = motion_answers;
  if (errors.empty()) return result;
  double sum = 0.0;
  for (double e : errors) sum += e;
  result.mean_error = sum / static_cast<double>(errors.size());
  std::sort(errors.begin(), errors.end());
  const size_t mid = errors.size() / 2;
  result.median_error = errors.size() % 2 == 1
                            ? errors[mid]
                            : (errors[mid - 1] + errors[mid]) / 2.0;
  result.mean_response_ms = total_ms / static_cast<double>(errors.size());
  return result;
}

}  // namespace

StatusOr<EvalResult> EvaluateHpm(const HybridPredictor& predictor,
                                 const std::vector<QueryCase>& cases) {
  std::vector<double> errors;
  errors.reserve(cases.size());
  double total_ms = 0.0;
  int pattern_answers = 0;
  int motion_answers = 0;
  for (const QueryCase& qc : cases) {
    Stopwatch timer;
    StatusOr<std::vector<Prediction>> predictions =
        predictor.Predict(qc.query);
    total_ms += timer.ElapsedMillis();
    if (!predictions.ok()) return predictions.status();
    if (predictions->empty()) {
      return Status::Internal("predictor returned no predictions");
    }
    const Prediction& top = predictions->front();
    errors.push_back(Distance(top.location, qc.actual));
    if (top.source == PredictionSource::kPattern) {
      ++pattern_answers;
    } else {
      ++motion_answers;
    }
  }
  return Aggregate(std::move(errors), total_ms, pattern_answers,
                   motion_answers);
}

StatusOr<EvalResult> EvaluateMotionBaseline(
    const std::vector<QueryCase>& cases,
    const std::function<std::unique_ptr<MotionFunction>()>& factory) {
  std::vector<double> errors;
  errors.reserve(cases.size());
  double total_ms = 0.0;
  for (const QueryCase& qc : cases) {
    Stopwatch timer;
    std::unique_ptr<MotionFunction> model = factory();
    Point predicted = qc.query.recent_movements.back().location;
    if (model->Fit(qc.query.recent_movements).ok()) {
      StatusOr<Point> p = model->Predict(qc.query.query_time);
      if (p.ok()) predicted = *p;
    }
    total_ms += timer.ElapsedMillis();
    errors.push_back(Distance(predicted, qc.actual));
  }
  return Aggregate(std::move(errors), total_ms, 0,
                   static_cast<int>(cases.size()));
}

StatusOr<EvalResult> EvaluateRmf(const std::vector<QueryCase>& cases,
                                 const RmfOptions& options) {
  return EvaluateMotionBaseline(cases, [&options]() {
    return std::make_unique<RecursiveMotionFunction>(options);
  });
}

StatusOr<EvalResult> EvaluateLinear(const std::vector<QueryCase>& cases) {
  return EvaluateMotionBaseline(
      cases, []() { return std::make_unique<LinearMotionFunction>(); });
}

}  // namespace hpm
