// Predictive-query workload sampling for the experiment harnesses
// (paper §VII: "We test 50 queries ... and average their errors").
//
// Queries are drawn from *held-out* sub-trajectories: the predictor
// trains on the first `train_subs` periods and queries come from later
// periods, so the evaluated error is out-of-sample.

#ifndef HPM_EVAL_WORKLOAD_H_
#define HPM_EVAL_WORKLOAD_H_

#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "geo/trajectory.h"

namespace hpm {

/// Workload parameters.
struct WorkloadConfig {
  /// Number of queries to sample.
  int num_queries = 50;

  /// Length of the recent-movement window handed to the predictor.
  int recent_length = 10;

  /// Prediction length t_q - t_c.
  Timestamp prediction_length = 50;

  /// RNG seed.
  uint64_t seed = 12345;
};

/// One query with its ground-truth answer.
struct QueryCase {
  PredictiveQuery query;
  Point actual;
};

/// Samples `config.num_queries` cases from the sub-trajectories of
/// `full` with index >= train_subs. Each case picks a held-out period
/// and a current offset uniformly such that recent movements fit before
/// it and the query offset stays inside the period. Fails when the
/// trajectory has no held-out periods or the period is too short for
/// recent_length + prediction_length.
StatusOr<std::vector<QueryCase>> MakeQueryCases(const Trajectory& full,
                                                Timestamp period,
                                                int train_subs,
                                                const WorkloadConfig& config);

}  // namespace hpm

#endif  // HPM_EVAL_WORKLOAD_H_
