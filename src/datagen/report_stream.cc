#include "datagen/report_stream.h"

#include <algorithm>

#include "common/status.h"

namespace hpm {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

/// A smooth random route: waypoints every kWaypointStride samples,
/// linearly interpolated, so consecutive samples move plausibly instead
/// of teleporting.
constexpr Timestamp kWaypointStride = 5;

std::vector<Point> MakeRoute(Timestamp period, double extent, Random* rng) {
  const size_t num_waypoints =
      static_cast<size_t>((period + kWaypointStride - 1) / kWaypointStride) +
      1;
  std::vector<Point> waypoints(num_waypoints);
  for (Point& w : waypoints) {
    w.x = rng->UniformDouble(0.0, extent);
    w.y = rng->UniformDouble(0.0, extent);
  }
  std::vector<Point> route(static_cast<size_t>(period));
  for (Timestamp t = 0; t < period; ++t) {
    const size_t seg = static_cast<size_t>(t / kWaypointStride);
    const double frac =
        static_cast<double>(t % kWaypointStride) / kWaypointStride;
    const Point& a = waypoints[seg];
    const Point& b = waypoints[seg + 1];
    route[static_cast<size_t>(t)] = {a.x + (b.x - a.x) * frac,
                                     a.y + (b.y - a.y) * frac};
  }
  return route;
}

}  // namespace

ReportStream::ReportStream(const ReportStreamConfig& config)
    : config_(config),
      arrival_rng_(config.seed ^ 0x61727276616c7321ULL) {
  HPM_CHECK(config_.num_objects >= 1);
  HPM_CHECK(config_.period > 0);
  HPM_CHECK(config_.rate_per_second >= 0.0);
  HPM_CHECK(config_.arrival_jitter >= 0.0 && config_.arrival_jitter < 1.0);
  HPM_CHECK(config_.drift_fraction >= 0.0 && config_.drift_fraction <= 1.0);
  objects_.resize(static_cast<size_t>(config_.num_objects));
  for (size_t i = 0; i < objects_.size(); ++i) {
    ObjectState& object = objects_[i];
    object.rng = Random(config_.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    object.route = MakeRoute(config_.period, config_.extent, &object.rng);
    StartPeriod(&object);
  }
}

void ReportStream::DriftRoute(ObjectState* object) {
  // Re-draw a deterministic subset of waypoint-aligned samples: the route
  // morphs but keeps most of its shape, so mined patterns partially
  // survive a drift event (the interesting case for promote/demote).
  std::vector<Point> fresh =
      MakeRoute(config_.period, config_.extent, &object->rng);
  for (Timestamp t = 0; t < config_.period; ++t) {
    if (object->rng.Bernoulli(config_.drift_fraction)) {
      object->route[static_cast<size_t>(t)] = fresh[static_cast<size_t>(t)];
    }
  }
}

void ReportStream::StartPeriod(ObjectState* object) {
  if (config_.drift_every_periods > 0 && object->periods_emitted > 0 &&
      object->periods_emitted % config_.drift_every_periods == 0) {
    DriftRoute(object);
  }
  object->current_period.resize(static_cast<size_t>(config_.period));
  if (object->rng.Bernoulli(config_.pattern_probability)) {
    for (Timestamp t = 0; t < config_.period; ++t) {
      const Point& base = object->route[static_cast<size_t>(t)];
      object->current_period[static_cast<size_t>(t)] = {
          Clamp(base.x + object->rng.Gaussian(0.0, config_.noise_sigma), 0.0,
                config_.extent),
          Clamp(base.y + object->rng.Gaussian(0.0, config_.noise_sigma), 0.0,
                config_.extent)};
    }
  } else {
    // A wander period: its own throwaway route, no pattern to find.
    object->current_period =
        MakeRoute(config_.period, config_.extent, &object->rng);
  }
  ++object->periods_emitted;
}

StreamedReport ReportStream::Next() {
  ObjectState& object = objects_[next_object_];
  next_object_ = (next_object_ + 1) % objects_.size();

  StreamedReport report;
  report.object_id = static_cast<int64_t>((&object - objects_.data()) + 1);
  report.time = object.next_time;
  const Timestamp offset = object.next_time % config_.period;
  report.location = object.current_period[static_cast<size_t>(offset)];
  ++object.next_time;
  if (object.next_time % config_.period == 0) StartPeriod(&object);

  if (config_.rate_per_second > 0.0) {
    const double mean_gap = 1.0 / config_.rate_per_second;
    const double jitter =
        config_.arrival_jitter > 0.0
            ? arrival_rng_.UniformDouble(-config_.arrival_jitter,
                                         config_.arrival_jitter)
            : 0.0;
    clock_seconds_ += mean_gap * (1.0 + jitter);
    report.arrival_seconds = clock_seconds_;
  }
  ++emitted_;
  return report;
}

std::vector<StreamedReport> ReportStream::Take(size_t n) {
  std::vector<StreamedReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) reports.push_back(Next());
  return reports;
}

}  // namespace hpm
