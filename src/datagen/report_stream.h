// ReportStream: the continuous-ingest view of the periodic generator.
//
// Where GeneratePeriodicTrajectory materialises one object's whole
// history up front, a ReportStream emits one (object, location) report
// at a time for a fleet of objects, round-robin across objects in
// timestamp order — the shape a serving store actually ingests. Three
// extra knobs make it the driver for the incremental-mining work:
//
//  * arrival pacing — a mean inter-report gap plus uniform jitter gives
//    each report an arrival_seconds stamp, so benches can replay the
//    stream at a configured rate instead of as fast as possible;
//  * behaviour drift — every `drift_every_periods` periods an object
//    re-draws a fraction of its route waypoints, so the pattern set a
//    miner maintains actually goes stale over time;
//  * per-object routes — each object follows its own seeded route, so a
//    sharded store sees uncorrelated fleets, not one cloned object.
//
// Fully deterministic given the config (same seed -> same reports, same
// arrival stamps), which the crash/replay and differential tests rely on.

#ifndef HPM_DATAGEN_REPORT_STREAM_H_
#define HPM_DATAGEN_REPORT_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geo/trajectory.h"

namespace hpm {

struct ReportStreamConfig {
  /// Fleet size; object ids are 1..num_objects.
  int num_objects = 4;

  /// Period T of every object's behaviour.
  Timestamp period = 20;

  /// Probability a period follows the object's route (vs wandering),
  /// the generator's pattern-strength knob f.
  double pattern_probability = 0.9;

  /// Spatial noise around the route on pattern periods.
  double noise_sigma = 4.0;

  /// Mean reports/second across the whole fleet; 0 disables pacing
  /// (arrival_seconds stays 0).
  double rate_per_second = 0.0;

  /// Uniform fraction of the mean gap added/removed per arrival, in
  /// [0, 1): gap ~ U[(1-jitter), (1+jitter)] * mean.
  double arrival_jitter = 0.0;

  /// Every this many periods an object re-draws part of its route
  /// (0 = routes never change).
  int drift_every_periods = 0;

  /// Fraction of route waypoints re-drawn at a drift event.
  double drift_fraction = 0.5;

  /// Data-space extent (locations in [0, extent]^2).
  double extent = 1000.0;

  uint64_t seed = 1;
};

/// One report of the interleaved fleet stream.
struct StreamedReport {
  int64_t object_id = 0;
  Timestamp time = 0;
  Point location;
  /// When this report "arrives", seconds since stream start (0 when
  /// pacing is disabled).
  double arrival_seconds = 0.0;
};

class ReportStream {
 public:
  explicit ReportStream(const ReportStreamConfig& config);

  /// The next report. The stream is infinite: objects are visited
  /// round-robin, each advancing through timestamps 0, 1, 2, ...
  StreamedReport Next();

  /// Convenience: the next `n` reports.
  std::vector<StreamedReport> Take(size_t n);

  /// Total reports emitted so far.
  uint64_t emitted() const { return emitted_; }

 private:
  struct ObjectState {
    std::vector<Point> route;
    /// Precomputed points of the period in progress.
    std::vector<Point> current_period;
    Timestamp next_time = 0;
    int periods_emitted = 0;
    Random rng;

    ObjectState() : rng(0) {}
  };

  void StartPeriod(ObjectState* object);
  void DriftRoute(ObjectState* object);

  ReportStreamConfig config_;
  std::vector<ObjectState> objects_;
  Random arrival_rng_;
  double clock_seconds_ = 0.0;
  uint64_t emitted_ = 0;
  size_t next_object_ = 0;
};

}  // namespace hpm

#endif  // HPM_DATAGEN_REPORT_STREAM_H_
