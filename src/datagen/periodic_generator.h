// Periodic trajectory generator, modelled on the generator of Mamoulis
// et al. (SIGKDD'04) as modified by the HPM paper (§VII): given seed
// routes, produce N sub-trajectories, each of which is — with probability
// f — a noisy repetition of a seed route, and otherwise an irregular
// wander. f is the knob that orders the four datasets by pattern
// strength (Bike > Cow > Car > Airplane).

#ifndef HPM_DATAGEN_PERIODIC_GENERATOR_H_
#define HPM_DATAGEN_PERIODIC_GENERATOR_H_

#include <vector>

#include "common/status.h"
#include "geo/trajectory.h"

namespace hpm {

/// Generator parameters.
struct PeriodicGeneratorConfig {
  /// Period T (samples per sub-trajectory).
  Timestamp period = 300;

  /// How many sub-trajectories to produce (the paper generates 200 —
  /// "a car's 200 days movements").
  int num_sub_trajectories = 200;

  /// Probability f that a sub-trajectory is similar to a seed route.
  double pattern_probability = 0.8;

  /// Spatial noise added to every point of a pattern-following
  /// sub-trajectory (standard deviation, data-space units).
  double noise_sigma = 10.0;

  /// Maximum temporal jitter: a pattern day's route is shifted by a
  /// uniform integer in [-time_jitter, +time_jitter] samples.
  Timestamp time_jitter = 1;

  /// Route adherence on pattern days: the day is divided into windows of
  /// `detour_window` samples; each window independently becomes a
  /// *detour* with this probability, during which the object swings away
  /// from the route (up to `detour_magnitude`) and returns. Detours are
  /// what give mined patterns confidences below 1 — an object can visit
  /// a premise region and then not reach the usual consequence.
  double detour_probability = 0.0;

  /// Samples per adherence window.
  Timestamp detour_window = 20;

  /// Peak distance from the route during a detour.
  double detour_magnitude = 600.0;

  /// Data-space extent (results clamped to [0, extent]^2).
  double extent = 10000.0;

  /// RNG seed.
  uint64_t seed = 7;
};

/// A seed route with a selection weight; weights among routes are
/// normalised internally.
struct SeedRoute {
  std::vector<Point> points;
  double weight = 1.0;
};

/// Generates the full trajectory (num_sub_trajectories * period samples)
/// by concatenating generated sub-trajectories. Every route must have
/// exactly `period` points. Returns InvalidArgument for malformed
/// configuration or routes.
StatusOr<Trajectory> GeneratePeriodicTrajectory(
    const std::vector<SeedRoute>& routes,
    const PeriodicGeneratorConfig& config);

}  // namespace hpm

#endif  // HPM_DATAGEN_PERIODIC_GENERATOR_H_
