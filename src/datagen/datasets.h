// The four experimental datasets (paper §VII): Bike, Cow, Car, Airplane.
//
// Each is 200 sub-trajectories of T=300 samples in [0,10000]^2, generated
// by the periodic generator around kind-specific seed routes with a
// kind-specific pattern probability f ordered Bike > Cow > Car > Airplane
// — the paper's control for pattern strength.

#ifndef HPM_DATAGEN_DATASETS_H_
#define HPM_DATAGEN_DATASETS_H_

#include <string>
#include <vector>

#include "datagen/periodic_generator.h"
#include "geo/trajectory.h"

namespace hpm {

/// The four dataset flavours.
enum class DatasetKind { kBike, kCow, kCar, kAirplane };

/// "Bike", "Cow", "Car", "Airplane".
const char* DatasetName(DatasetKind kind);

/// All four kinds in the paper's presentation order.
std::vector<DatasetKind> AllDatasetKinds();

/// A generated dataset with its provenance.
struct Dataset {
  DatasetKind kind = DatasetKind::kBike;
  Trajectory trajectory;
  std::vector<SeedRoute> routes;
  PeriodicGeneratorConfig config;
};

/// Default generator configuration for a kind (sets the kind's pattern
/// probability f: Bike 0.90, Cow 0.75, Car 0.60, Airplane 0.40).
PeriodicGeneratorConfig DefaultConfig(DatasetKind kind);

/// Generates a dataset with the default configuration.
Dataset MakeDataset(DatasetKind kind);

/// Generates a dataset with an overridden configuration (the pattern
/// probability is still taken from `config`, so callers can sweep it).
Dataset MakeDataset(DatasetKind kind, const PeriodicGeneratorConfig& config);

}  // namespace hpm

#endif  // HPM_DATAGEN_DATASETS_H_
