#include "datagen/seed_generators.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace hpm {

namespace {

Point Clamp(const Point& p, double extent) {
  return {std::clamp(p.x, 0.0, extent), std::clamp(p.y, 0.0, extent)};
}

}  // namespace

std::vector<Point> ResampleUniform(const std::vector<Point>& polyline,
                                   size_t count) {
  HPM_CHECK(polyline.size() >= 2);
  HPM_CHECK(count >= 2);

  // Cumulative arc length at each vertex.
  std::vector<double> cumulative(polyline.size(), 0.0);
  for (size_t i = 1; i < polyline.size(); ++i) {
    cumulative[i] =
        cumulative[i - 1] + Distance(polyline[i - 1], polyline[i]);
  }
  const double total = cumulative.back();

  std::vector<Point> samples;
  samples.reserve(count);
  if (total <= 0.0) {
    samples.assign(count, polyline.front());
    return samples;
  }
  size_t segment = 0;
  for (size_t s = 0; s < count; ++s) {
    const double target =
        total * static_cast<double>(s) / static_cast<double>(count - 1);
    while (segment + 2 < polyline.size() &&
           cumulative[segment + 1] < target) {
      ++segment;
    }
    const double seg_len = cumulative[segment + 1] - cumulative[segment];
    const double frac =
        seg_len > 0.0 ? (target - cumulative[segment]) / seg_len : 0.0;
    samples.push_back(polyline[segment] +
                      (polyline[segment + 1] - polyline[segment]) * frac);
  }
  return samples;
}

std::vector<Point> MakeBikeSeed(const SeedConfig& config) {
  Random rng(config.seed);
  const double e = config.extent;

  // A long ride from one town (lower-left area) to another (upper-right
  // area) through gently meandering waypoints.
  std::vector<Point> waypoints;
  const Point start{rng.UniformDouble(0.05, 0.15) * e,
                    rng.UniformDouble(0.05, 0.20) * e};
  const Point end{rng.UniformDouble(0.80, 0.95) * e,
                  rng.UniformDouble(0.75, 0.95) * e};
  const int num_mid = 10;
  waypoints.push_back(start);
  for (int i = 1; i <= num_mid; ++i) {
    const double frac = static_cast<double>(i) / (num_mid + 1);
    Point base = start + (end - start) * frac;
    // Lateral meander perpendicular-ish to the main direction.
    base.x += rng.Gaussian(0.0, 0.06 * e);
    base.y += rng.Gaussian(0.0, 0.06 * e);
    waypoints.push_back(Clamp(base, e));
  }
  waypoints.push_back(end);

  // Chaikin corner-cutting twice for smooth riding lines.
  for (int round = 0; round < 2; ++round) {
    std::vector<Point> smooth;
    smooth.push_back(waypoints.front());
    for (size_t i = 0; i + 1 < waypoints.size(); ++i) {
      smooth.push_back(waypoints[i] * 0.75 + waypoints[i + 1] * 0.25);
      smooth.push_back(waypoints[i] * 0.25 + waypoints[i + 1] * 0.75);
    }
    smooth.push_back(waypoints.back());
    waypoints = std::move(smooth);
  }
  return ResampleUniform(waypoints, static_cast<size_t>(config.period));
}

std::vector<Point> MakeCowSeed(const SeedConfig& config) {
  Random rng(config.seed);
  const double e = config.extent;

  // Three grazing areas visited in order over the period, with a slow
  // bounded wander inside each and short transits between them.
  std::vector<Point> dwell(3);
  for (auto& d : dwell) {
    d = {rng.UniformDouble(0.2, 0.8) * e, rng.UniformDouble(0.2, 0.8) * e};
  }
  const Timestamp period = config.period;
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(period));

  Point pos = dwell[0];
  for (Timestamp t = 0; t < period; ++t) {
    const double phase =
        static_cast<double>(t) / static_cast<double>(period);
    const size_t target_idx = std::min<size_t>(
        2, static_cast<size_t>(phase * 3.0));
    const Point& target = dwell[target_idx];
    // Ornstein-Uhlenbeck-style pull toward the current grazing area plus
    // small diffusive steps — cattle move slowly and stay bounded.
    pos = pos + (target - pos) * 0.08;
    pos.x += rng.Gaussian(0.0, 0.0015 * e);
    pos.y += rng.Gaussian(0.0, 0.0015 * e);
    pos = Clamp(pos, e);
    points.push_back(pos);
  }
  return points;
}

std::vector<Point> MakeCarSeed(const SeedConfig& config) {
  Random rng(config.seed);
  const double e = config.extent;
  const double cell = e / 20.0;  // Road spacing: a 20x20 street grid.

  // A lattice walk biased toward a destination: only axis-aligned moves,
  // so every intersection produces the sudden direction change the paper
  // calls out for the Car dataset.
  int x = static_cast<int>(rng.UniformInt(2, 6));
  int y = static_cast<int>(rng.UniformInt(2, 6));
  const int dest_x = static_cast<int>(rng.UniformInt(14, 18));
  const int dest_y = static_cast<int>(rng.UniformInt(14, 18));

  std::vector<Point> vertices;
  vertices.push_back({x * cell, y * cell});
  while (x != dest_x || y != dest_y) {
    // Drive several blocks in one direction before turning.
    const bool move_x =
        (x == dest_x) ? false
                      : (y == dest_y) ? true : rng.Bernoulli(0.5);
    const int blocks = static_cast<int>(rng.UniformInt(1, 4));
    for (int b = 0; b < blocks; ++b) {
      if (move_x && x != dest_x) {
        x += (dest_x > x) ? 1 : -1;
      } else if (!move_x && y != dest_y) {
        y += (dest_y > y) ? 1 : -1;
      }
      vertices.push_back({x * cell, y * cell});
      if (x == dest_x && y == dest_y) break;
    }
  }
  return ResampleUniform(vertices, static_cast<size_t>(config.period));
}

std::vector<Point> MakeAirplaneSeed(const SeedConfig& config) {
  Random rng(config.seed);
  const double e = config.extent;

  // Airports sampled uniformly (standing in for the paper's California
  // road-network sample points), connected by straight constant-speed
  // legs.
  const int num_airports = 12;
  std::vector<Point> airports(num_airports);
  for (auto& a : airports) {
    a = {rng.UniformDouble(0.05, 0.95) * e, rng.UniformDouble(0.05, 0.95) * e};
  }
  const int num_legs = static_cast<int>(rng.UniformInt(3, 5));
  std::vector<Point> route;
  int current = static_cast<int>(rng.Uniform(num_airports));
  route.push_back(airports[static_cast<size_t>(current)]);
  for (int leg = 0; leg < num_legs; ++leg) {
    int next = current;
    while (next == current) {
      next = static_cast<int>(rng.Uniform(num_airports));
    }
    route.push_back(airports[static_cast<size_t>(next)]);
    current = next;
  }
  return ResampleUniform(route, static_cast<size_t>(config.period));
}

}  // namespace hpm
