#include "datagen/datasets.h"

#include "common/status.h"
#include "datagen/seed_generators.h"

namespace hpm {

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kBike:
      return "Bike";
    case DatasetKind::kCow:
      return "Cow";
    case DatasetKind::kCar:
      return "Car";
    case DatasetKind::kAirplane:
      return "Airplane";
  }
  return "Unknown";
}

std::vector<DatasetKind> AllDatasetKinds() {
  return {DatasetKind::kBike, DatasetKind::kCow, DatasetKind::kCar,
          DatasetKind::kAirplane};
}

PeriodicGeneratorConfig DefaultConfig(DatasetKind kind) {
  PeriodicGeneratorConfig config;
  config.period = 300;
  config.num_sub_trajectories = 200;
  // GPS-scale noise comparable to the experiments' Eps range (22..38):
  // marginal clusters (the secondary route's) then form or fail with
  // Eps, which is what drives the paper's Fig. 7.
  config.noise_sigma = 20.0;
  config.time_jitter = 1;
  config.extent = 10000.0;
  // Pattern strength falls from Bike to Airplane on two axes, as in the
  // paper's generation: the share of pattern-following days (f) and the
  // route adherence within those days (detour probability).
  switch (kind) {
    case DatasetKind::kBike:
      config.pattern_probability = 0.90;
      config.detour_probability = 0.05;
      config.seed = 1001;
      break;
    case DatasetKind::kCow:
      config.pattern_probability = 0.75;
      config.detour_probability = 0.15;
      config.seed = 1002;
      break;
    case DatasetKind::kCar:
      config.pattern_probability = 0.60;
      config.detour_probability = 0.30;
      config.seed = 1003;
      break;
    case DatasetKind::kAirplane:
      config.pattern_probability = 0.40;
      config.detour_probability = 0.50;
      config.seed = 1004;
      break;
  }
  return config;
}

Dataset MakeDataset(DatasetKind kind) {
  return MakeDataset(kind, DefaultConfig(kind));
}

Dataset MakeDataset(DatasetKind kind, const PeriodicGeneratorConfig& config) {
  SeedConfig seed_config;
  seed_config.period = config.period;
  seed_config.extent = config.extent;
  seed_config.seed = config.seed * 31 + 5;

  // A dominant route plus a secondary one (the Jane example: the weekday
  // commute and the weekend beach trip).
  std::vector<SeedRoute> routes;
  auto make_seed = [&](uint64_t salt) {
    SeedConfig sc = seed_config;
    sc.seed = seed_config.seed + salt;
    switch (kind) {
      case DatasetKind::kBike:
        return MakeBikeSeed(sc);
      case DatasetKind::kCow:
        return MakeCowSeed(sc);
      case DatasetKind::kCar:
        return MakeCarSeed(sc);
      case DatasetKind::kAirplane:
        return MakeAirplaneSeed(sc);
    }
    HPM_CHECK(false);
    return std::vector<Point>{};
  };
  routes.push_back({make_seed(0), 0.75});
  routes.push_back({make_seed(97), 0.25});

  Dataset dataset;
  dataset.kind = kind;
  dataset.routes = routes;
  dataset.config = config;
  StatusOr<Trajectory> trajectory =
      GeneratePeriodicTrajectory(routes, config);
  HPM_CHECK(trajectory.ok());
  dataset.trajectory = std::move(*trajectory);
  return dataset;
}

}  // namespace hpm
