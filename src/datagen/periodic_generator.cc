#include "datagen/periodic_generator.h"

#define _USE_MATH_DEFINES
#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace hpm {

namespace {

Point Clamp(const Point& p, double extent) {
  return {std::clamp(p.x, 0.0, extent), std::clamp(p.y, 0.0, extent)};
}

/// An irregular day: a random bounded wander with step sizes comparable
/// to route speeds, so irregular days are kinematically plausible but
/// spatially uncorrelated with the seed routes.
void AppendIrregularDay(const PeriodicGeneratorConfig& config, Random* rng,
                        Trajectory* out) {
  Point pos{rng->UniformDouble(0.0, config.extent),
            rng->UniformDouble(0.0, config.extent)};
  Point velocity{rng->Gaussian(0.0, config.extent / 600.0),
                 rng->Gaussian(0.0, config.extent / 600.0)};
  for (Timestamp t = 0; t < config.period; ++t) {
    velocity.x += rng->Gaussian(0.0, config.extent / 2000.0);
    velocity.y += rng->Gaussian(0.0, config.extent / 2000.0);
    // Mild drag keeps the wander bounded.
    velocity = velocity * 0.98;
    pos = Clamp(pos + velocity, config.extent);
    out->Append(pos);
  }
}

/// A pattern day: the chosen route with temporal jitter, spatial noise,
/// and (with detour_probability per window) excursions away from the
/// route that lower the supports and confidences of downstream patterns.
void AppendPatternDay(const SeedRoute& route,
                      const PeriodicGeneratorConfig& config, Random* rng,
                      Trajectory* out) {
  const Timestamp jitter =
      config.time_jitter > 0
          ? rng->UniformInt(-config.time_jitter, config.time_jitter)
          : 0;
  const Timestamp window = std::max<Timestamp>(1, config.detour_window);

  bool detouring = false;
  Point detour_direction;
  for (Timestamp t = 0; t < config.period; ++t) {
    if (t % window == 0) {
      detouring = config.detour_probability > 0.0 &&
                  rng->Bernoulli(config.detour_probability);
      if (detouring) {
        const double angle = rng->UniformDouble(0.0, 2.0 * M_PI);
        detour_direction = {std::cos(angle), std::sin(angle)};
      }
    }
    const Timestamp src =
        std::clamp<Timestamp>(t + jitter, 0, config.period - 1);
    Point p = route.points[static_cast<size_t>(src)];
    if (detouring) {
      // A smooth half-sine excursion: leave the route, peak at the
      // window's midpoint, and rejoin by its end.
      const double phase =
          static_cast<double>(t % window) / static_cast<double>(window);
      const double swing =
          config.detour_magnitude * std::sin(phase * M_PI);
      p = p + detour_direction * swing;
    }
    p.x += rng->Gaussian(0.0, config.noise_sigma);
    p.y += rng->Gaussian(0.0, config.noise_sigma);
    out->Append(Clamp(p, config.extent));
  }
}

}  // namespace

StatusOr<Trajectory> GeneratePeriodicTrajectory(
    const std::vector<SeedRoute>& routes,
    const PeriodicGeneratorConfig& config) {
  if (config.period < 2) {
    return Status::InvalidArgument("period must be >= 2");
  }
  if (config.num_sub_trajectories < 1) {
    return Status::InvalidArgument("num_sub_trajectories must be >= 1");
  }
  if (config.pattern_probability < 0.0 ||
      config.pattern_probability > 1.0) {
    return Status::InvalidArgument("pattern_probability must be in [0,1]");
  }
  if (routes.empty()) {
    return Status::InvalidArgument("at least one seed route is required");
  }
  double total_weight = 0.0;
  for (const SeedRoute& r : routes) {
    if (static_cast<Timestamp>(r.points.size()) != config.period) {
      return Status::InvalidArgument(
          "every seed route must have exactly `period` points");
    }
    if (r.weight < 0.0) {
      return Status::InvalidArgument("route weights must be >= 0");
    }
    total_weight += r.weight;
  }
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("route weights sum to zero");
  }

  Random rng(config.seed);
  Trajectory trajectory;
  for (int day = 0; day < config.num_sub_trajectories; ++day) {
    if (rng.Bernoulli(config.pattern_probability)) {
      // Weighted route choice.
      double pick = rng.NextDouble() * total_weight;
      size_t chosen = 0;
      for (size_t i = 0; i < routes.size(); ++i) {
        pick -= routes[i].weight;
        if (pick <= 0.0) {
          chosen = i;
          break;
        }
      }
      AppendPatternDay(routes[chosen], config, &rng, &trajectory);
    } else {
      AppendIrregularDay(config, &rng, &trajectory);
    }
  }
  return trajectory;
}

}  // namespace hpm
