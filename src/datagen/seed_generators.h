// Seed-route synthesis for the four experimental datasets (paper §VII).
//
// The paper seeds its periodic generator with four real single-object
// trajectories (Bike, Cow, Car) and one synthetic one (Airplane). Those
// GPS traces are not distributable, so each generator here synthesises a
// seed with the same qualitative character the paper describes — the
// property the experiments actually depend on, since every dataset is
// ultimately 200 noisy periodic repetitions of its seed:
//   * Bike    — one long, smooth town-to-town route;
//   * Cow     — slow bounded grazing among a few dwell areas;
//   * Car     — road-network route with sudden 90° turns at intersections
//               (the paper highlights Car's "sudden changes of direction
//               on road intersections");
//   * Airplane— straight high-speed legs between random "airports"
//               sampled from a synthetic point set.

#ifndef HPM_DATAGEN_SEED_GENERATORS_H_
#define HPM_DATAGEN_SEED_GENERATORS_H_

#include <vector>

#include "common/random.h"
#include "geo/point.h"
#include "geo/trajectory.h"

namespace hpm {

/// Common parameters for seed synthesis.
struct SeedConfig {
  /// Samples per seed (= the period T).
  Timestamp period = 300;

  /// Data-space extent: seeds live in [0, extent]^2, matching the
  /// paper's normalisation to [0, 10000]^2.
  double extent = 10000.0;

  /// RNG seed.
  uint64_t seed = 1;
};

/// Resamples a polyline to `count` points uniformly spaced by arc
/// length. The polyline must contain at least 2 points.
std::vector<Point> ResampleUniform(const std::vector<Point>& polyline,
                                   size_t count);

/// Smooth meandering town-to-town route (Bike).
std::vector<Point> MakeBikeSeed(const SeedConfig& config);

/// Grazing walk among dwell areas (Cow).
std::vector<Point> MakeCowSeed(const SeedConfig& config);

/// Grid-road route with sharp intersection turns (Car).
std::vector<Point> MakeCarSeed(const SeedConfig& config);

/// Straight legs between random airports (Airplane).
std::vector<Point> MakeAirplaneSeed(const SeedConfig& config);

}  // namespace hpm

#endif  // HPM_DATAGEN_SEED_GENERATORS_H_
