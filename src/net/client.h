// HpmClient: the client side of the HPM wire protocol.
//
// Wraps Socket + frame + protocol into typed calls with a pooled set of
// connections and retry. Transport failures — connect refused, torn
// frames, a server that vanished mid-reply — are mapped to kUnavailable
// and retried under RetryWithBackoff with full jitter; a *transported*
// error (the Status the server put in the reply envelope) is returned
// as-is, message intact, so server-supplied retry-after hints flow
// straight into the client's backoff floor.
//
// Thread-safe: calls may run concurrently; the connection pool is
// shared and bounded.

#ifndef HPM_NET_CLIENT_H_
#define HPM_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace hpm {

struct HpmClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Budget for establishing one connection.
  std::chrono::milliseconds connect_timeout{2000};
  /// Budget for one frame transfer (send or receive).
  std::chrono::milliseconds io_timeout{5000};
  /// Idle connections kept for reuse.
  size_t max_pooled_connections = 4;
  /// Backoff for transport failures and kUnavailable replies. Full
  /// jitter by default: a fleet of clients bounced by the same busy
  /// server must not retry in lockstep.
  RetryPolicy retry = [] {
    RetryPolicy p;
    p.full_jitter = true;
    return p;
  }();
  /// Seed for the jitter stream (deterministic in tests).
  uint64_t retry_seed = 0x9e3779b97f4a7c15ull;
};

class HpmClient {
 public:
  explicit HpmClient(HpmClientOptions options);

  HpmClient(const HpmClient&) = delete;
  HpmClient& operator=(const HpmClient&) = delete;

  StatusOr<ReplyInfo> Ping();
  /// Primary only; a replica answers kFailedPrecondition.
  StatusOr<ReplyInfo> Report(const ReportRequest& request);
  StatusOr<PredictReply> Predict(const PredictRequest& request);
  StatusOr<FleetReply> Range(const RangeRequest& request);
  StatusOr<FleetReply> Knn(const KnnRequest& request);
  StatusOr<StatsReply> Stats();
  StatusOr<ReplStateReply> ReplState(const ReplStateRequest& request);
  StatusOr<ReplFetchReply> ReplFetch(const ReplFetchRequest& request);

  /// Downloads one store file in chunks (ReplFetch until eof).
  Status FetchFile(const std::string& name, uint32_t chunk_bytes,
                   std::string* contents);

  /// Test hook: replaces the real sleep between retries.
  void set_sleep_fn(std::function<void(std::chrono::microseconds)> fn) {
    sleep_fn_ = std::move(fn);
  }

  /// Idle pooled connections (observability + tests).
  size_t pooled_connections() const;

 private:
  /// A decoded reply envelope whose transported status was OK.
  struct Envelope {
    ReplyInfo info;
    std::string body;
  };

  /// One attempt: checkout/connect, send, receive, decode. Transport
  /// failures come back as kUnavailable (retryable); transported server
  /// errors come back verbatim.
  StatusOr<Envelope> CallOnce(const std::string& request);
  /// CallOnce under RetryWithBackoff.
  StatusOr<Envelope> Call(const std::string& request);

  StatusOr<Socket> CheckOut();
  void CheckIn(Socket socket);

  HpmClientOptions options_;
  std::function<void(std::chrono::microseconds)> sleep_fn_;

  mutable std::mutex mutex_;
  std::vector<Socket> pool_;
  uint64_t call_seq_ = 0;
};

}  // namespace hpm

#endif  // HPM_NET_CLIENT_H_
