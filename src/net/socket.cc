#include "net/socket.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "io/eintr.h"

namespace hpm {

namespace {

/// Milliseconds for poll(): -1 for an infinite deadline, clamped to at
/// least 1ms for a pending one so a sub-millisecond remainder still
/// polls instead of spinning.
int PollTimeoutMillis(const Deadline& deadline) {
  if (deadline.is_infinite()) return -1;
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline.remaining());
  if (remaining.count() <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(remaining.count() + 1, 3600 * 1000));
}

Status WaitFor(int fd, short events, const Deadline& deadline,
               const char* what) {
  for (;;) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = RetryOnEintr(
        [&] { return ::poll(&pfd, 1, PollTimeoutMillis(deadline)); });
    if (rc < 0) {
      return Status::Unavailable(std::string(what) + " poll failed: " +
                                 std::strerror(errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    // Readable/writable OR error/hup: let the following syscall report
    // the precise failure.
    return Status::OK();
  }
}

bool ParseAddress(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> Socket::Connect(const std::string& host, int port,
                                 Deadline deadline) {
  sockaddr_in addr;
  if (!ParseAddress(host, port, &addr)) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") +
                               std::strerror(errno));
  }
  Socket socket(fd);

  // Non-blocking connect + poll-for-writable gives the deadline teeth;
  // the socket goes back to blocking afterwards (all transfers are
  // poll-gated anyway).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = RetryOnEintr([&] {
    return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  });
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  if (rc != 0) {
    HPM_RETURN_IF_ERROR(WaitFor(fd, POLLOUT, deadline, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

Status Socket::SendAll(const void* data, size_t n, Deadline deadline) {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < n) {
    HPM_RETURN_IF_ERROR(WaitFor(fd_, POLLOUT, deadline, "send"));
    const ssize_t sent = RetryOnEintr([&] {
      return ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    });
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("send: ") +
                                 std::strerror(errno));
    }
    done += static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t n, Deadline deadline,
                       bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < n) {
    HPM_RETURN_IF_ERROR(WaitFor(fd_, POLLIN, deadline, "recv"));
    const ssize_t got =
        RetryOnEintr([&] { return ::recv(fd_, p + done, n - done, 0); });
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("recv: ") +
                                 std::strerror(errno));
    }
    if (got == 0) {
      if (done == 0) {
        if (clean_eof != nullptr) *clean_eof = true;
        return Status::Unavailable("connection closed by peer");
      }
      return Status::DataLoss("connection closed mid-transfer (" +
                              std::to_string(done) + "/" +
                              std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status Socket::WaitReadable(Deadline deadline) {
  return WaitFor(fd_, POLLIN, deadline, "wait");
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Listener> Listener::Bind(const std::string& host, int port,
                                  int backlog) {
  sockaddr_in addr;
  if (!ParseAddress(host, port, &addr)) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") +
                               std::strerror(errno));
  }
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable("bind " + host + ":" + std::to_string(port) +
                               ": " + std::strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    return Status::Unavailable(std::string("listen: ") +
                               std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    listener.port_ = ntohs(bound.sin_port);
  }
  return listener;
}

StatusOr<Socket> Listener::Accept(Deadline deadline) {
  HPM_RETURN_IF_ERROR(WaitFor(fd_, POLLIN, deadline, "accept"));
  const int fd = RetryOnEintr(
      [&] { return ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC); });
  if (fd < 0) {
    return Status::Unavailable(std::string("accept: ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace hpm
