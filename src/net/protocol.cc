#include "net/protocol.h"

#include <cstdio>

#include "net/frame.h"
#include "net/wire.h"

namespace hpm {

namespace {

constexpr uint8_t kLastStatusCode = static_cast<uint8_t>(StatusCode::kDataLoss);
constexpr size_t kMaxListedSegments = 1 << 16;
constexpr size_t kMaxResultEntries = 1 << 20;

void PutMsgType(std::string* out, MsgType type) {
  wire::PutU8(out, static_cast<uint8_t>(type));
}

void PutPrediction(std::string* out, const Prediction& p) {
  wire::PutF64(out, p.location.x);
  wire::PutF64(out, p.location.y);
  wire::PutF64(out, p.score);
  wire::PutU8(out, static_cast<uint8_t>(p.source));
  wire::PutI64(out, p.pattern_id);
  wire::PutI64(out, p.consequence_region);
  wire::PutF64(out, p.confidence);
  wire::PutU8(out, p.uncertainty.IsEmpty() ? 0 : 1);
  if (!p.uncertainty.IsEmpty()) {
    wire::PutF64(out, p.uncertainty.min().x);
    wire::PutF64(out, p.uncertainty.min().y);
    wire::PutF64(out, p.uncertainty.max().x);
    wire::PutF64(out, p.uncertainty.max().y);
  }
  wire::PutU8(out, static_cast<uint8_t>(p.degraded));
}

bool GetPrediction(wire::Cursor* cursor, Prediction* p) {
  uint8_t source = 0;
  uint8_t degraded = 0;
  uint8_t has_uncertainty = 0;
  int64_t pattern_id = 0;
  int64_t consequence_region = 0;
  cursor->F64(&p->location.x);
  cursor->F64(&p->location.y);
  cursor->F64(&p->score);
  cursor->U8(&source);
  cursor->I64(&pattern_id);
  cursor->I64(&consequence_region);
  cursor->F64(&p->confidence);
  if (!cursor->U8(&has_uncertainty)) return false;
  if (has_uncertainty != 0) {
    Point lo, hi;
    cursor->F64(&lo.x);
    cursor->F64(&lo.y);
    cursor->F64(&hi.x);
    if (!cursor->F64(&hi.y)) return false;
    p->uncertainty = BoundingBox(lo, hi);
  }
  if (!cursor->U8(&degraded)) return false;
  if (source > static_cast<uint8_t>(PredictionSource::kMotionFunction) ||
      degraded > static_cast<uint8_t>(DegradedReason::kOverloaded)) {
    return false;
  }
  p->source = static_cast<PredictionSource>(source);
  p->degraded = static_cast<DegradedReason>(degraded);
  p->pattern_id = static_cast<int>(pattern_id);
  p->consequence_region = static_cast<int>(consequence_region);
  return true;
}

}  // namespace

const char* ServerRoleName(ServerRole role) {
  switch (role) {
    case ServerRole::kPrimary:
      return "primary";
    case ServerRole::kReplica:
      return "replica";
  }
  return "unknown";
}

std::string EncodePing() {
  std::string out;
  PutMsgType(&out, MsgType::kPing);
  return out;
}

std::string EncodeReport(const ReportRequest& req) {
  std::string out;
  PutMsgType(&out, MsgType::kReport);
  wire::PutI64(&out, req.id);
  wire::PutI64(&out, req.t);
  wire::PutF64(&out, req.x);
  wire::PutF64(&out, req.y);
  return out;
}

std::string EncodePredict(const PredictRequest& req) {
  std::string out;
  PutMsgType(&out, MsgType::kPredict);
  wire::PutI64(&out, req.id);
  wire::PutI64(&out, req.tq);
  wire::PutU32(&out, static_cast<uint32_t>(req.k));
  wire::PutU64(&out, req.deadline_us);
  return out;
}

std::string EncodeRange(const RangeRequest& req) {
  std::string out;
  PutMsgType(&out, MsgType::kRange);
  wire::PutF64(&out, req.min_x);
  wire::PutF64(&out, req.min_y);
  wire::PutF64(&out, req.max_x);
  wire::PutF64(&out, req.max_y);
  wire::PutI64(&out, req.tq);
  wire::PutU32(&out, static_cast<uint32_t>(req.k_per_object));
  wire::PutU64(&out, req.deadline_us);
  return out;
}

std::string EncodeKnn(const KnnRequest& req) {
  std::string out;
  PutMsgType(&out, MsgType::kKnn);
  wire::PutF64(&out, req.x);
  wire::PutF64(&out, req.y);
  wire::PutI64(&out, req.tq);
  wire::PutU32(&out, static_cast<uint32_t>(req.n));
  wire::PutU64(&out, req.deadline_us);
  return out;
}

std::string EncodeStats() {
  std::string out;
  PutMsgType(&out, MsgType::kStats);
  return out;
}

std::string EncodeReplState(const ReplStateRequest& req) {
  std::string out;
  PutMsgType(&out, MsgType::kReplState);
  wire::PutU64(&out, req.follower_lag_bytes);
  wire::PutU64(&out, req.follower_applied_records);
  return out;
}

std::string EncodeReplFetch(const ReplFetchRequest& req) {
  std::string out;
  PutMsgType(&out, MsgType::kReplFetch);
  wire::PutString(&out, req.name);
  wire::PutU64(&out, req.offset);
  wire::PutU32(&out, req.max_bytes);
  return out;
}

std::string EncodeReply(const Status& status, const ReplyInfo& info,
                        const std::string& body) {
  std::string out;
  PutMsgType(&out, MsgType::kReply);
  wire::PutU8(&out, static_cast<uint8_t>(status.code()));
  wire::PutString(&out, status.message());
  wire::PutU8(&out, static_cast<uint8_t>(info.role));
  wire::PutU64(&out, info.generation);
  wire::PutU64(&out, info.staleness_us);
  wire::PutU8(&out, info.stale_degraded ? 1 : 0);
  out += body;
  return out;
}

std::string EncodePredictionsBody(
    const std::vector<Prediction>& predictions) {
  std::string out;
  wire::PutU32(&out, static_cast<uint32_t>(predictions.size()));
  for (const Prediction& p : predictions) PutPrediction(&out, p);
  return out;
}

std::string EncodeFleetBody(const FleetQueryResult& result) {
  std::string out;
  wire::PutU8(&out, result.partial ? 1 : 0);
  wire::PutU32(&out, static_cast<uint32_t>(result.skipped_shards.size()));
  for (int shard : result.skipped_shards) {
    wire::PutU32(&out, static_cast<uint32_t>(shard));
  }
  wire::PutU32(&out, static_cast<uint32_t>(result.hits.size()));
  for (const RangeHit& hit : result.hits) {
    wire::PutI64(&out, hit.id);
    PutPrediction(&out, hit.prediction);
  }
  return out;
}

std::string EncodeStatsBody(const std::string& json) {
  std::string out;
  wire::PutString(&out, json);
  return out;
}

std::string EncodeReplStateBody(uint64_t generation,
                                const std::vector<WireSegment>& segments) {
  std::string out;
  wire::PutU64(&out, generation);
  wire::PutU32(&out, static_cast<uint32_t>(segments.size()));
  for (const WireSegment& segment : segments) {
    wire::PutU32(&out, static_cast<uint32_t>(segment.shard));
    wire::PutU64(&out, segment.seq);
    wire::PutU64(&out, segment.base_gen);
    wire::PutU64(&out, segment.size);
  }
  return out;
}

std::string EncodeReplFetchBody(uint64_t file_size, bool eof,
                                const std::string& bytes) {
  std::string out;
  wire::PutU64(&out, file_size);
  wire::PutU8(&out, eof ? 1 : 0);
  wire::PutString(&out, bytes);
  return out;
}

Status DecodeReply(const std::string& payload, ReplyInfo* info,
                   std::string* body, Status* transported) {
  wire::Cursor cursor(payload);
  uint8_t type = 0;
  uint8_t code = 0;
  uint8_t role = 0;
  uint8_t stale_degraded = 0;
  std::string message;
  cursor.U8(&type);
  cursor.U8(&code);
  cursor.String(&message);
  cursor.U8(&role);
  cursor.U64(&info->generation);
  cursor.U64(&info->staleness_us);
  if (!cursor.U8(&stale_degraded) ||
      type != static_cast<uint8_t>(MsgType::kReply) ||
      code > kLastStatusCode ||
      role > static_cast<uint8_t>(ServerRole::kReplica)) {
    return Status::DataLoss("malformed reply envelope");
  }
  info->role = static_cast<ServerRole>(role);
  info->stale_degraded = stale_degraded != 0;
  if (body != nullptr) {
    // The envelope is everything the fixed reads above consumed; the
    // body is the remainder. Re-derive its offset from the sizes.
    const size_t envelope_bytes = 1 + 1 + 4 + message.size() + 1 + 8 + 8 + 1;
    *body = payload.substr(envelope_bytes);
  }
  *transported = code == 0
                     ? Status::OK()
                     : Status(static_cast<StatusCode>(code),
                              std::move(message));
  return Status::OK();
}

Status DecodePredictionsBody(const std::string& body,
                             std::vector<Prediction>* predictions) {
  wire::Cursor cursor(body);
  uint32_t count = 0;
  if (!cursor.U32(&count) || count > kMaxResultEntries) {
    return Status::DataLoss("malformed predictions body");
  }
  predictions->clear();
  predictions->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Prediction p;
    if (!GetPrediction(&cursor, &p)) {
      return Status::DataLoss("malformed prediction entry");
    }
    predictions->push_back(std::move(p));
  }
  if (!cursor.done()) return Status::DataLoss("trailing prediction bytes");
  return Status::OK();
}

Status DecodeFleetBody(const std::string& body, FleetQueryResult* result) {
  wire::Cursor cursor(body);
  uint8_t partial = 0;
  uint32_t skipped = 0;
  cursor.U8(&partial);
  if (!cursor.U32(&skipped) || skipped > kMaxResultEntries) {
    return Status::DataLoss("malformed fleet body");
  }
  result->partial = partial != 0;
  result->skipped_shards.clear();
  for (uint32_t i = 0; i < skipped; ++i) {
    uint32_t shard = 0;
    if (!cursor.U32(&shard)) return Status::DataLoss("malformed fleet body");
    result->skipped_shards.push_back(static_cast<int>(shard));
  }
  uint32_t hits = 0;
  if (!cursor.U32(&hits) || hits > kMaxResultEntries) {
    return Status::DataLoss("malformed fleet body");
  }
  result->hits.clear();
  result->hits.reserve(hits);
  for (uint32_t i = 0; i < hits; ++i) {
    RangeHit hit;
    if (!cursor.I64(&hit.id) || !GetPrediction(&cursor, &hit.prediction)) {
      return Status::DataLoss("malformed fleet hit");
    }
    result->hits.push_back(std::move(hit));
  }
  if (!cursor.done()) return Status::DataLoss("trailing fleet bytes");
  return Status::OK();
}

Status DecodeStatsBody(const std::string& body, std::string* json) {
  wire::Cursor cursor(body);
  if (!cursor.String(json, kMaxResultEntries) || !cursor.done()) {
    return Status::DataLoss("malformed stats body");
  }
  return Status::OK();
}

Status DecodeReplStateBody(const std::string& body, uint64_t* generation,
                           std::vector<WireSegment>* segments) {
  wire::Cursor cursor(body);
  uint32_t count = 0;
  cursor.U64(generation);
  if (!cursor.U32(&count) || count > kMaxListedSegments) {
    return Status::DataLoss("malformed repl-state body");
  }
  segments->clear();
  segments->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireSegment segment;
    uint32_t shard = 0;
    cursor.U32(&shard);
    cursor.U64(&segment.seq);
    cursor.U64(&segment.base_gen);
    if (!cursor.U64(&segment.size)) {
      return Status::DataLoss("malformed repl-state segment");
    }
    segment.shard = static_cast<int>(shard);
    segments->push_back(segment);
  }
  if (!cursor.done()) return Status::DataLoss("trailing repl-state bytes");
  return Status::OK();
}

Status DecodeReplFetchBody(const std::string& body, uint64_t* file_size,
                           bool* eof, std::string* bytes) {
  wire::Cursor cursor(body);
  uint8_t eof_byte = 0;
  cursor.U64(file_size);
  cursor.U8(&eof_byte);
  if (!cursor.String(bytes, kMaxNetPayloadBytes) || !cursor.done()) {
    return Status::DataLoss("malformed repl-fetch body");
  }
  *eof = eof_byte != 0;
  return Status::OK();
}

Status DecodeRequest(const std::string& payload, Request* request) {
  wire::Cursor cursor(payload);
  uint8_t type = 0;
  if (!cursor.U8(&type)) return Status::DataLoss("empty request");
  request->type = static_cast<MsgType>(type);
  switch (request->type) {
    case MsgType::kPing:
    case MsgType::kStats:
      break;
    case MsgType::kReport:
      cursor.I64(&request->report.id);
      cursor.I64(&request->report.t);
      cursor.F64(&request->report.x);
      cursor.F64(&request->report.y);
      break;
    case MsgType::kPredict: {
      uint32_t k = 0;
      cursor.I64(&request->predict.id);
      cursor.I64(&request->predict.tq);
      cursor.U32(&k);
      cursor.U64(&request->predict.deadline_us);
      request->predict.k = static_cast<int32_t>(k);
      break;
    }
    case MsgType::kRange: {
      uint32_t k = 0;
      cursor.F64(&request->range.min_x);
      cursor.F64(&request->range.min_y);
      cursor.F64(&request->range.max_x);
      cursor.F64(&request->range.max_y);
      cursor.I64(&request->range.tq);
      cursor.U32(&k);
      cursor.U64(&request->range.deadline_us);
      request->range.k_per_object = static_cast<int32_t>(k);
      break;
    }
    case MsgType::kKnn: {
      uint32_t n = 0;
      cursor.F64(&request->knn.x);
      cursor.F64(&request->knn.y);
      cursor.I64(&request->knn.tq);
      cursor.U32(&n);
      cursor.U64(&request->knn.deadline_us);
      request->knn.n = static_cast<int32_t>(n);
      break;
    }
    case MsgType::kReplState:
      cursor.U64(&request->repl_state.follower_lag_bytes);
      cursor.U64(&request->repl_state.follower_applied_records);
      break;
    case MsgType::kReplFetch:
      cursor.String(&request->repl_fetch.name, 4096);
      cursor.U64(&request->repl_fetch.offset);
      cursor.U32(&request->repl_fetch.max_bytes);
      break;
    case MsgType::kReply:
      return Status::DataLoss("reply message sent as request");
    default:
      return Status::DataLoss("unknown message type " +
                              std::to_string(type));
  }
  if (!cursor.done()) {
    return Status::DataLoss("malformed request body for type " +
                            std::to_string(type));
  }
  return Status::OK();
}

bool IsFetchableStoreFile(const std::string& name, bool* is_wal) {
  *is_wal = false;
  if (name == "CURRENT") return true;
  unsigned long long a = 0, b = 0;  // NOLINT: sscanf needs the C types
  char tail = '\0';
  char trailing[8] = {0};
  if (std::sscanf(name.c_str(), "MANIFEST-%llu%c", &a, &tail) == 1) {
    // Round-trip to reject leading zeros / plus signs sscanf accepts.
    return name == "MANIFEST-" + std::to_string(a);
  }
  long long id = 0;  // NOLINT
  if (std::sscanf(name.c_str(), "%lld-%llu.cs%1s", &id, &a, trailing) == 3 &&
      trailing[0] == 'v') {
    return name ==
           std::to_string(id) + "-" + std::to_string(a) + ".csv";
  }
  if (std::sscanf(name.c_str(), "%lld-%llu.mode%1s", &id, &a, trailing) ==
          3 &&
      trailing[0] == 'l') {
    return name ==
           std::to_string(id) + "-" + std::to_string(a) + ".model";
  }
  if (std::sscanf(name.c_str(), "wal/wal-%llu-%llu.lo%1s", &a, &b,
                  trailing) == 3 &&
      trailing[0] == 'g') {
    if (name == "wal/wal-" + std::to_string(a) + "-" + std::to_string(b) +
                    ".log") {
      *is_wal = true;
      return true;
    }
  }
  return false;
}

}  // namespace hpm
