// Deadline-aware blocking TCP sockets (RAII, EINTR-safe).
//
// Everything here is plain POSIX: blocking sockets driven through
// poll() so every transfer respects a Deadline without signals or
// global timeouts. Used by net/frame.h (CRC framing), net/server.h and
// net/client.h. Loopback and LAN scale; not an async I/O engine.

#ifndef HPM_NET_SOCKET_H_
#define HPM_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <utility>

#include "common/deadline.h"
#include "common/status.h"

namespace hpm {

/// A connected TCP stream (move-only fd owner).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port within `deadline`. kUnavailable on refusal /
  /// unreachable peer (retryable), kDeadlineExceeded on timeout.
  static StatusOr<Socket> Connect(const std::string& host, int port,
                                  Deadline deadline);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Sends all `n` bytes. kDeadlineExceeded when the deadline expires
  /// mid-transfer, kUnavailable when the peer resets the connection.
  Status SendAll(const void* data, size_t n, Deadline deadline);

  /// Receives exactly `n` bytes. When the peer closes cleanly before the
  /// first byte, sets `*clean_eof` (when non-null) and returns
  /// kUnavailable; a close mid-buffer is kDataLoss (a torn transfer).
  Status RecvAll(void* data, size_t n, Deadline deadline, bool* clean_eof);

  /// Blocks until the socket is readable or `deadline` expires
  /// (kDeadlineExceeded). Consumes nothing — safe for idle-loop slicing
  /// without losing partial frames.
  Status WaitReadable(Deadline deadline);

 private:
  int fd_ = -1;
};

/// A bound, listening TCP socket.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on host:port. Port 0 picks an ephemeral port;
  /// `port()` reports the actual one.
  static StatusOr<Listener> Bind(const std::string& host, int port,
                                 int backlog);

  /// Accepts one connection, waiting at most until `deadline`
  /// (kDeadlineExceeded on timeout — the accept loop's stop-check
  /// slice).
  StatusOr<Socket> Accept(Deadline deadline);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace hpm

#endif  // HPM_NET_SOCKET_H_
