// Primitive binary encode/decode helpers for the wire protocol
// (net/protocol.h) — little-endian fixed-width integers, IEEE doubles
// and length-prefixed strings, with a bounds-checked read cursor.
//
// Byte order note: values are memcpy'd in host order, matching the WAL
// frame format (io/wal.cc) — both ends of a replication pair run on the
// same architecture class (x86-64/aarch64 are both little-endian), and
// the CRC framing rejects a mismatched peer loudly rather than
// misinterpreting it.

#ifndef HPM_NET_WIRE_H_
#define HPM_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace hpm::wire {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutF64(std::string* out, double v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

inline void PutString(std::string* out, const std::string& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  out->append(v);
}

/// Sequential reader over an encoded payload. Every getter returns
/// false (and poisons the cursor) on underrun, so decoders can chain
/// reads and check once at the end.
class Cursor {
 public:
  explicit Cursor(const std::string& buf) : data_(buf.data()), size_(buf.size()) {}
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_]);
    ++pos_;
    return true;
  }

  bool U32(uint32_t* v) { return Fixed(v); }
  bool U64(uint64_t* v) { return Fixed(v); }

  bool I64(int64_t* v) {
    uint64_t raw = 0;
    if (!U64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool F64(double* v) { return Fixed(v); }

  /// Reads a length-prefixed string of at most `max_len` bytes (a bound
  /// on attacker-controlled lengths, not a protocol limit).
  bool String(std::string* v, size_t max_len = 1 << 20) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > max_len || !Need(len)) {
      ok_ = false;
      return false;
    }
    v->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

  /// True when every read so far succeeded.
  bool ok() const { return ok_; }

  /// True when the payload was consumed exactly.
  bool done() const { return ok_ && pos_ == size_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  bool Fixed(T* v) {
    if (!Need(sizeof(T))) return false;
    std::memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace hpm::wire

#endif  // HPM_NET_WIRE_H_
