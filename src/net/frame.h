// Length-prefixed, CRC-framed messages over a Socket.
//
// Frame layout (identical shape to the WAL frame in io/wal.cc):
//   u32 payload_length | u32 crc32(payload) | payload bytes
//
// A frame whose CRC fails, whose length field is implausible, or whose
// peer disconnects mid-frame decodes to kDataLoss — the receiver drops
// the connection rather than resynchronise on a corrupt stream. A clean
// close exactly on a frame boundary is kUnavailable with
// `*clean_eof = true`.
//
// Fault sites (HPM_ENABLE_FAULTS builds):
//   net/send   fires after half the frame is written, then the
//              connection is shut down — the torn-frame / mid-stream
//              disconnect model
//   net/recv   fires before the read — the unreachable-peer model

#ifndef HPM_NET_FRAME_H_
#define HPM_NET_FRAME_H_

#include <cstddef>
#include <string>

#include "common/deadline.h"
#include "common/status.h"
#include "net/socket.h"

namespace hpm {

/// Upper bound on a frame payload; larger length fields are treated as
/// stream corruption. Snapshot files ship in chunks well below this.
constexpr size_t kMaxNetPayloadBytes = 4 * 1024 * 1024;

/// Sends one framed payload.
Status SendFrame(Socket& socket, const std::string& payload,
                 Deadline deadline);

/// Receives one framed payload. `clean_eof` (optional) reports a clean
/// peer close on a frame boundary — the normal end of a connection.
StatusOr<std::string> RecvFrame(Socket& socket, Deadline deadline,
                                bool* clean_eof = nullptr);

}  // namespace hpm

#endif  // HPM_NET_FRAME_H_
