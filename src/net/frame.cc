#include "net/frame.h"

#include <sys/socket.h>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "net/wire.h"

namespace hpm {

namespace {
constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc
}  // namespace

Status SendFrame(Socket& socket, const std::string& payload,
                 Deadline deadline) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&frame, Crc32(payload));
  frame += payload;

  const Status fault = HPM_FAULT_HIT("net/send");
  if (!fault.ok()) {
    // Model the torn frame the site stands for: half the frame reaches
    // the peer, then the connection dies mid-stream. The peer must see
    // kDataLoss, never a short frame silently accepted.
    (void)socket.SendAll(frame.data(), frame.size() / 2, deadline);
    ::shutdown(socket.fd(), SHUT_RDWR);
    socket.Close();
    return fault;
  }
  return socket.SendAll(frame.data(), frame.size(), deadline);
}

StatusOr<std::string> RecvFrame(Socket& socket, Deadline deadline,
                                bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  HPM_RETURN_IF_ERROR(HPM_FAULT_HIT("net/recv"));
  char header[kFrameHeaderBytes];
  HPM_RETURN_IF_ERROR(
      socket.RecvAll(header, sizeof(header), deadline, clean_eof));
  wire::Cursor cursor(header, sizeof(header));
  uint32_t length = 0;
  uint32_t stored_crc = 0;
  cursor.U32(&length);
  cursor.U32(&stored_crc);
  if (length > kMaxNetPayloadBytes) {
    return Status::DataLoss("implausible frame length " +
                            std::to_string(length));
  }
  std::string payload(length, '\0');
  if (length > 0) {
    // A disconnect mid-payload is a torn frame: RecvAll reports the
    // clean-close case as kDataLoss here because bytes were consumed.
    HPM_RETURN_IF_ERROR(
        socket.RecvAll(payload.data(), length, deadline, nullptr));
  }
  if (Crc32(payload) != stored_crc) {
    return Status::DataLoss("frame checksum mismatch");
  }
  return payload;
}

}  // namespace hpm
