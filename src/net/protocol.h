// The HPM wire protocol: request/reply message types and their binary
// encodings (docs/ARCHITECTURE.md §10 has the frame diagram).
//
// Transport: each message is one CRC frame (net/frame.h). The first
// payload byte is the message type; the rest is the type-specific body
// encoded with net/wire.h primitives.
//
// Every reply shares an envelope:
//   u8 kReply | u8 status_code | string status_message |
//   u8 role | u64 generation | u64 staleness_us | u8 stale_degraded |
//   <op-specific body>
//
// The status message is transported verbatim, so server-side
// retry-after hints (AttachRetryAfter in common/retry.h) survive the
// wire and the client's RetryWithBackoff honours them unchanged.
// `generation` is the store's snapshot generation and `staleness_us`
// how far behind the primary a replica's answer may be (0 on the
// primary — read-your-writes). `stale_degraded` is set once a replica
// has not completed a sync within its staleness threshold.

#ifndef HPM_NET_PROTOCOL_H_
#define HPM_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "server/store_types.h"

namespace hpm {

enum class MsgType : uint8_t {
  kPing = 1,
  kReport = 2,
  kPredict = 3,
  kRange = 4,
  kKnn = 5,
  kStats = 6,
  // Replication RPCs (served by the primary only).
  kReplState = 16,
  kReplFetch = 17,
  kReply = 128,
};

enum class ServerRole : uint8_t { kPrimary = 0, kReplica = 1 };

const char* ServerRoleName(ServerRole role);

/// ---- Requests ------------------------------------------------------------

struct ReportRequest {
  ObjectId id = 0;
  /// Explicit object-clock tick; -1 = append at the object's next tick.
  int64_t t = -1;
  double x = 0.0;
  double y = 0.0;
};

struct PredictRequest {
  ObjectId id = 0;
  Timestamp tq = 0;
  int32_t k = 1;
  /// Server-side deadline budget; 0 = none.
  uint64_t deadline_us = 0;
};

struct RangeRequest {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  Timestamp tq = 0;
  int32_t k_per_object = 3;
  uint64_t deadline_us = 0;
};

struct KnnRequest {
  double x = 0.0, y = 0.0;
  Timestamp tq = 0;
  int32_t n = 1;
  uint64_t deadline_us = 0;
};

/// Follower heartbeat + segment listing request. The follower reports
/// its own lag so the primary can flip repl.follower_lagging without
/// ever blocking ingest on a slow replica.
struct ReplStateRequest {
  uint64_t follower_lag_bytes = 0;
  uint64_t follower_applied_records = 0;
};

/// Byte-range fetch of one store file (snapshot object file, manifest,
/// CURRENT, or a WAL segment). Names are validated server-side against
/// the store layout — nothing outside the data directory is fetchable.
struct ReplFetchRequest {
  std::string name;
  uint64_t offset = 0;
  uint32_t max_bytes = 0;
};

std::string EncodePing();
std::string EncodeReport(const ReportRequest& req);
std::string EncodePredict(const PredictRequest& req);
std::string EncodeRange(const RangeRequest& req);
std::string EncodeKnn(const KnnRequest& req);
std::string EncodeStats();
std::string EncodeReplState(const ReplStateRequest& req);
std::string EncodeReplFetch(const ReplFetchRequest& req);

/// ---- Replies -------------------------------------------------------------

/// The envelope every reply carries.
struct ReplyInfo {
  ServerRole role = ServerRole::kPrimary;
  uint64_t generation = 0;
  uint64_t staleness_us = 0;
  bool stale_degraded = false;
};

struct PredictReply {
  ReplyInfo info;
  std::vector<Prediction> predictions;
};

struct FleetReply {
  ReplyInfo info;
  FleetQueryResult result;
};

struct StatsReply {
  ReplyInfo info;
  std::string json;
};

/// One journal segment as listed by the primary.
struct WireSegment {
  int shard = 0;
  uint64_t seq = 0;
  uint64_t base_gen = 0;
  uint64_t size = 0;
};

struct ReplStateReply {
  ReplyInfo info;
  uint64_t generation = 0;
  std::vector<WireSegment> segments;
};

struct ReplFetchReply {
  ReplyInfo info;
  uint64_t file_size = 0;
  bool eof = false;
  std::string bytes;
};

/// Builds the reply payload for `status` + an op-specific `body`
/// (already encoded; empty for error replies and bodyless ops).
std::string EncodeReply(const Status& status, const ReplyInfo& info,
                        const std::string& body);

/// Body encoders (appended to EncodeReply's envelope by the server).
std::string EncodePredictionsBody(const std::vector<Prediction>& predictions);
std::string EncodeFleetBody(const FleetQueryResult& result);
std::string EncodeStatsBody(const std::string& json);
std::string EncodeReplStateBody(uint64_t generation,
                                const std::vector<WireSegment>& segments);
std::string EncodeReplFetchBody(uint64_t file_size, bool eof,
                                const std::string& bytes);

/// Splits a reply payload into the envelope, the op-specific body bytes
/// and the *transported* status (the Status the server put in the
/// envelope — retry-after hints intact). The return value is the frame's
/// own validity: kDataLoss when the payload is malformed (a transport
/// problem, distinct from a well-formed error reply).
Status DecodeReply(const std::string& payload, ReplyInfo* info,
                   std::string* body, Status* transported);

/// Body decoders (kDataLoss on malformed bodies).
Status DecodePredictionsBody(const std::string& body,
                             std::vector<Prediction>* predictions);
Status DecodeFleetBody(const std::string& body, FleetQueryResult* result);
Status DecodeStatsBody(const std::string& body, std::string* json);
Status DecodeReplStateBody(const std::string& body, uint64_t* generation,
                           std::vector<WireSegment>* segments);
Status DecodeReplFetchBody(const std::string& body, uint64_t* file_size,
                           bool* eof, std::string* bytes);

/// ---- Server-side request decoding ---------------------------------------

/// A decoded request, one member filled per `type`.
struct Request {
  MsgType type = MsgType::kPing;
  ReportRequest report;
  PredictRequest predict;
  RangeRequest range;
  KnnRequest knn;
  ReplStateRequest repl_state;
  ReplFetchRequest repl_fetch;
};

/// Decodes a request payload (kDataLoss on malformed input, including
/// unknown message types).
Status DecodeRequest(const std::string& payload, Request* request);

/// True when `name` is a fetchable store file: "CURRENT",
/// "MANIFEST-<gen>", "<id>-<gen>.csv", "<id>-<gen>.model" or
/// "wal/wal-<shard>-<seq>.log". Rejects anything else (path traversal,
/// absolute paths, unrelated files). `*is_wal` reports the wal/ prefix.
bool IsFetchableStoreFile(const std::string& name, bool* is_wal);

}  // namespace hpm

#endif  // HPM_NET_PROTOCOL_H_
