#include "net/client.h"

#include <thread>
#include <utility>

#include "common/deadline.h"
#include "common/random.h"
#include "net/frame.h"

namespace hpm {

namespace {

/// Transport failures are retryable by definition: the next attempt runs
/// on a fresh connection. The original code (kDataLoss for a torn frame,
/// kDeadlineExceeded for a stalled peer) is kept in the message for
/// diagnosis but must not leak as the call's code — the caller would
/// misread a retryable blip as corruption.
Status Transport(const char* what, const Status& status) {
  return Status::Unavailable(std::string(what) + " failed: " +
                             status.message());
}

}  // namespace

HpmClient::HpmClient(HpmClientOptions options)
    : options_(std::move(options)) {}

StatusOr<Socket> HpmClient::CheckOut() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pool_.empty()) {
      Socket socket = std::move(pool_.back());
      pool_.pop_back();
      return socket;
    }
  }
  return Socket::Connect(options_.host, options_.port,
                         Deadline::After(options_.connect_timeout));
}

void HpmClient::CheckIn(Socket socket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_.size() < options_.max_pooled_connections) {
    pool_.push_back(std::move(socket));
  }
  // Else: dropped; the Socket destructor closes it.
}

size_t HpmClient::pooled_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_.size();
}

StatusOr<HpmClient::Envelope> HpmClient::CallOnce(
    const std::string& request) {
  StatusOr<Socket> socket = CheckOut();
  if (!socket.ok()) return Transport("connect", socket.status());

  if (Status sent = SendFrame(*socket, request,
                              Deadline::After(options_.io_timeout));
      !sent.ok()) {
    return Transport("send", sent);
  }
  StatusOr<std::string> payload =
      RecvFrame(*socket, Deadline::After(options_.io_timeout));
  if (!payload.ok()) {
    // Includes the pooled-connection race: the server idle-closed a
    // connection we just checked out — clean EOF, retry reconnects.
    return Transport("recv", payload.status());
  }

  ReplyInfo info;
  std::string body;
  Status transported;
  if (Status valid = DecodeReply(*payload, &info, &body, &transported);
      !valid.ok()) {
    return Transport("reply decode", valid);
  }
  if (!transported.ok()) {
    // A well-formed error reply: the server's own status, verbatim, so
    // retry-after hints reach RetryWithBackoff untouched. The stream may
    // be mid-close (busy rejections close it) — don't pool it.
    return transported;
  }
  CheckIn(std::move(*socket));
  return Envelope{info, std::move(body)};
}

StatusOr<HpmClient::Envelope> HpmClient::Call(const std::string& request) {
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = call_seq_++;
  }
  // Per-call jitter stream: deterministic given the seed, decorrelated
  // across concurrent calls.
  Random rng(options_.retry_seed ^ (seq * 0x2545F4914F6CDD1Dull + 1));
  const auto sleep = [this](std::chrono::microseconds d) {
    if (sleep_fn_) {
      sleep_fn_(d);
    } else {
      std::this_thread::sleep_for(d);
    }
  };
  return RetryWithBackoff(
      options_.retry, rng, [&] { return CallOnce(request); }, sleep);
}

StatusOr<ReplyInfo> HpmClient::Ping() {
  StatusOr<Envelope> env = Call(EncodePing());
  HPM_RETURN_IF_ERROR(env.status());
  return env->info;
}

StatusOr<ReplyInfo> HpmClient::Report(const ReportRequest& request) {
  StatusOr<Envelope> env = Call(EncodeReport(request));
  HPM_RETURN_IF_ERROR(env.status());
  return env->info;
}

StatusOr<PredictReply> HpmClient::Predict(const PredictRequest& request) {
  StatusOr<Envelope> env = Call(EncodePredict(request));
  HPM_RETURN_IF_ERROR(env.status());
  PredictReply reply;
  reply.info = env->info;
  HPM_RETURN_IF_ERROR(DecodePredictionsBody(env->body, &reply.predictions));
  return reply;
}

StatusOr<FleetReply> HpmClient::Range(const RangeRequest& request) {
  StatusOr<Envelope> env = Call(EncodeRange(request));
  HPM_RETURN_IF_ERROR(env.status());
  FleetReply reply;
  reply.info = env->info;
  HPM_RETURN_IF_ERROR(DecodeFleetBody(env->body, &reply.result));
  return reply;
}

StatusOr<FleetReply> HpmClient::Knn(const KnnRequest& request) {
  StatusOr<Envelope> env = Call(EncodeKnn(request));
  HPM_RETURN_IF_ERROR(env.status());
  FleetReply reply;
  reply.info = env->info;
  HPM_RETURN_IF_ERROR(DecodeFleetBody(env->body, &reply.result));
  return reply;
}

StatusOr<StatsReply> HpmClient::Stats() {
  StatusOr<Envelope> env = Call(EncodeStats());
  HPM_RETURN_IF_ERROR(env.status());
  StatsReply reply;
  reply.info = env->info;
  HPM_RETURN_IF_ERROR(DecodeStatsBody(env->body, &reply.json));
  return reply;
}

StatusOr<ReplStateReply> HpmClient::ReplState(
    const ReplStateRequest& request) {
  StatusOr<Envelope> env = Call(EncodeReplState(request));
  HPM_RETURN_IF_ERROR(env.status());
  ReplStateReply reply;
  reply.info = env->info;
  HPM_RETURN_IF_ERROR(
      DecodeReplStateBody(env->body, &reply.generation, &reply.segments));
  return reply;
}

StatusOr<ReplFetchReply> HpmClient::ReplFetch(
    const ReplFetchRequest& request) {
  StatusOr<Envelope> env = Call(EncodeReplFetch(request));
  HPM_RETURN_IF_ERROR(env.status());
  ReplFetchReply reply;
  reply.info = env->info;
  HPM_RETURN_IF_ERROR(DecodeReplFetchBody(env->body, &reply.file_size,
                                          &reply.eof, &reply.bytes));
  return reply;
}

Status HpmClient::FetchFile(const std::string& name, uint32_t chunk_bytes,
                            std::string* contents) {
  contents->clear();
  for (;;) {
    ReplFetchRequest request;
    request.name = name;
    request.offset = contents->size();
    request.max_bytes = chunk_bytes;
    StatusOr<ReplFetchReply> chunk = ReplFetch(request);
    HPM_RETURN_IF_ERROR(chunk.status().Annotate("fetch " + name));
    contents->append(chunk->bytes);
    if (chunk->eof) return Status::OK();
    if (chunk->bytes.empty()) {
      // No progress and no EOF would loop forever — the file shrank
      // under us (e.g. a retired journal segment) or the server is
      // confused; either way the transfer must restart.
      return Status::Unavailable("fetch " + name + ": stalled at offset " +
                                 std::to_string(contents->size()));
    }
  }
}

}  // namespace hpm
