// HpmServer: the TCP front end of a MovingObjectStore.
//
// Thread-per-connection on the shared ThreadPool pattern the store
// already uses: one accept thread hands each connection to a bounded
// handler pool (TrySubmit); when every handler slot and queue slot is
// taken the connection is answered with kUnavailable + a retry-after
// hint and closed — the accept backlog is bounded instead of queueing
// unboundedly. Each connection then serves framed requests
// (net/protocol.h) until the peer closes, the idle timeout passes, or
// the server stops; every transfer runs under a per-connection I/O
// deadline.
//
// Roles: a kPrimary serves everything, including the replication RPCs
// (kReplState / kReplFetch) that ship its snapshot + journal bytes. A
// kReplica serves reads only — reports are refused with
// kFailedPrecondition("not primary") — and stamps every reply with the
// generation + staleness its Replicator last reached (the stale-ok
// read contract; docs/ROBUSTNESS.md §replication).

#ifndef HPM_NET_SERVER_H_
#define HPM_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "server/object_store.h"

namespace hpm {

/// Replica-side health shared between the Replicator (writer) and the
/// HpmServer stamping replies (reader). All fields are atomics —
/// sampled, never locked.
struct ReplicaHealth {
  /// The primary generation the replica's state reflects (snapshot
  /// bootstrap gen, advanced whenever a sync fully catches up).
  std::atomic<uint64_t> generation{0};
  /// Journal records applied to the local store so far.
  std::atomic<uint64_t> applied_records{0};
  /// Bytes of primary journal not yet mirrored at the last sync.
  std::atomic<uint64_t> lag_bytes{0};
  /// Steady-clock microseconds of the last *successful* sync; negative
  /// until the first one completes.
  std::atomic<int64_t> last_sync_us{-1};

  /// Microseconds since the last successful sync (INT64_MAX before the
  /// first). The staleness bound stamped on replica replies.
  int64_t StalenessMicros() const;

  /// Marks a sync that fully caught up with the primary at `gen`.
  void RecordSync(uint64_t gen, uint64_t lag);
};

struct HpmServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; HpmServer::port() reports the bound port.
  int port = 0;
  ServerRole role = ServerRole::kPrimary;

  /// Connection handler threads (thread-per-connection).
  int handler_threads = 4;
  /// Connections queued behind busy handlers before new ones are
  /// refused with retry-after (the bounded accept backlog).
  size_t max_pending_connections = 16;
  /// listen(2) backlog.
  int listen_backlog = 16;

  /// Per-transfer I/O budget (send or receive of one frame).
  std::chrono::milliseconds io_timeout{5000};
  /// A connection idle longer than this is closed.
  std::chrono::milliseconds idle_timeout{60000};
  /// Suggested client back-off when the handler pool is saturated.
  std::chrono::microseconds busy_retry_after{20000};

  /// Primary only: the store directory replication RPCs serve files
  /// from (empty disables kReplFetch).
  std::string data_dir;
  /// Primary only: the journal directory listed by kReplState
  /// (conventionally <data_dir>/wal; empty lists no segments).
  std::string wal_dir;
  /// Primary: a follower reporting more lag than this flips the
  /// repl.follower_lagging health flag (ingest is never blocked).
  uint64_t follower_lag_warn_bytes = 4 * 1024 * 1024;
  /// Largest byte range one kReplFetch returns.
  uint32_t max_fetch_bytes = 1024 * 1024;

  /// Replica only: a reply is stamped stale_degraded once no sync has
  /// succeeded within this window.
  std::chrono::microseconds stale_threshold{2000000};
};

/// A running server. Construction via Start(); destruction stops it.
class HpmServer {
 public:
  /// Binds, starts the accept thread and handler pool. `store` must
  /// outlive the server. `replica_health` is required for kReplica
  /// role (the reply-stamping source) and ignored for kPrimary.
  static StatusOr<std::unique_ptr<HpmServer>> Start(
      MovingObjectStore* store, HpmServerOptions options,
      const ReplicaHealth* replica_health = nullptr);

  ~HpmServer();
  HpmServer(const HpmServer&) = delete;
  HpmServer& operator=(const HpmServer&) = delete;

  int port() const { return listener_.port(); }

  /// Stops accepting, unblocks idle handlers and joins. Idempotent.
  void Stop();

  /// True once a follower has reported lag above the warn threshold
  /// (and not since reported catching back up).
  bool follower_lagging() const {
    return follower_lagging_.load(std::memory_order_relaxed);
  }

  /// The server's own net.* / repl.* counters only
  /// (docs/OBSERVABILITY.md).
  MetricsSnapshot metrics_snapshot() const {
    return metrics_.TakeSnapshot();
  }

  /// The single stats document this deployment exposes: the store's
  /// snapshot with the server's net.*/repl.* rows folded in. This is
  /// what the stats RPC serves.
  MetricsSnapshot combined_metrics_snapshot() const {
    MetricsSnapshot snapshot = store_->metrics_snapshot();
    snapshot.MergeFrom(metrics_.TakeSnapshot());
    return snapshot;
  }

 private:
  HpmServer(MovingObjectStore* store, HpmServerOptions options,
            const ReplicaHealth* replica_health);

  void AcceptLoop();
  void ServeConnection(Socket socket);

  /// Handles one decoded request; returns the full reply payload.
  std::string HandleRequest(const Request& request);
  std::string HandleReplState(const ReplStateRequest& request);
  std::string HandleReplFetch(const ReplFetchRequest& request);

  /// The envelope stamp for this instant (role, generation, staleness).
  ReplyInfo Stamp() const;

  MovingObjectStore* store_;
  HpmServerOptions options_;
  const ReplicaHealth* replica_health_;
  Listener listener_;
  std::unique_ptr<ThreadPool> handlers_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> follower_lagging_{false};

  MetricsRegistry metrics_;
  Counter* connections_;
  Counter* busy_rejected_;
  Counter* requests_;
  Counter* bad_frames_;
  Counter* repl_state_requests_;
  Counter* repl_fetch_requests_;
  Counter* repl_bytes_shipped_;
  Counter* repl_follower_lagging_;
};

}  // namespace hpm

#endif  // HPM_NET_SERVER_H_
