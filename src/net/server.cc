#include "net/server.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/retry.h"
#include "io/eintr.h"
#include "io/wal.h"
#include "net/frame.h"

namespace hpm {

namespace {

/// Accept/idle loops wake this often to check the stop flag; nothing is
/// consumed from the socket between wakes, so slicing loses no bytes.
constexpr std::chrono::milliseconds kStopCheckSlice{50};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int64_t ReplicaHealth::StalenessMicros() const {
  const int64_t last = last_sync_us.load(std::memory_order_relaxed);
  if (last < 0) return INT64_MAX;
  const int64_t now = NowMicros();
  return now > last ? now - last : 0;
}

void ReplicaHealth::RecordSync(uint64_t gen, uint64_t lag) {
  generation.store(gen, std::memory_order_relaxed);
  lag_bytes.store(lag, std::memory_order_relaxed);
  last_sync_us.store(NowMicros(), std::memory_order_relaxed);
}

HpmServer::HpmServer(MovingObjectStore* store, HpmServerOptions options,
                     const ReplicaHealth* replica_health)
    : store_(store),
      options_(std::move(options)),
      replica_health_(replica_health),
      connections_(metrics_.GetCounter("net.connections")),
      busy_rejected_(metrics_.GetCounter("net.busy_rejected")),
      requests_(metrics_.GetCounter("net.requests")),
      bad_frames_(metrics_.GetCounter("net.bad_frames")),
      repl_state_requests_(metrics_.GetCounter("repl.state_requests")),
      repl_fetch_requests_(metrics_.GetCounter("repl.fetch_requests")),
      repl_bytes_shipped_(metrics_.GetCounter("repl.bytes_shipped")),
      repl_follower_lagging_(
          metrics_.GetCounter("repl.follower_lagging")) {}

HpmServer::~HpmServer() { Stop(); }

StatusOr<std::unique_ptr<HpmServer>> HpmServer::Start(
    MovingObjectStore* store, HpmServerOptions options,
    const ReplicaHealth* replica_health) {
  if (options.role == ServerRole::kReplica && replica_health == nullptr) {
    return Status::InvalidArgument(
        "replica server needs a ReplicaHealth to stamp replies from");
  }
  StatusOr<Listener> listener =
      Listener::Bind(options.host, options.port, options.listen_backlog);
  if (!listener.ok()) return listener.status().Annotate("server bind");

  std::unique_ptr<HpmServer> server(
      new HpmServer(store, std::move(options), replica_health));
  server->listener_ = std::move(*listener);
  ThreadPoolOptions pool_options;
  pool_options.num_threads = std::max(1, server->options_.handler_threads);
  pool_options.max_queue_depth = server->options_.max_pending_connections;
  server->handlers_ = std::make_unique<ThreadPool>(pool_options);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

void HpmServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Pool shutdown runs queued connections; each sees stopping_ and
  // returns immediately, and live handlers exit within one stop-check
  // slice.
  handlers_.reset();
  listener_.Close();
}

void HpmServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const Status accept_fault = HPM_FAULT_HIT("net/accept");
    StatusOr<Socket> accepted =
        accept_fault.ok() ? listener_.Accept(Deadline::After(kStopCheckSlice))
                          : StatusOr<Socket>(accept_fault);
    if (!accepted.ok()) continue;  // timeout slice or transient error
    connections_->Increment();
    auto conn = std::make_shared<Socket>(std::move(*accepted));
    StatusOr<std::future<void>> submitted = handlers_->TrySubmit(
        [this, conn] { ServeConnection(std::move(*conn)); });
    if (!submitted.ok()) {
      // Bounded backlog: answer the first request-to-be with a busy
      // reply carrying a retry-after hint, then close. The client's
      // RetryWithBackoff floors its next sleep on the hint.
      busy_rejected_->Increment();
      const std::string reply = EncodeReply(
          AttachRetryAfter(Status::Unavailable("server busy"),
                           options_.busy_retry_after),
          Stamp(), "");
      (void)SendFrame(*conn, reply, Deadline::After(options_.io_timeout));
    }
  }
}

void HpmServer::ServeConnection(Socket socket) {
  Deadline idle_deadline = Deadline::After(options_.idle_timeout);
  while (!stopping_.load(std::memory_order_relaxed)) {
    const Status ready = socket.WaitReadable(Deadline::After(kStopCheckSlice));
    if (!ready.ok()) {
      if (ready.code() == StatusCode::kDeadlineExceeded) {
        if (idle_deadline.expired()) return;
        continue;
      }
      return;
    }
    bool clean_eof = false;
    StatusOr<std::string> payload = RecvFrame(
        socket, Deadline::After(options_.io_timeout), &clean_eof);
    if (!payload.ok()) {
      if (!clean_eof) bad_frames_->Increment();
      return;
    }
    requests_->Increment();
    Request request;
    std::string reply;
    if (Status decoded = DecodeRequest(*payload, &request); !decoded.ok()) {
      // A malformed-but-checksummed request means a broken client, not
      // line noise: answer once, then drop the stream.
      bad_frames_->Increment();
      reply = EncodeReply(decoded, Stamp(), "");
      (void)SendFrame(socket, reply, Deadline::After(options_.io_timeout));
      return;
    }
    reply = HandleRequest(request);
    if (!SendFrame(socket, reply, Deadline::After(options_.io_timeout))
             .ok()) {
      return;
    }
    idle_deadline = Deadline::After(options_.idle_timeout);
  }
}

ReplyInfo HpmServer::Stamp() const {
  ReplyInfo info;
  info.role = options_.role;
  if (options_.role == ServerRole::kReplica && replica_health_ != nullptr) {
    info.generation =
        replica_health_->generation.load(std::memory_order_relaxed);
    const int64_t staleness = replica_health_->StalenessMicros();
    info.staleness_us =
        staleness < 0 ? 0 : static_cast<uint64_t>(staleness);
    info.stale_degraded =
        staleness > options_.stale_threshold.count();
  } else {
    info.generation = store_->generation();
    info.staleness_us = 0;  // read-your-writes on the primary
    info.stale_degraded = false;
  }
  return info;
}

std::string HpmServer::HandleRequest(const Request& request) {
  const ReplyInfo stamp = Stamp();
  switch (request.type) {
    case MsgType::kPing:
      return EncodeReply(Status::OK(), stamp, "");
    case MsgType::kReport: {
      if (options_.role != ServerRole::kPrimary) {
        return EncodeReply(
            Status::FailedPrecondition("not primary: reports must go to "
                                       "the primary"),
            stamp, "");
      }
      const Point location{request.report.x, request.report.y};
      const Status reported =
          request.report.t < 0
              ? store_->ReportLocation(request.report.id, location)
              : store_->ReportLocationAt(request.report.id,
                                         request.report.t, location);
      return EncodeReply(reported, Stamp(), "");
    }
    case MsgType::kPredict: {
      const Deadline deadline =
          request.predict.deadline_us > 0
              ? Deadline::After(
                    std::chrono::microseconds(request.predict.deadline_us))
              : Deadline::Infinite();
      StatusOr<std::vector<Prediction>> predictions =
          store_->PredictLocation(request.predict.id, request.predict.tq,
                                  request.predict.k, deadline);
      if (!predictions.ok()) {
        return EncodeReply(predictions.status(), stamp, "");
      }
      return EncodeReply(Status::OK(), stamp,
                         EncodePredictionsBody(*predictions));
    }
    case MsgType::kRange: {
      const Deadline deadline =
          request.range.deadline_us > 0
              ? Deadline::After(
                    std::chrono::microseconds(request.range.deadline_us))
              : Deadline::Infinite();
      const BoundingBox box(Point(request.range.min_x, request.range.min_y),
                            Point(request.range.max_x, request.range.max_y));
      StatusOr<FleetQueryResult> result = store_->PredictiveRangeQuery(
          box, request.range.tq, request.range.k_per_object, deadline);
      if (!result.ok()) return EncodeReply(result.status(), stamp, "");
      return EncodeReply(Status::OK(), stamp, EncodeFleetBody(*result));
    }
    case MsgType::kKnn: {
      const Deadline deadline =
          request.knn.deadline_us > 0
              ? Deadline::After(
                    std::chrono::microseconds(request.knn.deadline_us))
              : Deadline::Infinite();
      StatusOr<FleetQueryResult> result =
          store_->PredictiveNearestNeighbors(
              Point(request.knn.x, request.knn.y), request.knn.tq,
              request.knn.n, deadline);
      if (!result.ok()) return EncodeReply(result.status(), stamp, "");
      return EncodeReply(Status::OK(), stamp, EncodeFleetBody(*result));
    }
    case MsgType::kStats:
      // One document: store rows plus this server's net.*/repl.* rows,
      // so remote `hpm_tool connect … stats` sees the whole deployment.
      return EncodeReply(
          Status::OK(), stamp,
          EncodeStatsBody(combined_metrics_snapshot().ToJson()));
    case MsgType::kReplState:
      return HandleReplState(request.repl_state);
    case MsgType::kReplFetch:
      return HandleReplFetch(request.repl_fetch);
    case MsgType::kReply:
      break;
  }
  return EncodeReply(Status::InvalidArgument("unhandled message type"),
                     stamp, "");
}

std::string HpmServer::HandleReplState(const ReplStateRequest& request) {
  const ReplyInfo stamp = Stamp();
  if (options_.role != ServerRole::kPrimary) {
    return EncodeReply(
        Status::FailedPrecondition("not primary: replication is pull-based "
                                   "from the primary"),
        stamp, "");
  }
  repl_state_requests_->Increment();

  // The degradation contract: a slow follower flips a health flag the
  // operator can watch; ingest never blocks on replication.
  const bool lagging =
      request.follower_lag_bytes > options_.follower_lag_warn_bytes;
  if (lagging && !follower_lagging_.exchange(lagging)) {
    repl_follower_lagging_->Increment();
  } else if (!lagging) {
    follower_lagging_.store(false, std::memory_order_relaxed);
  }

  std::vector<WireSegment> segments;
  if (!options_.wal_dir.empty()) {
    for (const WalSegmentInfo& info : ListWalSegments(options_.wal_dir)) {
      if (!info.header_ok) continue;
      WireSegment segment;
      segment.shard = info.shard;
      segment.seq = info.seq;
      segment.base_gen = info.base_gen;
      std::error_code ec;
      const auto size = std::filesystem::file_size(info.path, ec);
      if (ec) continue;
      segment.size = static_cast<uint64_t>(size);
      segments.push_back(segment);
    }
  }
  return EncodeReply(Status::OK(), stamp,
                     EncodeReplStateBody(store_->generation(), segments));
}

std::string HpmServer::HandleReplFetch(const ReplFetchRequest& request) {
  const ReplyInfo stamp = Stamp();
  if (options_.role != ServerRole::kPrimary) {
    return EncodeReply(Status::FailedPrecondition("not primary"), stamp, "");
  }
  repl_fetch_requests_->Increment();
  if (const Status fault = HPM_FAULT_HIT("repl/fetch"); !fault.ok()) {
    return EncodeReply(fault, stamp, "");
  }
  if (options_.data_dir.empty()) {
    return EncodeReply(
        Status::FailedPrecondition("server has no data directory"), stamp,
        "");
  }
  bool is_wal = false;
  if (!IsFetchableStoreFile(request.name, &is_wal)) {
    return EncodeReply(
        Status::InvalidArgument("not a fetchable store file: " +
                                request.name),
        stamp, "");
  }
  // WAL names are served from wal_dir (which need not live under
  // data_dir); everything else from the store directory itself.
  const std::string path =
      is_wal ? (options_.wal_dir.empty()
                    ? options_.data_dir + "/" + request.name
                    : options_.wal_dir + "/" + request.name.substr(4))
             : options_.data_dir + "/" + request.name;
  const int fd = RetryOnEintr([&] { return ::open(path.c_str(), O_RDONLY); });
  if (fd < 0) {
    return EncodeReply(
        Status::NotFound("cannot open " + request.name + ": " +
                         std::strerror(errno)),
        stamp, "");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return EncodeReply(Status::DataLoss("fstat " + request.name), stamp, "");
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  std::string bytes;
  bool eof = true;
  if (request.offset < file_size) {
    const uint32_t cap = std::min(
        request.max_bytes == 0 ? options_.max_fetch_bytes
                               : std::min(request.max_bytes,
                                          options_.max_fetch_bytes),
        static_cast<uint32_t>(kMaxNetPayloadBytes / 2));
    const uint64_t want =
        std::min<uint64_t>(cap, file_size - request.offset);
    bytes.resize(want);
    size_t done = 0;
    while (done < want) {
      const ssize_t got = RetryOnEintr([&] {
        return ::pread(fd, bytes.data() + done, want - done,
                       static_cast<off_t>(request.offset + done));
      });
      if (got < 0) {
        ::close(fd);
        return EncodeReply(
            Status::DataLoss("read " + request.name + ": " +
                             std::strerror(errno)),
            stamp, "");
      }
      if (got == 0) break;  // file shrank under us (rotation); stop short
      done += static_cast<size_t>(got);
    }
    bytes.resize(done);
    eof = request.offset + done >= file_size;
  }
  ::close(fd);
  repl_bytes_shipped_->Increment(bytes.size());
  return EncodeReply(Status::OK(), stamp,
                     EncodeReplFetchBody(file_size, eof, bytes));
}

}  // namespace hpm
