// Admission control for the serving layer: a token bucket bounding the
// sustained request rate plus a gauge bounding concurrent in-flight work.
//
// The controller is consulted at every MovingObjectStore entry point;
// when it rejects, the caller gets kUnavailable with a machine-readable
// retry-after hint (see common/retry.h — RetryWithBackoff uses the hint
// as a floor on its next backoff, so a rejected client naturally backs
// off to the rate the server asked for instead of hammering).
//
// Determinism: all time comes through an injectable clock function, so
// tests (and the prop suites) drive the bucket with a manual clock and
// every admit/reject decision replays exactly. No RNG is involved — the
// only randomness in the retry path is the caller's jitter.

#ifndef HPM_COMMON_ADMISSION_H_
#define HPM_COMMON_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/status.h"

namespace hpm {

/// Configures an AdmissionController. The defaults disable every limit,
/// so a default-constructed controller admits everything — stores built
/// with default options behave exactly as before.
struct AdmissionOptions {
  using Clock = std::chrono::steady_clock;

  /// Sustained admission rate. 0 = rate-unlimited (no token bucket).
  double tokens_per_second = 0.0;

  /// Token-bucket capacity: how large a burst is admitted after idle
  /// time. Clamped to >= 1 when a rate is set.
  double burst = 1.0;

  /// Maximum requests simultaneously holding a ticket. 0 = unlimited.
  int max_in_flight = 0;

  /// Retry-after hint attached to gauge (max_in_flight) rejections,
  /// where no refill schedule exists to compute one from.
  std::chrono::microseconds in_flight_retry_hint{1000};

  /// Time source; null = Clock::now. Inject a manual clock in tests for
  /// fully deterministic admit/reject schedules.
  std::function<Clock::time_point()> clock;
};

class AdmissionController;

/// RAII handle for one admitted request: releases the in-flight slot on
/// destruction. Movable; the moved-from ticket releases nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  /// Releases the in-flight slot early (idempotent).
  void Release();

 private:
  friend class AdmissionController;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}

  AdmissionController* controller_ = nullptr;
};

/// Token bucket + in-flight gauge. Thread-safe; one instance guards one
/// resource (the serving layer holds one per store).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Tries to admit one request. On success the returned ticket holds an
  /// in-flight slot until it is destroyed/released. On rejection returns
  /// kUnavailable whose message carries a retry-after hint that
  /// RetryAfterHint() (common/retry.h) can parse; `what` names the
  /// rejected operation in the message.
  StatusOr<AdmissionTicket> Admit(const char* what);

  /// Requests currently holding a ticket.
  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Total requests admitted / rejected since construction.
  uint64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_total() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Tokens available right now (refilled to the injected clock); only
  /// meaningful when a rate is configured. For tests and introspection.
  double available_tokens() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  friend class AdmissionTicket;

  AdmissionOptions::Clock::time_point Now() const {
    return options_.clock ? options_.clock()
                          : AdmissionOptions::Clock::now();
  }

  /// Advances the bucket to `now`. Caller holds mu_.
  void Refill(AdmissionOptions::Clock::time_point now);

  void ReleaseSlot() {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }

  AdmissionOptions options_;

  mutable std::mutex mu_;
  double tokens_;  ///< Guarded by mu_.
  AdmissionOptions::Clock::time_point last_refill_;  ///< Guarded by mu_.

  std::atomic<int> in_flight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace hpm

#endif  // HPM_COMMON_ADMISSION_H_
