#include "common/circuit_breaker.h"

#include <algorithm>

namespace hpm {

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "Closed";
    case State::kOpen:
      return "Open";
    case State::kHalfOpen:
      return "HalfOpen";
  }
  return "Unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)) {
  HPM_CHECK(options_.window >= 1);
  HPM_CHECK(options_.min_samples >= 1);
  HPM_CHECK(options_.min_samples <= options_.window);
  HPM_CHECK(options_.failure_threshold > 0.0 &&
            options_.failure_threshold <= 1.0);
  HPM_CHECK(options_.half_open_successes >= 1);
  outcomes_.assign(static_cast<size_t>(options_.window), 0);
}

void CircuitBreaker::TransitionTo(State next) {
  const State from = state_;
  if (from == next) return;
  state_ = next;
  switch (next) {
    case State::kClosed:
      std::fill(outcomes_.begin(), outcomes_.end(), 0);
      next_slot_ = 0;
      samples_ = 0;
      failures_ = 0;
      break;
    case State::kOpen:
      opened_at_ = Now();
      ++times_opened_;
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      probe_successes_ = 0;
      break;
  }
  if (listener_) listener_(from, next);
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Now() - opened_at_ < options_.open_duration) return false;
      TransitionTo(State::kHalfOpen);
      [[fallthrough]];
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed: {
      failures_ -= outcomes_[static_cast<size_t>(next_slot_)];
      outcomes_[static_cast<size_t>(next_slot_)] = 0;
      next_slot_ = (next_slot_ + 1) % options_.window;
      samples_ = std::min(samples_ + 1, options_.window);
      break;
    }
    case State::kOpen:
      // A straggler from before the trip; the cooldown stands.
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++probe_successes_ >= options_.half_open_successes) {
        TransitionTo(State::kClosed);
      }
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed: {
      failures_ += 1 - outcomes_[static_cast<size_t>(next_slot_)];
      outcomes_[static_cast<size_t>(next_slot_)] = 1;
      next_slot_ = (next_slot_ + 1) % options_.window;
      samples_ = std::min(samples_ + 1, options_.window);
      if (samples_ >= options_.min_samples &&
          static_cast<double>(failures_) >=
              options_.failure_threshold * static_cast<double>(samples_)) {
        TransitionTo(State::kOpen);
      }
      break;
    }
    case State::kOpen:
      break;
    case State::kHalfOpen:
      // The probe failed: the dependency is still sick. Restart the
      // cooldown from now.
      probe_in_flight_ = false;
      TransitionTo(State::kOpen);
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return times_opened_;
}

void CircuitBreaker::SetStateListener(
    std::function<void(State, State)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listener_ = std::move(listener);
}

}  // namespace hpm
