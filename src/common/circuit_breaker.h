// Circuit breaker: trips a persistently failing dependency out of the
// request path so callers fail fast (or route around it) instead of
// paying the failure latency on every call.
//
// Classic three-state machine:
//
//   kClosed    normal operation; outcomes are recorded in a sliding
//              window, and when the failure rate over a full-enough
//              window crosses the threshold the breaker OPENS.
//   kOpen      Allow() refuses everything until `open_duration` has
//              elapsed, then the next Allow() moves to half-open and
//              admits a single probe.
//   kHalfOpen  one probe in flight at a time; `half_open_successes`
//              consecutive successes close the breaker, any failure
//              re-opens it (with a fresh cooldown).
//
// The serving layer keeps one breaker per store shard: a shard whose
// queries keep failing (injected faults, a corrupt index) is tripped out
// of range/kNN fan-outs and the query returns partial results flagged
// `partial=true` instead of timing out end to end.
//
// Determinism: time comes through an injectable clock and outcome
// recording is explicit, so tests drive the full state machine with a
// manual clock; there is no internal randomness.

#ifndef HPM_COMMON_CIRCUIT_BREAKER_H_
#define HPM_COMMON_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace hpm {

/// Tuning knobs; the defaults are conservative (a shard must fail half
/// of a 32-call window before tripping).
struct CircuitBreakerOptions {
  using Clock = std::chrono::steady_clock;

  /// Sliding window of most-recent outcomes inspected in kClosed.
  int window = 32;

  /// Minimum outcomes in the window before the breaker may trip (avoids
  /// tripping on the first failure after idle).
  int min_samples = 8;

  /// Failure fraction (failures / samples) at or above which the
  /// breaker opens. In (0, 1].
  double failure_threshold = 0.5;

  /// How long an open breaker refuses before allowing a half-open probe.
  std::chrono::microseconds open_duration{100000};  // 100 ms

  /// Consecutive half-open probe successes required to close.
  int half_open_successes = 1;

  /// Time source; null = Clock::now. Inject a manual clock in tests.
  std::function<Clock::time_point()> clock;
};

/// Thread-safe closed/open/half-open breaker over explicit outcomes.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// "Closed" / "Open" / "HalfOpen".
  static const char* StateName(State state);

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// True when a call may proceed. May transition kOpen -> kHalfOpen
  /// once the cooldown has elapsed; in kHalfOpen admits one probe at a
  /// time (further calls are refused until the probe reports).
  bool Allow();

  /// Reports the outcome of an allowed call.
  void RecordSuccess();
  void RecordFailure();

  State state() const;

  /// Total open transitions (for stats / the faultcheck report).
  uint64_t times_opened() const;

  /// Observer invoked (under the breaker's lock — keep it cheap) on
  /// every state transition. One listener; replaces any previous one.
  void SetStateListener(std::function<void(State from, State to)> listener);

 private:
  CircuitBreakerOptions::Clock::time_point Now() const {
    return options_.clock ? options_.clock()
                          : CircuitBreakerOptions::Clock::now();
  }

  /// Transitions to `next`, resetting per-state bookkeeping. Caller
  /// holds mu_.
  void TransitionTo(State next);

  CircuitBreakerOptions options_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  /// Ring buffer of the last `window` outcomes (1 = failure) and its
  /// occupancy, valid in kClosed.
  std::vector<uint8_t> outcomes_;
  int next_slot_ = 0;
  int samples_ = 0;
  int failures_ = 0;
  /// kOpen: when the cooldown started. kHalfOpen: probe bookkeeping.
  CircuitBreakerOptions::Clock::time_point opened_at_{};
  bool probe_in_flight_ = false;
  int probe_successes_ = 0;
  uint64_t times_opened_ = 0;
  std::function<void(State, State)> listener_;
};

}  // namespace hpm

#endif  // HPM_COMMON_CIRCUIT_BREAKER_H_
