#include "common/epoch.h"

#include <algorithm>
#include <thread>

#include "common/status.h"

namespace hpm {

EpochManager::EpochManager(EpochOptions options)
    : options_(options),
      slots_(std::make_unique<Slot[]>(
          std::max<size_t>(options.max_readers, 1))) {
  options_.max_readers = std::max<size_t>(options.max_readers, 1);
}

EpochManager::~EpochManager() {
  HPM_CHECK(pinned_readers_.load(std::memory_order_acquire) == 0);
  // No readers can exist any more; everything in limbo is free-able.
  for (const LimboEntry& entry : limbo_) {
    entry.deleter(entry.object);
    freed_total_.fetch_add(1, std::memory_order_relaxed);
    if (options_.freed_counter != nullptr) options_.freed_counter->Increment();
  }
  limbo_.clear();
}

uint64_t EpochManager::Guard::epoch() const {
  if (manager_ == nullptr) return 0;
  return manager_->slots_[slot_].epoch.load(std::memory_order_acquire);
}

void EpochManager::Guard::Release() {
  if (manager_ == nullptr) return;
  manager_->slots_[slot_].epoch.store(0, std::memory_order_release);
  manager_->pinned_readers_.fetch_sub(1, std::memory_order_release);
  manager_ = nullptr;
}

EpochManager::Guard EpochManager::Pin() {
  // Claim a free slot, starting from a per-thread hint so a thread that
  // pins repeatedly keeps touching the same line. The hint is shared
  // across managers — it is only a hint.
  static thread_local uint32_t slot_hint = 0;
  const uint32_t n = static_cast<uint32_t>(options_.max_readers);
  uint32_t slot = slot_hint % n;
  for (uint32_t attempts = 0;; ++attempts, slot = (slot + 1) % n) {
    uint64_t expected = 0;
    // Claim with the *current* epoch; the publish loop below re-stores
    // if the epoch moved, so the initial value only has to be nonzero.
    if (slots_[slot].epoch.compare_exchange_strong(
            expected, global_epoch_.load(std::memory_order_seq_cst),
            std::memory_order_seq_cst)) {
      break;
    }
    if (attempts >= n) {
      // Every slot pinned: wait for a reader to leave. Readers unpin in
      // microseconds, so this is a last-resort fairness valve, not a
      // steady state.
      std::this_thread::yield();
    }
  }
  slot_hint = slot;

  // Re-check loop (see header): after our slot store, the global epoch
  // must be unchanged — otherwise a reclaimer may have scanned the slots
  // before our store landed and freed entries from the epoch we pinned;
  // re-pinning at the newer epoch restores the invariant.
  uint64_t e = slots_[slot].epoch.load(std::memory_order_seq_cst);
  for (;;) {
    const uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
    if (g == e) break;
    e = g;
    slots_[slot].epoch.store(e, std::memory_order_seq_cst);
  }

  // Grow the scan watermark to cover this slot.
  uint32_t watermark = slot_watermark_.load(std::memory_order_relaxed);
  while (watermark < slot + 1 &&
         !slot_watermark_.compare_exchange_weak(
             watermark, slot + 1, std::memory_order_release,
             std::memory_order_relaxed)) {
  }

  pinned_readers_.fetch_add(1, std::memory_order_relaxed);
  if (options_.pinned_counter != nullptr) options_.pinned_counter->Increment();
  return Guard(this, slot);
}

void EpochManager::Retire(void* object, void (*deleter)(void*)) {
  {
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    limbo_.push_back(
        {global_epoch_.load(std::memory_order_seq_cst), object, deleter});
  }
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (options_.retired_counter != nullptr) {
    options_.retired_counter->Increment();
  }
  if (options_.auto_reclaim) {
    Advance();
    TryReclaim();
  }
}

uint64_t EpochManager::Advance() {
  return global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

uint64_t EpochManager::ReclaimBound() const {
  uint64_t bound = global_epoch_.load(std::memory_order_seq_cst);
  const uint32_t watermark =
      slot_watermark_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < watermark; ++i) {
    const uint64_t pinned = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < bound) bound = pinned;
  }
  return bound;
}

size_t EpochManager::TryReclaim() {
  std::vector<LimboEntry> ready;
  {
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    if (limbo_.empty()) return 0;
    // The bound is computed under the limbo lock so two concurrent
    // reclaimers cannot both extract the same entry; the deleters then
    // run outside it (they may drop the last ref to a whole model).
    const uint64_t bound = ReclaimBound();
    auto keep = limbo_.begin();
    for (auto it = limbo_.begin(); it != limbo_.end(); ++it) {
      if (it->epoch < bound) {
        ready.push_back(*it);
      } else {
        *keep++ = *it;
      }
    }
    limbo_.erase(keep, limbo_.end());
  }
  for (const LimboEntry& entry : ready) {
    entry.deleter(entry.object);
  }
  freed_total_.fetch_add(ready.size(), std::memory_order_relaxed);
  if (options_.freed_counter != nullptr && !ready.empty()) {
    options_.freed_counter->Increment(ready.size());
  }
  return ready.size();
}

EpochStats EpochManager::stats() const {
  EpochStats stats;
  stats.epoch = global_epoch_.load(std::memory_order_acquire);
  stats.pinned_readers = pinned_readers_.load(std::memory_order_acquire);
  stats.retired_total = retired_total_.load(std::memory_order_acquire);
  stats.freed_total = freed_total_.load(std::memory_order_acquire);
  stats.limbo_size = stats.retired_total - stats.freed_total;
  return stats;
}

}  // namespace hpm
