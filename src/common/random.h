// Deterministic pseudo-random number generation.
//
// All stochastic components of hpm (data generators, workload samplers)
// draw from an explicitly seeded Random so that every experiment is
// reproducible bit-for-bit across runs and machines.

#ifndef HPM_COMMON_RANDOM_H_
#define HPM_COMMON_RANDOM_H_

#include <cstdint>

namespace hpm {

/// xoshiro256** generator with splitmix64 seeding.
///
/// Small, fast, and fully deterministic given the seed; quality is more
/// than sufficient for synthetic trajectory generation. Not thread-safe;
/// give each thread its own instance.
class Random {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hpm

#endif  // HPM_COMMON_RANDOM_H_
