#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace hpm {

size_t LatencyHistogram::BucketIndex(uint64_t micros) {
  const size_t width = static_cast<size_t>(std::bit_width(micros));
  return std::min(width, kNumBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros = sum_micros_.load(std::memory_order_relaxed);
  return snap;
}

double LatencyHistogram::Snapshot::PercentileMicros(double percentile) const {
  if (count == 0) return 0.0;
  const double clamped = std::clamp(percentile, 0.0, 100.0);
  // Rank of the requested sample, 1-based, rounded up so p100 lands on the
  // last recorded sample and p0 on the first.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(clamped / 100.0 * static_cast<double>(count) +
                               0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return static_cast<double>(BucketUpperMicros(i));
  }
  return static_cast<double>(BucketUpperMicros(kNumBuckets - 1));
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const LatencyHistogram::Snapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, snap] : histograms) {
    if (n == name) return &snap;
  }
  return nullptr;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    bool found = false;
    for (auto& [n, v] : counters) {
      if (n == name) {
        v += value;
        found = true;
        break;
      }
    }
    if (!found) counters.emplace_back(name, value);
  }
  for (const auto& [name, snap] : other.histograms) {
    bool found = false;
    for (auto& [n, mine] : histograms) {
      if (n == name) {
        for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
          mine.buckets[i] += snap.buckets[i];
        }
        mine.count += snap.count;
        mine.sum_micros += snap.sum_micros;
        found = true;
        break;
      }
    }
    if (!found) histograms.emplace_back(name, snap);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {"
        << "\"count\": " << snap.count << ", \"sum_us\": " << snap.sum_micros
        << ", \"mean_us\": " << snap.mean_micros()
        << ", \"p50_us\": " << snap.PercentileMicros(50.0)
        << ", \"p99_us\": " << snap.PercentileMicros(99.0) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}";
  return out.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, counter] : counters_) {
    if (n == name) return counter.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, histogram] : histograms_) {
    if (n == name) return histogram.get();
  }
  histograms_.emplace_back(name, std::make_unique<LatencyHistogram>());
  return histograms_.back().second.get();
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->TakeSnapshot());
  }
  return snap;
}

}  // namespace hpm
