// Aligned-table and CSV output for the experiment harnesses.
//
// Every figure bench prints the same series the paper plots; TablePrinter
// keeps that output readable on a terminal and trivially machine-parsable.

#ifndef HPM_COMMON_TABLE_PRINTER_H_
#define HPM_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace hpm {

/// Collects rows of string cells and prints them either as an aligned
/// text table or as CSV.
///
/// Usage:
///   TablePrinter t({"eps", "patterns", "error"});
///   t.AddRow({"22", "1034", "812.4"});
///   t.Print(stdout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows are a programming error.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string FormatDouble(double v, int precision = 2);

  /// Prints an aligned, pipe-separated table.
  void Print(std::FILE* out) const;

  /// Prints RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void PrintCsv(std::FILE* out) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpm

#endif  // HPM_COMMON_TABLE_PRINTER_H_
