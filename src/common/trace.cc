#include "common/trace.h"

#include <sstream>

namespace hpm {

int Trace::BeginSpan(const std::string& name, int parent) {
  if (!enabled_) return -1;
  const uint64_t start = MicrosSinceEpoch();
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.name = name;
  span.start_micros = start;
  if (parent >= 0 && parent < static_cast<int>(spans_.size())) {
    span.parent = parent;
    span.depth = spans_[parent].depth + 1;
  }
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::EndSpan(int id) {
  if (!enabled_ || id < 0) return;
  const uint64_t now = MicrosSinceEpoch();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= static_cast<int>(spans_.size())) return;
  TraceSpan& span = spans_[id];
  if (span.finished) return;
  span.duration_micros = now - span.start_micros;
  span.finished = true;
}

void Trace::AddCounter(const std::string& name, uint64_t delta) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, value] : counters_) {
    if (n == name) {
      value += delta;
      return;
    }
  }
  counters_.emplace_back(name, delta);
}

std::vector<TraceSpan> Trace::spans() const {
  if (!enabled_) return {};
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<std::pair<std::string, uint64_t>> Trace::counters() const {
  if (!enabled_) return {};
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string Trace::ToString() const {
  std::ostringstream out;
  for (const TraceSpan& span : spans()) {
    for (int i = 0; i < span.depth; ++i) out << "  ";
    out << span.name << " +" << span.start_micros << "us";
    if (span.finished) out << " (" << span.duration_micros << "us)";
    out << "\n";
  }
  for (const auto& [name, value] : counters()) {
    out << name << "=" << value << "\n";
  }
  return out.str();
}

}  // namespace hpm
