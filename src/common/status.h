// Status / StatusOr error model (RocksDB / Abseil idiom).
//
// Library code in hpm does not throw on expected failure paths; fallible
// operations return Status, and fallible value-producing operations return
// StatusOr<T>. Programmer errors (misuse of an API whose preconditions are
// documented) abort via HPM_CHECK in debug and release alike, because a
// corrupted index or model is worse than a crash.

#ifndef HPM_COMMON_STATUS_H_
#define HPM_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace hpm {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value outside the documented domain.
  kNotFound,          ///< Lookup key / pattern / region does not exist.
  kFailedPrecondition,///< Object not in a state where the call is legal.
  kOutOfRange,        ///< Index or time offset outside the valid range.
  kInternal,          ///< Invariant violation inside the library.
  kUnimplemented,     ///< Feature declared but not available.
  kDeadlineExceeded,  ///< The operation's deadline expired before it finished.
  kUnavailable,       ///< Transient failure; retrying may succeed.
  kDataLoss,          ///< Unrecoverable corruption or a torn/short write.
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (empty message). Use the static
/// constructors (`Status::OK()`, `Status::InvalidArgument("...")`) rather
/// than the raw constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns the same status with "<site>: " prefixed to the message
  /// (no-op on OK), so a failure crossing layers names every site it
  /// passed through instead of collapsing into the innermost string.
  Status Annotate(const std::string& site) const {
    if (ok()) return *this;
    return Status(code_, message_.empty() ? site : site + ": " + message_);
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining why there is none.
///
/// Accessing `value()` on a non-OK StatusOr aborts; check `ok()` first or
/// propagate with HPM_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a value (OK result).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error Status. Must not be OK.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::fprintf(stderr, "StatusOr constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The held value. Precondition: ok().
  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

/// Aborts with a message when `condition` is false. For invariants and
/// documented preconditions, not for data-dependent failures.
#define HPM_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "HPM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Propagates a non-OK Status from the current function.
#define HPM_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::hpm::Status _hpm_status = (expr);        \
    if (!_hpm_status.ok()) return _hpm_status; \
  } while (0)

}  // namespace hpm

#endif  // HPM_COMMON_STATUS_H_
