// CRC32 (IEEE 802.3 polynomial, reflected) for detecting torn writes and
// bit rot in persisted files. Not cryptographic — it guards against
// accidental corruption, not adversaries.

#ifndef HPM_COMMON_CRC32_H_
#define HPM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace hpm {

/// CRC32 of `n` bytes, continuing from `seed` (pass the previous return
/// value to checksum data arriving in chunks; 0 starts a fresh sum).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace hpm

#endif  // HPM_COMMON_CRC32_H_
