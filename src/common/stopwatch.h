// Wall-clock timing for experiment harnesses.

#ifndef HPM_COMMON_STOPWATCH_H_
#define HPM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace hpm {

/// Monotonic wall-clock stopwatch with microsecond resolution.
///
/// Starts running on construction; `Restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the elapsed time to zero.
  void Restart();

  /// Elapsed time since construction or last Restart, in microseconds.
  int64_t ElapsedMicros() const;

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const;

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hpm

#endif  // HPM_COMMON_STOPWATCH_H_
