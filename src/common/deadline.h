// Deadline for time-bounded operations.
//
// A Deadline is a point on the steady (monotonic) clock; queries carry one
// through the serving path and long-running steps poll `expired()` at safe
// points. The default-constructed Deadline is infinite, so existing callers
// that never set one see no behaviour change and pay one branch per check.

#ifndef HPM_COMMON_DEADLINE_H_
#define HPM_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace hpm {

/// A monotonic-clock point in time after which an operation should give up
/// (or, in the serving path, degrade to the cheap RMF answer).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires. Same as Deadline::Infinite().
  Deadline() : infinite_(true), when_() {}

  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `d` from now.
  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> d) {
    return Deadline(Clock::now() + d);
  }

  /// Expires `ms` milliseconds from now.
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  /// Already expired. Useful in tests to force the degradation path
  /// without depending on wall-clock timing.
  static Deadline Expired() {
    return Deadline(Clock::now() - std::chrono::hours(1));
  }

  bool is_infinite() const { return infinite_; }

  /// True once the clock has passed the deadline. Infinite deadlines
  /// never expire.
  bool expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Time left before expiry; zero if expired, Clock::duration::max()
  /// if infinite.
  Clock::duration remaining() const {
    if (infinite_) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

 private:
  explicit Deadline(Clock::time_point when) : infinite_(false), when_(when) {}

  bool infinite_;
  Clock::time_point when_;
};

}  // namespace hpm

#endif  // HPM_COMMON_DEADLINE_H_
