#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/status.h"

namespace hpm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HPM_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HPM_CHECK(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, " |\n");
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::fprintf(out, "%s%s", c == 0 ? "|-" : "-|-",
                 std::string(widths[c], '-').c_str());
  }
  std::fprintf(out, "-|\n");
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_cell = [&](const std::string& cell, bool last) {
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      std::fputc('"', out);
      for (char ch : cell) {
        if (ch == '"') std::fputc('"', out);
        std::fputc(ch, out);
      }
      std::fputc('"', out);
    } else {
      std::fputs(cell.c_str(), out);
    }
    std::fputc(last ? '\n' : ',', out);
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      print_cell(row[c], c + 1 == row.size());
    }
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace hpm
