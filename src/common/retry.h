// Bounded retry with exponential backoff and deterministic jitter.
//
// Only kUnavailable is retryable: it is the one code that promises the
// failure is transient. Everything else (corruption, bad arguments,
// expired deadlines) fails fast — retrying a DataLoss would just re-read
// the same torn file.
//
// Jitter comes from a caller-supplied hpm::Random, and sleeping goes
// through a caller-supplied function, so tests (and the fault-injection
// prop suites) run retries deterministically and without wall-clock
// delays.

#ifndef HPM_COMMON_RETRY_H_
#define HPM_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/random.h"
#include "common/status.h"

namespace hpm {

/// ---- Retry-after hints ---------------------------------------------------
/// A rejecting server (the admission controller) knows *when* retrying
/// will succeed; it encodes that as a machine-readable suffix on the
/// status message, and RetryWithBackoff uses it as a floor on the next
/// sleep — so rejected clients back off to the rate the server asked
/// for instead of retrying on their own schedule.

/// Appends " [retry-after-us=N]" to the status message (no-op on OK).
inline Status AttachRetryAfter(const Status& status,
                               std::chrono::microseconds retry_after) {
  if (status.ok()) return status;
  return Status(status.code(),
                status.message() + " [retry-after-us=" +
                    std::to_string(retry_after.count()) + "]");
}

/// Parses the hint AttachRetryAfter wrote; nullopt when absent.
inline std::optional<std::chrono::microseconds> RetryAfterHint(
    const Status& status) {
  static constexpr char kMarker[] = " [retry-after-us=";
  const std::string& message = status.message();
  const size_t at = message.rfind(kMarker);
  if (at == std::string::npos) return std::nullopt;
  const char* digits = message.c_str() + at + sizeof(kMarker) - 1;
  char* end = nullptr;
  const long long us = std::strtoll(digits, &end, 10);
  if (end == digits || *end != ']' || us < 0) return std::nullopt;
  return std::chrono::microseconds(us);
}

/// Shape of the backoff schedule. With the defaults a call is attempted at
/// most 3 times, sleeping ~1ms then ~2ms (each +/- up to 50% jitter)
/// between attempts.
struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::microseconds initial_backoff{1000};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{100000};
  double jitter = 0.5;  ///< Each sleep is scaled by 1 +/- jitter * U[-1,1).
  /// Full jitter (AWS style): each sleep is drawn from U[0, backoff)
  /// instead of scaled around it. Scaled jitter keeps a fleet of clients
  /// that failed together loosely synchronized — their sleeps all
  /// cluster around the same midpoint, so they thundering-herd a
  /// recovering server in waves. Full jitter spreads the retries across
  /// the whole window. `jitter` is ignored when this is set; a
  /// server-supplied retry-after hint still floors the sleep.
  bool full_jitter = false;
};

/// True for failures worth retrying under RetryPolicy.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

namespace retry_internal {

inline const Status& GetStatus(const Status& s) { return s; }

template <typename T>
Status GetStatus(const StatusOr<T>& s) {
  return s.status();
}

inline void SleepFor(std::chrono::microseconds d) {
  std::this_thread::sleep_for(d);
}

}  // namespace retry_internal

/// Invokes `fn` until it succeeds, fails non-retryably, or
/// `policy.max_attempts` attempts are exhausted; returns the last result.
/// `fn` returns Status or StatusOr<T>. `sleep_fn` receives each backoff
/// duration — pass a no-op lambda in tests to retry without sleeping.
template <typename Fn, typename SleepFn>
auto RetryWithBackoff(const RetryPolicy& policy, Random& rng, Fn&& fn,
                      SleepFn&& sleep_fn) -> decltype(fn()) {
  std::chrono::microseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    auto result = fn();
    const Status status = retry_internal::GetStatus(result);
    if (status.ok() || !IsRetryable(status) ||
        attempt >= policy.max_attempts) {
      return result;
    }
    const double scale =
        policy.full_jitter
            ? rng.UniformDouble(0.0, 1.0)
            : 1.0 + policy.jitter * rng.UniformDouble(-1.0, 1.0);
    auto sleep = std::chrono::microseconds(
        static_cast<int64_t>(static_cast<double>(backoff.count()) * scale));
    if (sleep > policy.max_backoff) sleep = policy.max_backoff;
    // A server-supplied retry-after hint floors the sleep: retrying any
    // sooner is guaranteed to be rejected again. The hint may exceed
    // max_backoff — the server knows its own refill schedule best.
    if (const auto hint = RetryAfterHint(status);
        hint.has_value() && *hint > sleep) {
      sleep = *hint;
    }
    if (sleep.count() > 0) sleep_fn(sleep);
    backoff = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * policy.multiplier));
    if (backoff > policy.max_backoff) backoff = policy.max_backoff;
  }
}

/// RetryWithBackoff sleeping on the real clock.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Random& rng, Fn&& fn)
    -> decltype(fn()) {
  return RetryWithBackoff(policy, rng, std::forward<Fn>(fn),
                          retry_internal::SleepFor);
}

}  // namespace hpm

#endif  // HPM_COMMON_RETRY_H_
