#include "common/random.h"

#include <cmath>

#include "common/status.h"

namespace hpm {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  HPM_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  HPM_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace hpm
