// Deterministic fault injection for robustness testing.
//
// Production code marks the places where the outside world can fail — a
// pattern lookup, a file write, a snapshot swap — with named fault sites:
//
//   HPM_RETURN_IF_ERROR(HPM_FAULT_HIT("store/save_manifest"));
//
// In a normal build the macro expands to an OK status (or nothing) and the
// compiler deletes it; configuring with -DHPM_ENABLE_FAULTS=ON compiles the
// hooks in, and tests arm sites on the global FaultInjector with rules like
// "fail the 3rd call" or "fail with probability 0.1". All randomness comes
// from a seedable hpm::Random, so a failing fault schedule replays exactly
// from its seed (see docs/ROBUSTNESS.md).
//
// The FaultInjector class itself is always compiled (tests of the framework
// run in every build); only the hooks in production code are gated.

#ifndef HPM_COMMON_FAULT_INJECTION_H_
#define HPM_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace hpm {

/// When and how an armed fault site fails.
///
/// A rule fires when any of its triggers matches: `always`, `probability`
/// (per call, from the injector's deterministic RNG), or `nth_call`
/// (1-based index of the call that fails; calls are counted from the last
/// Reset/ResetCounters). `max_fires` caps the total number of failures a
/// rule produces (-1 = unlimited), which lets tests model transient faults
/// that heal.
struct FaultRule {
  StatusCode code = StatusCode::kUnavailable;
  std::string message;      ///< Appended to "injected fault at <site>".
  double probability = 0.0; ///< Chance each call fails, in [0, 1].
  int64_t nth_call = 0;     ///< 1-based call index that fails; 0 = off.
  /// Every call from this 1-based index onward fails. This is the
  /// crash model: once the process "dies" at call N, later calls at the
  /// site cannot succeed either — unlike nth_call, a retry loop cannot
  /// absorb it. 0 = off.
  int64_t from_nth_call = 0;
  bool always = false;      ///< Every call fails.
  int64_t max_fires = -1;   ///< Stop firing after this many; -1 = unlimited.
};

/// Registry of named fault sites. Thread-safe; production code calls
/// `Hit(site)` through the HPM_FAULT_* macros, tests arm and inspect.
///
/// Call counters advance on every Hit, armed or not, so a test can run a
/// scenario once to count the kill points at a site and then re-run arming
/// `nth_call = 1..count` — the crash-recovery suite does exactly this.
class FaultInjector {
 public:
  /// The process-wide injector the HPM_FAULT_* macros consult.
  static FaultInjector& Global();

  /// Arms `site` with `rule`, replacing any existing rule. Counters for
  /// the site are preserved.
  void Arm(const std::string& site, FaultRule rule);

  /// Removes the rule for `site` (counters are preserved).
  void Disarm(const std::string& site);

  /// Removes all rules and zeroes all counters. Does not reseed.
  void Reset();

  /// Zeroes call/fire counters but keeps armed rules.
  void ResetCounters();

  /// Reseeds the RNG used by probability triggers. Same seed + same call
  /// sequence => same fault schedule.
  void Seed(uint64_t seed);

  /// Records a call at `site` and returns the injected failure if an armed
  /// rule fires, OK otherwise. This is what HPM_FAULT_HIT expands to.
  Status Hit(const std::string& site);

  /// Calls observed at `site` since the last Reset/ResetCounters.
  int64_t calls(const std::string& site) const;

  /// Failures injected at `site` since the last Reset/ResetCounters.
  int64_t fires(const std::string& site) const;

  /// Sites that have been hit or armed, sorted. For diagnostics
  /// (`hpm_tool faultcheck` prints this table).
  std::vector<std::string> Sites() const;

 private:
  FaultInjector() : rng_(0x68706d5f666c74ULL) {}  // "hpm_flt"

  struct SiteState {
    bool armed = false;
    FaultRule rule;
    int64_t calls = 0;
    int64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  Random rng_;
};

/// Names of the fault sites compiled into the library, for tools and tests
/// that want to iterate over every kill point. Keep in sync with the
/// HPM_FAULT_* call sites (docs/ROBUSTNESS.md lists each one's meaning).
extern const char* const kKnownFaultSites[];
extern const int kNumKnownFaultSites;

}  // namespace hpm

#ifdef HPM_ENABLE_FAULTS

/// Evaluates to the Status injected at `site` (OK when unarmed / not firing).
#define HPM_FAULT_HIT(site) ::hpm::FaultInjector::Global().Hit(site)

/// Returns the injected failure from the current function, if any. Works in
/// functions returning Status or StatusOr<T>.
#define HPM_INJECT_FAULT(site)                                   \
  do {                                                           \
    ::hpm::Status _hpm_fault = HPM_FAULT_HIT(site);              \
    if (!_hpm_fault.ok()) return _hpm_fault;                     \
  } while (0)

#else  // !HPM_ENABLE_FAULTS

#define HPM_FAULT_HIT(site) ::hpm::Status::OK()
#define HPM_INJECT_FAULT(site) \
  do {                         \
  } while (0)

#endif  // HPM_ENABLE_FAULTS

#endif  // HPM_COMMON_FAULT_INJECTION_H_
