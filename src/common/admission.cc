#include "common/admission.h"

#include <algorithm>

#include "common/retry.h"

namespace hpm {

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  HPM_CHECK(options_.tokens_per_second >= 0.0);
  HPM_CHECK(options_.max_in_flight >= 0);
  if (options_.tokens_per_second > 0.0 && options_.burst < 1.0) {
    options_.burst = 1.0;
  }
  tokens_ = options_.burst;
  last_refill_ = Now();
}

void AdmissionController::Refill(AdmissionOptions::Clock::time_point now) {
  if (now <= last_refill_) return;
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  tokens_ = std::min(options_.burst,
                     tokens_ + elapsed * options_.tokens_per_second);
  last_refill_ = now;
}

StatusOr<AdmissionTicket> AdmissionController::Admit(const char* what) {
  // Gauge first: it is the cheaper check and the one that protects the
  // machine (tokens protect the schedule).
  if (options_.max_in_flight > 0) {
    int current = in_flight_.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= options_.max_in_flight) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return AttachRetryAfter(
            Status::Unavailable(std::string(what) +
                                ": admission rejected (in-flight limit)"),
            options_.in_flight_retry_hint);
      }
      if (in_flight_.compare_exchange_weak(current, current + 1,
                                           std::memory_order_relaxed)) {
        break;
      }
    }
  } else {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }

  if (options_.tokens_per_second > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    Refill(Now());
    if (tokens_ < 1.0) {
      ReleaseSlot();
      rejected_.fetch_add(1, std::memory_order_relaxed);
      // Time until one whole token exists, at the configured rate.
      const double deficit_seconds =
          (1.0 - tokens_) / options_.tokens_per_second;
      const auto hint = std::chrono::microseconds(std::max<int64_t>(
          1, static_cast<int64_t>(deficit_seconds * 1e6)));
      return AttachRetryAfter(
          Status::Unavailable(std::string(what) +
                              ": admission rejected (rate limit)"),
          hint);
    }
    tokens_ -= 1.0;
  }

  admitted_.fetch_add(1, std::memory_order_relaxed);
  return AdmissionTicket(this);
}

double AdmissionController::available_tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Refill is logically const: it only advances the bucket to `now`.
  const_cast<AdmissionController*>(this)->Refill(Now());
  return tokens_;
}

}  // namespace hpm
