#include "common/thread_pool.h"

namespace hpm {

ThreadPool::ThreadPool(int num_threads) {
  HPM_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  condition_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      condition_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

int ThreadPool::DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : static_cast<int>(n);
}

}  // namespace hpm
