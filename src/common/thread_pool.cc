#include "common/thread_pool.h"

namespace hpm {

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  HPM_CHECK(options_.num_threads >= 1);
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(DrainPolicy::kRunPending); }

ThreadPool::DrainStats ThreadPool::Shutdown(DrainPolicy policy) {
  DrainStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return stats;  // Second call: someone already decided.
    stopping_ = true;
    if (policy == DrainPolicy::kDiscardPending) {
      // Destroying the queued closures destroys their packaged_tasks,
      // which breaks their promises — every discarded task is reported
      // through its future, never silently lost.
      stats.discarded = queue_.size();
      std::queue<std::function<void()>>().swap(queue_);
    } else {
      stats.ran = queue_.size();
    }
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  }
  condition_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  return stats;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      condition_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    task();
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

int ThreadPool::DefaultThreadCount() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 2 : static_cast<int>(n);
}

}  // namespace hpm
