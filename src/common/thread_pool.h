// Fixed-size worker pool for shard fan-out in the serving layer, with an
// optional queue bound so overload turns into backpressure instead of
// unbounded memory growth.
//
// Two submission paths:
//   * Submit()    — legacy unbounded enqueue; never rejects (aborts if
//                   the pool is already shut down). For work that must
//                   not be dropped.
//   * TrySubmit() — honors `max_queue_depth`; returns kUnavailable when
//                   the queue is full or the pool is shutting down, so
//                   callers can fail fast or run the task inline (the
//                   store's fan-out does the latter: a saturated pool
//                   slows the caller down rather than queueing).
//
// Shutdown is deterministic: every task handed to the pool either runs
// to completion or — under Shutdown(kDiscardPending) — is reported, both
// through the returned DrainStats and through its future, which throws
// std::future_error(broken_promise). Nothing is ever silently dropped.
//
// Locking design note: the serving layer pairs this pool with one plain
// std::shared_mutex per store shard rather than a hand-rolled spinning
// reader-writer lock. Shard critical sections are short (append one
// sample, copy a recent-movement window, swap a shared_ptr), but the
// *writer* sections occasionally stretch — initial model training is
// milliseconds — and a spinlock would burn a core per blocked reader for
// that whole stretch. std::shared_mutex parks waiters in the kernel,
// costs one uncontended atomic on the fast path, and keeps the code
// obviously correct under TSan; at our shard counts the fast-path
// difference is unmeasurable next to prediction work.

#ifndef HPM_COMMON_THREAD_POOL_H_
#define HPM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hpm {

/// Pool configuration.
struct ThreadPoolOptions {
  /// Worker threads. Must be >= 1.
  int num_threads = 1;

  /// Queued-but-unstarted tasks TrySubmit tolerates before rejecting.
  /// 0 = unbounded (TrySubmit only rejects during shutdown). Submit()
  /// ignores the bound by design.
  size_t max_queue_depth = 0;
};

/// A fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers with an unbounded queue.
  /// Precondition: num_threads >= 1.
  explicit ThreadPool(int num_threads)
      : ThreadPool(ThreadPoolOptions{num_threads, 0}) {}

  explicit ThreadPool(ThreadPoolOptions options);

  /// Shutdown(kRunPending): drains the queue (pending tasks still
  /// execute) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `f` and returns a future for its result, ignoring
  /// max_queue_depth. Safe to call from any thread, including pool
  /// workers — but a task that *blocks* on a future of another task can
  /// deadlock once every worker does it, so fan-out code should submit
  /// leaves only. Aborts (HPM_CHECK) if the pool has been shut down.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      HPM_CHECK(!stopping_);
      queue_.push([task] { (*task)(); });
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
    condition_.notify_one();
    return future;
  }

  /// Bounded enqueue: kUnavailable when the queue already holds
  /// max_queue_depth tasks (backpressure) or the pool is shutting down.
  template <typename F>
  auto TrySubmit(F&& f)
      -> StatusOr<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        return Status::Unavailable("thread pool is shutting down");
      }
      if (options_.max_queue_depth > 0 &&
          queue_.size() >= options_.max_queue_depth) {
        return Status::Unavailable("thread pool queue is full");
      }
      queue_.push([task] { (*task)(); });
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
    condition_.notify_one();
    return future;
  }

  /// Tasks queued but not yet started (relaxed snapshot — exact only
  /// when no worker or submitter is concurrently active). The serving
  /// layer's load-shedding ladder reads this as its pressure signal.
  size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Tasks currently executing on a worker (relaxed snapshot).
  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// What Shutdown does with queued-but-unstarted tasks.
  enum class DrainPolicy {
    kRunPending,      ///< Workers finish every queued task before joining.
    kDiscardPending,  ///< Queued tasks are dropped; their futures throw
                      ///< std::future_error(broken_promise) on get().
  };

  /// Accounting of one Shutdown: how many queued tasks were handed to
  /// the chosen fate. Tasks already *running* when Shutdown is called
  /// always finish and appear in neither count.
  struct DrainStats {
    size_t ran = 0;        ///< Queued tasks guaranteed to have executed.
    size_t discarded = 0;  ///< Queued tasks dropped (futures broken).
  };

  /// Stops the pool and joins the workers. Idempotent: the first call
  /// decides the drain policy and returns the real stats, later calls
  /// (and the destructor) are no-ops returning zeros. After shutdown,
  /// TrySubmit returns kUnavailable and Submit aborts.
  DrainStats Shutdown(DrainPolicy policy = DrainPolicy::kRunPending);

  /// hardware_concurrency, or 2 when the runtime cannot tell.
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  ThreadPoolOptions options_;
  std::mutex mutex_;
  std::condition_variable condition_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::atomic<size_t> queue_depth_{0};
  std::atomic<int> in_flight_{0};
  std::vector<std::thread> workers_;
};

}  // namespace hpm

#endif  // HPM_COMMON_THREAD_POOL_H_
