// Fixed-size worker pool for shard fan-out in the serving layer.
//
// Submit() hands a callable to the workers and returns a std::future for
// its result; tasks already queued when the pool is destroyed still run
// (the destructor drains the queue before joining).
//
// Locking design note: the serving layer pairs this pool with one plain
// std::shared_mutex per store shard rather than a hand-rolled spinning
// reader-writer lock. Shard critical sections are short (append one
// sample, copy a recent-movement window, swap a shared_ptr), but the
// *writer* sections occasionally stretch — initial model training is
// milliseconds — and a spinlock would burn a core per blocked reader for
// that whole stretch. std::shared_mutex parks waiters in the kernel,
// costs one uncontended atomic on the fast path, and keeps the code
// obviously correct under TSan; at our shard counts the fast-path
// difference is unmeasurable next to prediction work.

#ifndef HPM_COMMON_THREAD_POOL_H_
#define HPM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hpm {

/// A fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers. Precondition: num_threads >= 1.
  explicit ThreadPool(int num_threads);

  /// Drains the queue (pending tasks still execute) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `f` and returns a future for its result. Safe to call from
  /// any thread, including pool workers — but a task that *blocks* on a
  /// future of another task can deadlock once every worker does it, so
  /// fan-out code should submit leaves only.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      HPM_CHECK(!stopping_);
      queue_.push([task] { (*task)(); });
    }
    condition_.notify_one();
    return future;
  }

  /// hardware_concurrency, or 2 when the runtime cannot tell.
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable condition_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hpm

#endif  // HPM_COMMON_THREAD_POOL_H_
