// Per-query trace: nested timing spans plus named counters.
//
// A Trace belongs to exactly one query execution. The pipeline opens a root
// span per stage and lower layers may open child spans; spans nest by
// parent index into the flat span list, which keeps recording to one vector
// push under a mutex (fan-out workers of the same query may record
// concurrently). A disabled Trace — the default unless the store has a
// trace sink installed — makes every call a no-op so the hot path pays a
// single predictable branch.

#ifndef HPM_COMMON_TRACE_H_
#define HPM_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hpm {

/// One completed (or still-open) timing span inside a Trace.
struct TraceSpan {
  std::string name;
  int parent = -1;  ///< Index of the enclosing span; -1 for roots.
  int depth = 0;    ///< Root spans have depth 0.
  uint64_t start_micros = 0;     ///< Offset from the trace epoch.
  uint64_t duration_micros = 0;  ///< 0 until the span is ended.
  bool finished = false;
};

/// A per-query recording of spans and counters. Copyable only via the
/// explicit snapshot accessors; the object itself stays with the query.
class Trace {
 public:
  /// Disabled trace: every operation is a no-op.
  Trace() : Trace(false) {}

  /// Enabled (or not) trace; the epoch is construction time. A Trace owns
  /// a mutex, so it is neither copyable nor movable — it lives where the
  /// query executes.
  explicit Trace(bool enabled) : enabled_(enabled), epoch_(Clock::now()) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  bool enabled() const { return enabled_; }

  /// Opens a span named `name` under `parent` (-1 for a root span).
  /// Returns the span id to pass to EndSpan, or -1 when disabled.
  int BeginSpan(const std::string& name, int parent = -1);

  /// Closes the span; duration becomes now - start. No-op for id < 0.
  void EndSpan(int id);

  /// Adds `delta` to the trace-local counter `name`, creating it at zero.
  void AddCounter(const std::string& name, uint64_t delta);

  std::vector<TraceSpan> spans() const;
  std::vector<std::pair<std::string, uint64_t>> counters() const;

  /// Human-readable indented rendering of the span tree and counters.
  std::string ToString() const;

 private:
  using Clock = std::chrono::steady_clock;

  uint64_t MicrosSinceEpoch() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              epoch_)
            .count());
  }

  bool enabled_;
  Clock::time_point epoch_{};
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<std::pair<std::string, uint64_t>> counters_;
};

/// RAII helper that ends its span on scope exit.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const std::string& name, int parent = -1)
      : trace_(trace), id_(trace != nullptr ? trace->BeginSpan(name, parent)
                                            : -1) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Span id, usable as the parent of child spans. -1 when disabled.
  int id() const { return id_; }

 private:
  Trace* trace_;
  int id_;
};

}  // namespace hpm

#endif  // HPM_COMMON_TRACE_H_
