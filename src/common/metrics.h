// Lock-free serving metrics: counters and fixed-bucket latency histograms.
//
// The serving path updates metrics on every query, so the update side must
// be wait-free and contention-tolerant: a Counter is a single relaxed
// atomic, a LatencyHistogram is a fixed array of relaxed atomics indexed by
// the bit width of the sample (power-of-two microsecond buckets). Neither
// allocates or locks after construction. Registration and snapshotting go
// through a MetricsRegistry, which hands out pointer-stable instruments and
// serialises a consistent-enough view for dashboards and tools.
//
// Snapshots are advisory: individual loads are relaxed, so a snapshot taken
// concurrently with updates may see a histogram whose `count` lags the sum
// of its buckets by in-flight increments. That is fine for observability;
// tests that need exact values quiesce the store first.

#ifndef HPM_COMMON_METRICS_H_
#define HPM_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hpm {

/// Monotonic event counter. Wait-free increments, relaxed ordering.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram over power-of-two microsecond buckets.
///
/// Bucket `i` counts samples whose value in microseconds has bit width `i`,
/// i.e. lies in [2^(i-1), 2^i); bucket 0 holds sub-microsecond samples and
/// the last bucket saturates (~134s and above). 28 buckets cover the whole
/// plausible serving range with one cache line of counters.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 28;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample of `micros` microseconds.
  void RecordMicros(uint64_t micros) {
    buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Records an elapsed duration (floored to whole microseconds).
  template <typename Rep, typename Period>
  void Record(std::chrono::duration<Rep, Period> elapsed) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
    RecordMicros(us > 0 ? static_cast<uint64_t>(us) : 0);
  }

  /// Point-in-time copy of the histogram; safe to take concurrently with
  /// updates (values are advisory, see file comment).
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum_micros = 0;

    double mean_micros() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_micros) /
                              static_cast<double>(count);
    }

    /// Upper bound (exclusive) of bucket `i` in microseconds.
    static uint64_t BucketUpperMicros(size_t i) { return uint64_t{1} << i; }

    /// Percentile estimate in [0, 100]; returns the upper bound of the
    /// bucket containing the requested rank (a conservative estimate that
    /// never under-reports by more than one bucket width).
    double PercentileMicros(double percentile) const;
  };

  Snapshot TakeSnapshot() const;

  static size_t BucketIndex(uint64_t micros);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// A named view of every instrument in a registry at one point in time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> histograms;

  /// Counter value by exact name; 0 when absent.
  uint64_t counter(const std::string& name) const;

  /// Histogram by exact name; nullptr when absent.
  const LatencyHistogram::Snapshot* histogram(const std::string& name) const;

  /// Folds `other`'s rows into this snapshot, so instruments split
  /// across registries (e.g. the store's and the network server's)
  /// render as one document. A name present in both sums counters and
  /// merges histogram buckets; a name only in `other` is appended.
  void MergeFrom(const MetricsSnapshot& other);

  /// Stable JSON rendering (names sorted as registered) for tools/benches.
  std::string ToJson() const;
};

/// Owns instruments and serialises snapshots. Registration takes a lock and
/// is expected at construction time; the returned pointers stay valid for
/// the registry's lifetime, and updating through them is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);

  /// Returns the histogram registered under `name`, creating it on first use.
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot TakeSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<LatencyHistogram>>>
      histograms_;
};

}  // namespace hpm

#endif  // HPM_COMMON_METRICS_H_
