#include "common/fault_injection.h"

namespace hpm {

const char* const kKnownFaultSites[] = {
    "core/pattern_lookup",  // ForwardQuery/BackwardQuery pattern-side answer
    "core/train",           // Train / WithNewHistory model (re)build
    "io/atomic_write",      // after temp file written, before atomic rename
    "io/atomic_write_data",  // mid-fwrite of the temp file (torn prefix)
    "io/atomic_write_sync",  // fsync of the temp file (EIO/ENOSPC model)
    "wal/append",           // journal record write (leaves a torn prefix)
    "wal/sync",             // journal fdatasync per the sync policy
    "wal/rotate",           // segment rollover at snapshot start
    "wal/retire",           // covered-segment deletion after commit
    "store/save_object",    // per-object trajectory/model persistence
    "store/save_manifest",  // manifest write for the new generation
    "store/save_commit",    // CURRENT pointer swap (the commit point)
    "store/load_read",      // per-file read during store load
    "net/accept",           // accept(2) on the serving socket
    "net/send",             // frame send: ships half the frame, then closes
    "net/recv",             // frame receive (connection-reset model)
    "repl/fetch",           // primary-side replication byte-range read
    "repl/apply",           // replica-side journal record application
    "rebuild/mine",         // drift-triggered rebuild: before mining
    "rebuild/freeze",       // rebuild: after mining, before the frozen
                            // model would be handed to the publish step
    "rebuild/publish",      // rebuild: under the lock, before the swap
    // Per-shard family: the literal sites are "server/shard_query:0",
    // "server/shard_query:1", ... (ShardQueryFaultSite(shard) in
    // server/object_store.h). Arming one fails that shard's share of
    // every fan-out query — the circuit-breaker kill switch.
    "server/shard_query:<shard>",
};
const int kNumKnownFaultSites =
    static_cast<int>(sizeof(kKnownFaultSites) / sizeof(kKnownFaultSites[0]));

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.armed = true;
  state.rule = std::move(rule);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) {
    it->second.armed = false;
    it->second.rule = FaultRule();
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, state] : sites_) {
    state.calls = 0;
    state.fires = 0;
  }
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Random(seed);
}

Status FaultInjector::Hit(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  ++state.calls;
  if (!state.armed) return Status::OK();
  const FaultRule& rule = state.rule;
  if (rule.max_fires >= 0 && state.fires >= rule.max_fires) {
    return Status::OK();
  }
  bool fire = rule.always;
  if (!fire && rule.nth_call > 0) fire = state.calls == rule.nth_call;
  if (!fire && rule.from_nth_call > 0) fire = state.calls >= rule.from_nth_call;
  if (!fire && rule.probability > 0.0) fire = rng_.Bernoulli(rule.probability);
  if (!fire) return Status::OK();
  ++state.fires;
  std::string message = "injected fault at " + site;
  if (!rule.message.empty()) {
    message += ": ";
    message += rule.message;
  }
  return Status(rule.code, std::move(message));
}

int64_t FaultInjector::calls(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

int64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjector::Sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [site, state] : sites_) names.push_back(site);
  return names;
}

}  // namespace hpm
