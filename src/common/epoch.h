// Epoch-based reclamation (EBR) for read-mostly shared structures.
//
// The serving problem this solves: queries execute against immutable
// snapshot objects (per-object views, per-shard tables) that writers
// replace wholesale. Guarding every read with a shared_mutex makes the
// read path a cache-line ping-pong on the lock word; copying a
// shared_ptr per read makes it a contended refcount RMW. With epochs a
// reader pins the current epoch once (one uncontended store to its own
// cache line), loads raw snapshot pointers with plain acquire loads, and
// unpins when done — the read path takes no lock and touches no shared
// writable line. Writers unlink a snapshot (atomic pointer swap), then
// Retire() it; the object sits on a limbo list until every reader that
// could possibly still hold the old pointer has unpinned, and only then
// is it freed.
//
// Algorithm (classic global-epoch EBR, with the pin re-check loop):
//   * A global epoch counter G starts at 1 and only grows.
//   * Each pinned reader occupies a slot holding the epoch it pinned at
//     (0 = free). Pin loops { e = G; slot = e; } until G is unchanged
//     after the slot store — the re-check closes the race with a
//     concurrent reclaimer that scanned slots before our store landed.
//   * Retire(p) records p on the limbo list stamped with the current G,
//     then (in auto mode) advances G and attempts reclamation.
//   * An entry stamped e may be freed once (a) G has advanced past e and
//     (b) every pinned slot holds an epoch > e. (a) guarantees any
//     reader pinning *after* the retirement synchronises with the
//     advance — a seq_cst RMW — and therefore observes the unlink that
//     preceded it, so it can never reach the retired object; (b) says
//     every reader from before has left.
//
// Memory-order notes: slot stores and the G advance are seq_cst so the
// "scan missed my pin ⇒ my re-check sees the advance" disjunction holds
// in the seq_cst total order. Snapshot pointers themselves only need
// release (publish) / acquire (read) as usual.
//
// Determinism for tests: construct with auto_reclaim = false and nothing
// is advanced or freed behind the test's back — Retire() only enqueues,
// and the test drives Advance()/TryReclaim() explicitly to replay any
// interleaving of pins, retirements and reclamation attempts.
//
// Capacity: the slot array is fixed (EpochOptions::max_readers). Pin()
// spin-yields when every slot is pinned, so sizing it at or above the
// peak number of concurrently pinned guards (queries in flight x lanes)
// keeps pinning wait-free in practice. Slots are cache-line padded; the
// default 256 slots cost 16 KiB.

#ifndef HPM_COMMON_EPOCH_H_
#define HPM_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"

namespace hpm {

/// EpochManager configuration.
struct EpochOptions {
  /// Reader slots — the cap on concurrently pinned guards. Pin()
  /// spin-yields (never fails) when all are taken.
  size_t max_readers = 256;

  /// Auto mode: every Retire() advances the epoch and attempts
  /// reclamation, so limbo occupancy stays bounded by reader residency.
  /// With false, Retire() only enqueues and the caller owns the
  /// Advance()/TryReclaim() schedule (deterministic unit tests).
  bool auto_reclaim = true;

  /// Optional monotonic counters (may each be null): total pins, total
  /// retirements, total frees. The store wires these to the
  /// epoch.pinned / epoch.retired / epoch.freed metrics.
  Counter* pinned_counter = nullptr;
  Counter* retired_counter = nullptr;
  Counter* freed_counter = nullptr;
};

/// Point-in-time view of the manager (epoch_test asserts on these; the
/// store exposes them through its metrics).
struct EpochStats {
  uint64_t epoch = 0;           ///< Current global epoch.
  uint64_t pinned_readers = 0;  ///< Slots currently pinned.
  uint64_t retired_total = 0;   ///< Objects ever handed to Retire().
  uint64_t freed_total = 0;     ///< Objects whose deleter has run.
  uint64_t limbo_size = 0;      ///< retired_total - freed_total.
};

/// See the file comment. All members are thread-safe unless noted.
class EpochManager {
 public:
  explicit EpochManager(EpochOptions options = {});

  /// Frees everything still in limbo. No guard may outlive the manager
  /// (checked).
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII pin. Movable so it can live in per-query context objects; a
  /// moved-from guard is unpinned. Destruction (or Release()) unpins.
  /// A guard must be released on the thread topology the caller likes —
  /// the manager only cares that the slot store is atomic — but one
  /// guard must never be used from two threads at once.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept
        : manager_(other.manager_), slot_(other.slot_) {
      other.manager_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        slot_ = other.slot_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    ~Guard() { Release(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    bool pinned() const { return manager_ != nullptr; }

    /// The epoch this guard pinned at (0 when unpinned).
    uint64_t epoch() const;

    /// Unpins early; idempotent.
    void Release();

   private:
    friend class EpochManager;
    Guard(EpochManager* manager, uint32_t slot)
        : manager_(manager), slot_(slot) {}

    EpochManager* manager_ = nullptr;
    uint32_t slot_ = 0;
  };

  /// Pins the current epoch. Every snapshot pointer loaded while the
  /// guard is held stays valid until the guard is released.
  Guard Pin();

  /// Hands `object` to the manager for deferred destruction; the caller
  /// must already have unlinked it (no new reader can find it). The
  /// deleter runs on whichever thread performs the reclaiming
  /// TryReclaim() — or on the destructing thread for leftovers.
  void Retire(void* object, void (*deleter)(void*));

  /// Typed convenience: retires `object`, deleting it as a T (T may be
  /// const-qualified — retired snapshots usually are).
  template <typename T>
  void Retire(T* object) {
    Retire(const_cast<void*>(static_cast<const void*>(object)),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Bumps the global epoch; returns the new value. (Auto mode calls
  /// this on every Retire; exposed for deterministic schedules.)
  uint64_t Advance();

  /// Frees every limbo entry whose epoch is both behind the global epoch
  /// and behind every pinned reader. Returns how many were freed.
  size_t TryReclaim();

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  EpochStats stats() const;

 private:
  /// One reader slot: 0 = free, otherwise the pinned epoch. Padded so
  /// two readers never share a line.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};
  };

  struct LimboEntry {
    uint64_t epoch = 0;
    void* object = nullptr;
    void (*deleter)(void*) = nullptr;
  };

  /// Smallest epoch any pinned reader holds, and the global epoch,
  /// combined into the reclamation bound: entries below it are free-able.
  uint64_t ReclaimBound() const;

  EpochOptions options_;
  std::atomic<uint64_t> global_epoch_{1};
  std::unique_ptr<Slot[]> slots_;
  /// One past the highest slot index ever pinned — bounds the scan so a
  /// big max_readers doesn't tax every reclaim.
  std::atomic<uint32_t> slot_watermark_{0};

  std::mutex limbo_mutex_;
  std::vector<LimboEntry> limbo_;

  std::atomic<uint64_t> pinned_readers_{0};
  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> freed_total_{0};
};

}  // namespace hpm

#endif  // HPM_COMMON_EPOCH_H_
