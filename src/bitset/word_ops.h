// Word-view primitives: the branch-light kernels every signature
// predicate in the system reduces to.
//
// A "word view" is a pointer to packed 64-bit words plus a word count —
// either a DynamicBitset's storage or one entry's block inside the
// FrozenTpt key arena. Both the mutable TPT path (via DynamicBitset /
// PatternKey) and the frozen arena scan call these same functions, so
// the Intersect/Contain semantics cannot drift between the two layouts.
//
// The loops accumulate over the whole run instead of early-exiting per
// word: for the short runs pattern keys produce (1–16 words) the
// accumulate form compiles to straight-line vectorizable code, and it is
// what the frozen scan relies on for throughput.

#ifndef HPM_BITSET_WORD_OPS_H_
#define HPM_BITSET_WORD_OPS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace hpm::wordops {

/// True when the two runs share at least one set bit — the kernel under
/// DynamicBitset::AnyCommon and both PatternKey Intersect flavours.
inline bool AnyCommon(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc |= a[i] & b[i];
  return acc != 0;
}

/// True when every bit set in `b` is also set in `a` — the kernel under
/// DynamicBitset::Contains and PatternKey::ContainsKey.
inline bool Contains(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t missing = 0;
  for (size_t i = 0; i < n; ++i) missing |= b[i] & ~a[i];
  return missing == 0;
}

/// Number of set bits across the run (the paper's Size).
inline size_t Popcount(const uint64_t* a, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i]));
  }
  return total;
}

/// Number of bits set in `a` but not in `b` (the paper's Difference).
inline size_t DifferenceCount(const uint64_t* a, const uint64_t* b,
                              size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a[i] & ~b[i]));
  }
  return total;
}

}  // namespace hpm::wordops

#endif  // HPM_BITSET_WORD_OPS_H_
