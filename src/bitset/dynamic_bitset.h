// Resizable bitmap: the substrate for TPT pattern keys (paper §V).
//
// Pattern keys are variable-length signatures (one bit per frequent region
// plus one bit per consequence time offset), so std::bitset's fixed size
// does not fit; this is a word-packed dynamic equivalent with the bitwise
// operations the signature tree needs.

#ifndef HPM_BITSET_DYNAMIC_BITSET_H_
#define HPM_BITSET_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpm {

/// Fixed-length (per instance) bitmap over size() bits, packed into
/// 64-bit words. Bit positions are 0-based; position 0 is the least
/// significant bit, which matches the paper's right-to-left numbering of
/// '1's in a premise key (Property 1).
class DynamicBitset {
 public:
  /// Creates an empty bitset (size 0).
  DynamicBitset() = default;

  /// Creates `size` bits, all zero.
  explicit DynamicBitset(size_t size);

  /// Parses a binary string, e.g. "00101" — leftmost character is the
  /// most significant bit, as the paper prints keys. Characters other
  /// than '0'/'1' are a programming error.
  static DynamicBitset FromString(const std::string& bits);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Sets bit `pos` to `value`. Precondition: pos < size().
  void Set(size_t pos, bool value = true);

  /// Reads bit `pos`. Precondition: pos < size().
  bool Test(size_t pos) const;

  /// Number of '1' bits — the paper's Size(pk).
  size_t Count() const;

  /// True if no bit is set.
  bool None() const { return Count() == 0; }

  /// True if at least one bit is set.
  bool Any() const { return !None(); }

  /// Position of the highest set bit, or -1 when none is set.
  int HighestSetBit() const;

  /// Positions of all set bits, ascending.
  std::vector<size_t> SetBits() const;

  /// Grows (or shrinks) to `size` bits; new bits are zero, truncated bits
  /// are discarded.
  void Resize(size_t size);

  /// Zeroes every bit, keeping size() and capacity. Lets scratch buffers
  /// be reused across queries without reallocating.
  void Reset();

  /// In-place bitwise ops. Preconditions: same size().
  DynamicBitset& operator&=(const DynamicBitset& o);
  DynamicBitset& operator|=(const DynamicBitset& o);
  DynamicBitset& operator^=(const DynamicBitset& o);

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b) {
    a ^= b;
    return a;
  }

  bool operator==(const DynamicBitset& o) const;
  bool operator!=(const DynamicBitset& o) const { return !(*this == o); }

  /// True if every bit set in `other` is also set here
  /// (this & other == other). Precondition: same size().
  bool Contains(const DynamicBitset& other) const;

  /// True if this and `other` share at least one set bit.
  /// Precondition: same size().
  bool AnyCommon(const DynamicBitset& other) const;

  /// Number of bits set here but not in `other` — the paper's
  /// Difference(pk1, pk2) = Size(pk1 ^ (pk1 & pk2)).
  /// Precondition: same size().
  size_t DifferenceCount(const DynamicBitset& other) const;

  /// ---- Word view -----------------------------------------------------
  /// Direct read access to the packed 64-bit words, least significant
  /// word first. Bits at positions >= size() in the last word are always
  /// zero (class invariant), so word-wise consumers — the FrozenTpt key
  /// arena, the wordops predicates — can scan whole words without
  /// masking. The pointer is valid until the next Resize.
  const uint64_t* words() const { return words_.data(); }

  /// Number of 64-bit words backing size() bits.
  size_t num_words() const { return words_.size(); }

  /// Rebuilds a bitset of `bits` bits from `num_words` packed words (as
  /// produced by words()/num_words()). `num_words` must be exactly the
  /// word count for `bits`, and bits at positions >= `bits` in the last
  /// word must be zero; both are programming errors otherwise — callers
  /// deserialising untrusted bytes validate first (the FrozenTpt parser
  /// does).
  static DynamicBitset FromWords(const uint64_t* words, size_t num_words,
                                 size_t bits);

  /// Binary string, most significant bit first (paper's printing order).
  std::string ToString() const;

  /// Bytes of heap memory used by the word array (for the Fig. 11a
  /// storage accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  /// Zeroes bits at positions >= size_ in the last word.
  void ClearUnusedBits();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace hpm

#endif  // HPM_BITSET_DYNAMIC_BITSET_H_
