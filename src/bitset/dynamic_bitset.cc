#include "bitset/dynamic_bitset.h"

#include <bit>

#include "bitset/word_ops.h"
#include "common/status.h"

namespace hpm {

namespace {
constexpr size_t kBitsPerWord = 64;

size_t WordsFor(size_t bits) {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}
}  // namespace

DynamicBitset::DynamicBitset(size_t size)
    : size_(size), words_(WordsFor(size), 0) {}

DynamicBitset DynamicBitset::FromString(const std::string& bits) {
  DynamicBitset b(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1 - i];
    HPM_CHECK(c == '0' || c == '1');
    if (c == '1') b.Set(i);
  }
  return b;
}

void DynamicBitset::Set(size_t pos, bool value) {
  HPM_CHECK(pos < size_);
  const uint64_t mask = uint64_t{1} << (pos % kBitsPerWord);
  if (value) {
    words_[pos / kBitsPerWord] |= mask;
  } else {
    words_[pos / kBitsPerWord] &= ~mask;
  }
}

bool DynamicBitset::Test(size_t pos) const {
  HPM_CHECK(pos < size_);
  return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1;
}

DynamicBitset DynamicBitset::FromWords(const uint64_t* words,
                                       size_t num_words, size_t bits) {
  HPM_CHECK(num_words == WordsFor(bits));
  DynamicBitset b(bits);
  for (size_t i = 0; i < num_words; ++i) b.words_[i] = words[i];
  // Tail bits must already be clear; FromWords trusts its caller, but the
  // invariant is cheap to assert.
  const size_t used = bits % kBitsPerWord;
  if (used != 0 && num_words > 0) {
    HPM_CHECK((b.words_.back() & ~((uint64_t{1} << used) - 1)) == 0);
  }
  return b;
}

size_t DynamicBitset::Count() const {
  return wordops::Popcount(words_.data(), words_.size());
}

int DynamicBitset::HighestSetBit() const {
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != 0) {
      return static_cast<int>(i * kBitsPerWord + kBitsPerWord - 1 -
                              static_cast<size_t>(std::countl_zero(words_[i])));
    }
  }
  return -1;
}

std::vector<size_t> DynamicBitset::SetBits() const {
  std::vector<size_t> positions;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      positions.push_back(i * kBitsPerWord + static_cast<size_t>(bit));
      w &= w - 1;
    }
  }
  return positions;
}

void DynamicBitset::Resize(size_t size) {
  size_ = size;
  words_.resize(WordsFor(size), 0);
  ClearUnusedBits();
}

void DynamicBitset::Reset() {
  std::fill(words_.begin(), words_.end(), uint64_t{0});
}

void DynamicBitset::ClearUnusedBits() {
  const size_t used = size_ % kBitsPerWord;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << used) - 1;
  }
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& o) {
  HPM_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& o) {
  HPM_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& o) {
  HPM_CHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

bool DynamicBitset::operator==(const DynamicBitset& o) const {
  return size_ == o.size_ && words_ == o.words_;
}

bool DynamicBitset::Contains(const DynamicBitset& other) const {
  HPM_CHECK(size_ == other.size_);
  return wordops::Contains(words_.data(), other.words_.data(),
                           words_.size());
}

bool DynamicBitset::AnyCommon(const DynamicBitset& other) const {
  HPM_CHECK(size_ == other.size_);
  return wordops::AnyCommon(words_.data(), other.words_.data(),
                            words_.size());
}

size_t DynamicBitset::DifferenceCount(const DynamicBitset& other) const {
  HPM_CHECK(size_ == other.size_);
  return wordops::DifferenceCount(words_.data(), other.words_.data(),
                                  words_.size());
}

std::string DynamicBitset::ToString() const {
  std::string s(size_, '0');
  for (size_t i = 0; i < size_; ++i) {
    if (Test(i)) s[size_ - 1 - i] = '1';
  }
  return s;
}

size_t DynamicBitset::Hash() const {
  // FNV-1a over the words plus the size.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(size_);
  for (uint64_t w : words_) mix(w);
  return static_cast<size_t>(h);
}

}  // namespace hpm
