// TPR-tree: a time-parameterized R-tree over linearly moving points —
// the §II-A access-method family (Šaltenis et al., SIGMOD'00) that HPM
// is positioned against. It answers predictive *range* queries ("which
// objects will be inside R at future time tq?") by indexing each
// object's current position and velocity under time-parameterized
// bounding rectangles whose edges move with the children's velocity
// extremes.
//
// This implementation is a snapshot index: all points share one
// reference time (the fleet's "now"), insertion minimises the enlarged
// area at the midpoint of the configured horizon (the classic
// integrated-area heuristic collapsed to its midpoint approximation),
// and queries expand every rectangle to the query time. Like every
// member of its family it is exact for linear motion and silently wrong
// for objects that turn — which is precisely the contrast the
// ablation_range_queries bench measures against HPM.

#ifndef HPM_TPR_TPR_TREE_H_
#define HPM_TPR_TPR_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "geo/bounding_box.h"
#include "geo/trajectory.h"

namespace hpm {

/// One indexed object: position at the snapshot's reference time plus a
/// constant velocity (units per timestamp).
struct MovingPoint {
  int64_t id = 0;
  Point position;
  Point velocity;

  /// Extrapolated location at `t` relative to the reference time.
  Point PositionAt(Timestamp reference_time, Timestamp t) const {
    return position + velocity * static_cast<double>(t - reference_time);
  }
};

/// A time-parameterized bounding rectangle: spatial bounds at the
/// reference time plus velocity bounds; conservative expansion to any
/// future time.
struct TpBoundingBox {
  BoundingBox box;          ///< Bounds at the reference time.
  double min_vx = 0, max_vx = 0;
  double min_vy = 0, max_vy = 0;

  /// Extends to cover a moving point.
  void Extend(const MovingPoint& p);

  /// Extends to cover another TPBR.
  void Extend(const TpBoundingBox& other);

  /// The (conservative) spatial bounds `dt` timestamps after the
  /// reference time. Precondition: dt >= 0 and non-empty box.
  BoundingBox BoxAt(double dt) const;

  /// True if every point/velocity bound of `other` is inside this.
  bool Covers(const TpBoundingBox& other) const;

  bool IsEmpty() const { return box.IsEmpty(); }
};

/// Per-query instrumentation.
struct TprSearchStats {
  size_t nodes_visited = 0;
  size_t entries_tested = 0;
};

/// Snapshot TPR-tree.
class TprTree {
 public:
  struct Options {
    int max_node_entries = 16;
    int min_node_entries = 6;

    /// Insertion optimises node area at reference_time + horizon/2.
    Timestamp horizon = 60;
  };

  /// Creates an empty snapshot index anchored at `reference_time`.
  TprTree(Timestamp reference_time, Options options);
  explicit TprTree(Timestamp reference_time);
  ~TprTree();
  TprTree(TprTree&&) noexcept;
  TprTree& operator=(TprTree&&) noexcept;
  TprTree(const TprTree&) = delete;
  TprTree& operator=(const TprTree&) = delete;

  Timestamp reference_time() const { return reference_time_; }

  /// Indexes one moving point.
  Status Insert(MovingPoint point);

  /// All points whose extrapolated position at `tq` lies inside
  /// `range`. `tq` must be at or after the reference time.
  StatusOr<std::vector<const MovingPoint*>> RangeQuery(
      const BoundingBox& range, Timestamp tq,
      TprSearchStats* stats = nullptr) const;

  /// The `n` points whose extrapolated positions at `tq` are nearest to
  /// `target`, nearest first (predictive k-NN, best-first search with
  /// TPBR distance bounds). `tq` must be at or after the reference
  /// time; n >= 1.
  StatusOr<std::vector<const MovingPoint*>> NearestNeighbors(
      const Point& target, Timestamp tq, int n,
      TprSearchStats* stats = nullptr) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int Height() const;

  /// Structural self-check: uniform leaf depth, fill bounds, and TPBR
  /// containment on every internal entry.
  Status CheckInvariants() const;

  struct Node;

 private:
  Node* ChooseLeaf(const MovingPoint& point, std::vector<Node*>* path,
                   std::vector<int>* entry_indices) const;
  std::unique_ptr<Node> SplitNode(Node* node);

  Timestamp reference_time_;
  Options options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace hpm

#endif  // HPM_TPR_TPR_TREE_H_
