#include "tpr/tpr_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace hpm {

void TpBoundingBox::Extend(const MovingPoint& p) {
  if (box.IsEmpty()) {
    box.Extend(p.position);
    min_vx = max_vx = p.velocity.x;
    min_vy = max_vy = p.velocity.y;
    return;
  }
  box.Extend(p.position);
  min_vx = std::min(min_vx, p.velocity.x);
  max_vx = std::max(max_vx, p.velocity.x);
  min_vy = std::min(min_vy, p.velocity.y);
  max_vy = std::max(max_vy, p.velocity.y);
}

void TpBoundingBox::Extend(const TpBoundingBox& other) {
  if (other.IsEmpty()) return;
  if (box.IsEmpty()) {
    *this = other;
    return;
  }
  box.Extend(other.box);
  min_vx = std::min(min_vx, other.min_vx);
  max_vx = std::max(max_vx, other.max_vx);
  min_vy = std::min(min_vy, other.min_vy);
  max_vy = std::max(max_vy, other.max_vy);
}

BoundingBox TpBoundingBox::BoxAt(double dt) const {
  HPM_CHECK(!box.IsEmpty());
  HPM_CHECK(dt >= 0.0);
  const Point lo{box.min().x + min_vx * dt, box.min().y + min_vy * dt};
  const Point hi{box.max().x + max_vx * dt, box.max().y + max_vy * dt};
  return BoundingBox(lo, hi);
}

bool TpBoundingBox::Covers(const TpBoundingBox& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return box.min().x <= other.box.min().x &&
         box.min().y <= other.box.min().y &&
         box.max().x >= other.box.max().x &&
         box.max().y >= other.box.max().y && min_vx <= other.min_vx &&
         max_vx >= other.max_vx && min_vy <= other.min_vy &&
         max_vy >= other.max_vy;
}

struct TprTree::Node {
  bool is_leaf = true;
  std::vector<MovingPoint> points;                 // Leaf payload.
  std::vector<TpBoundingBox> boxes;                // Internal payload.
  std::vector<std::unique_ptr<Node>> children;

  int NumEntries() const {
    return is_leaf ? static_cast<int>(points.size())
                   : static_cast<int>(children.size());
  }

  TpBoundingBox EntryBox(int i) const {
    if (is_leaf) {
      TpBoundingBox b;
      b.Extend(points[static_cast<size_t>(i)]);
      return b;
    }
    return boxes[static_cast<size_t>(i)];
  }

  TpBoundingBox UnionBox() const {
    TpBoundingBox u;
    for (int i = 0; i < NumEntries(); ++i) u.Extend(EntryBox(i));
    return u;
  }
};

TprTree::TprTree(Timestamp reference_time, Options options)
    : reference_time_(reference_time), options_(options) {
  HPM_CHECK(options_.max_node_entries >= 4);
  HPM_CHECK(options_.min_node_entries >= 2);
  HPM_CHECK(options_.min_node_entries * 2 <= options_.max_node_entries + 1);
  HPM_CHECK(options_.horizon >= 0);
  root_ = std::make_unique<Node>();
}

TprTree::TprTree(Timestamp reference_time)
    : TprTree(reference_time, Options{}) {}

TprTree::~TprTree() = default;
TprTree::TprTree(TprTree&&) noexcept = default;
TprTree& TprTree::operator=(TprTree&&) noexcept = default;

namespace {

double AreaAt(const TpBoundingBox& b, double dt) {
  return b.IsEmpty() ? 0.0 : b.BoxAt(dt).Area();
}

}  // namespace

TprTree::Node* TprTree::ChooseLeaf(const MovingPoint& point,
                                   std::vector<Node*>* path,
                                   std::vector<int>* entry_indices) const {
  // Enlargement is evaluated at the midpoint of the horizon — the
  // standard collapse of the TPR-tree's integrated-area objective.
  const double dt = static_cast<double>(options_.horizon) / 2.0;
  Node* node = root_.get();
  while (!node->is_leaf) {
    const int n = node->NumEntries();
    HPM_CHECK(n > 0);
    int best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      TpBoundingBox enlarged = node->boxes[static_cast<size_t>(i)];
      enlarged.Extend(point);
      const double before =
          AreaAt(node->boxes[static_cast<size_t>(i)], dt);
      const double after = AreaAt(enlarged, dt);
      const double enlargement = after - before;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && before < best_area)) {
        best_enlargement = enlargement;
        best_area = before;
        best = i;
      }
    }
    path->push_back(node);
    entry_indices->push_back(best);
    node = node->children[static_cast<size_t>(best)].get();
  }
  return node;
}

std::unique_ptr<TprTree::Node> TprTree::SplitNode(Node* node) {
  const int n = node->NumEntries();
  HPM_CHECK(n > options_.max_node_entries);
  const double dt = static_cast<double>(options_.horizon) / 2.0;

  // Quadratic seeds: the pair whose combined midpoint-time rectangle
  // wastes the most area.
  int seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      TpBoundingBox both = node->EntryBox(i);
      both.Extend(node->EntryBox(j));
      const double waste = AreaAt(both, dt) - AreaAt(node->EntryBox(i), dt) -
                           AreaAt(node->EntryBox(j), dt);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  TpBoundingBox box_a = node->EntryBox(seed_a);
  TpBoundingBox box_b = node->EntryBox(seed_b);
  std::vector<int> group_a{seed_a}, group_b{seed_b};
  std::vector<int> rest;
  for (int i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(i);
  }
  for (size_t r = 0; r < rest.size(); ++r) {
    const int remaining = static_cast<int>(rest.size() - r);
    const int i = rest[r];
    bool to_a;
    if (static_cast<int>(group_a.size()) + remaining ==
        options_.min_node_entries) {
      to_a = true;
    } else if (static_cast<int>(group_b.size()) + remaining ==
               options_.min_node_entries) {
      to_a = false;
    } else {
      TpBoundingBox grown_a = box_a;
      grown_a.Extend(node->EntryBox(i));
      TpBoundingBox grown_b = box_b;
      grown_b.Extend(node->EntryBox(i));
      const double cost_a = AreaAt(grown_a, dt) - AreaAt(box_a, dt);
      const double cost_b = AreaAt(grown_b, dt) - AreaAt(box_b, dt);
      if (cost_a != cost_b) {
        to_a = cost_a < cost_b;
      } else {
        to_a = group_a.size() <= group_b.size();
      }
    }
    if (to_a) {
      group_a.push_back(i);
      box_a.Extend(node->EntryBox(i));
    } else {
      group_b.push_back(i);
      box_b.Extend(node->EntryBox(i));
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    std::vector<MovingPoint> kept;
    for (int i : group_a) kept.push_back(node->points[static_cast<size_t>(i)]);
    for (int i : group_b) {
      sibling->points.push_back(node->points[static_cast<size_t>(i)]);
    }
    node->points = std::move(kept);
  } else {
    std::vector<TpBoundingBox> kept_boxes;
    std::vector<std::unique_ptr<Node>> kept_children;
    for (int i : group_a) {
      kept_boxes.push_back(node->boxes[static_cast<size_t>(i)]);
      kept_children.push_back(
          std::move(node->children[static_cast<size_t>(i)]));
    }
    for (int i : group_b) {
      sibling->boxes.push_back(node->boxes[static_cast<size_t>(i)]);
      sibling->children.push_back(
          std::move(node->children[static_cast<size_t>(i)]));
    }
    node->boxes = std::move(kept_boxes);
    node->children = std::move(kept_children);
  }
  return sibling;
}

Status TprTree::Insert(MovingPoint point) {
  std::vector<Node*> path;
  std::vector<int> entry_indices;
  Node* leaf = ChooseLeaf(point, &path, &entry_indices);
  leaf->points.push_back(point);
  ++size_;

  for (size_t level = 0; level < path.size(); ++level) {
    path[level]->boxes[static_cast<size_t>(entry_indices[level])].Extend(
        point);
  }

  Node* node = leaf;
  int level = static_cast<int>(path.size()) - 1;
  while (node->NumEntries() > options_.max_node_entries) {
    std::unique_ptr<Node> sibling = SplitNode(node);
    if (level < 0) {
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->boxes.push_back(node->UnionBox());
      new_root->boxes.push_back(sibling->UnionBox());
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      root_ = std::move(new_root);
      break;
    }
    Node* parent = path[static_cast<size_t>(level)];
    const int idx = entry_indices[static_cast<size_t>(level)];
    parent->boxes[static_cast<size_t>(idx)] = node->UnionBox();
    parent->boxes.push_back(sibling->UnionBox());
    parent->children.push_back(std::move(sibling));
    node = parent;
    --level;
  }
  return Status::OK();
}

namespace {

void SearchNode(const TprTree::Node* node, const BoundingBox& range,
                Timestamp reference_time, Timestamp tq,
                std::vector<const MovingPoint*>* out,
                TprSearchStats* stats) {
  if (stats != nullptr) ++stats->nodes_visited;
  const double dt = static_cast<double>(tq - reference_time);
  if (node->is_leaf) {
    for (const MovingPoint& p : node->points) {
      if (stats != nullptr) ++stats->entries_tested;
      if (range.Contains(p.PositionAt(reference_time, tq))) {
        out->push_back(&p);
      }
    }
    return;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (stats != nullptr) ++stats->entries_tested;
    if (node->boxes[i].BoxAt(dt).Intersects(range)) {
      SearchNode(node->children[i].get(), range, reference_time, tq, out,
                 stats);
    }
  }
}

}  // namespace

StatusOr<std::vector<const MovingPoint*>> TprTree::RangeQuery(
    const BoundingBox& range, Timestamp tq, TprSearchStats* stats) const {
  if (range.IsEmpty()) {
    return Status::InvalidArgument("query range is empty");
  }
  if (tq < reference_time_) {
    return Status::InvalidArgument(
        "query time precedes the snapshot reference time");
  }
  std::vector<const MovingPoint*> out;
  if (size_ == 0) return out;
  SearchNode(root_.get(), range, reference_time_, tq, &out, stats);
  return out;
}

StatusOr<std::vector<const MovingPoint*>> TprTree::NearestNeighbors(
    const Point& target, Timestamp tq, int n,
    TprSearchStats* stats) const {
  if (tq < reference_time_) {
    return Status::InvalidArgument(
        "query time precedes the snapshot reference time");
  }
  if (n < 1) {
    return Status::InvalidArgument("n must be >= 1");
  }
  std::vector<const MovingPoint*> result;
  if (size_ == 0) return result;

  const double dt = static_cast<double>(tq - reference_time_);

  // Best-first search: a priority queue over nodes (keyed by the min
  // distance from `target` to the node's TPBR at tq) and points (their
  // exact distance). Nodes are only expanded while they could still
  // beat the current n-th best point.
  struct QueueItem {
    double distance;
    const Node* node;          // nullptr => point entry.
    const MovingPoint* point;  // Set when node == nullptr.
  };
  const auto worse = [](const QueueItem& a, const QueueItem& b) {
    return a.distance > b.distance;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(worse)>
      queue(worse);
  queue.push({0.0, root_.get(), nullptr});

  while (!queue.empty() && static_cast<int>(result.size()) < n) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      result.push_back(item.point);
      continue;
    }
    if (stats != nullptr) ++stats->nodes_visited;
    const Node* node = item.node;
    if (node->is_leaf) {
      for (const MovingPoint& p : node->points) {
        if (stats != nullptr) ++stats->entries_tested;
        queue.push({Distance(p.PositionAt(reference_time_, tq), target),
                    nullptr, &p});
      }
    } else {
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (stats != nullptr) ++stats->entries_tested;
        queue.push({node->boxes[i].BoxAt(dt).MinDistance(target),
                    node->children[i].get(), nullptr});
      }
    }
  }
  return result;
}

int TprTree::Height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++h;
    node = node->children[0].get();
  }
  return h;
}

namespace {

Status CheckTprNode(const TprTree::Node* node, bool is_root,
                    int min_entries, int max_entries, int depth,
                    int* leaf_depth) {
  const int n = node->NumEntries();
  if (n > max_entries) return Status::Internal("node overflow");
  if (!is_root && n < min_entries) return Status::Internal("node underflow");
  if (node->is_leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at different depths");
    }
    return Status::OK();
  }
  if (node->boxes.size() != node->children.size()) {
    return Status::Internal("boxes/children size mismatch");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const TpBoundingBox child_union = node->children[i]->UnionBox();
    if (!node->boxes[i].Covers(child_union)) {
      return Status::Internal("entry TPBR does not cover its subtree");
    }
    HPM_RETURN_IF_ERROR(CheckTprNode(node->children[i].get(), false,
                                     min_entries, max_entries, depth + 1,
                                     leaf_depth));
  }
  return Status::OK();
}

}  // namespace

Status TprTree::CheckInvariants() const {
  if (size_ == 0) return Status::OK();
  int leaf_depth = -1;
  return CheckTprNode(root_.get(), true, options_.min_node_entries,
                      options_.max_node_entries, 0, &leaf_depth);
}

}  // namespace hpm
