#include "baselines/markov.h"

#include <algorithm>
#include <cmath>

namespace hpm {

MarkovPredictor::MarkovPredictor(MarkovOptions options)
    : options_(options),
      cells_per_side_(std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::ceil(options.extent / options.cell_size)))) {}

int64_t MarkovPredictor::CellOf(const Point& p) const {
  const auto clamp_coord = [this](double v) {
    const int64_t c = static_cast<int64_t>(
        std::floor(v / options_.cell_size));
    return std::clamp<int64_t>(c, 0, cells_per_side_ - 1);
  };
  return clamp_coord(p.y) * cells_per_side_ + clamp_coord(p.x);
}

Point MarkovPredictor::CellCenter(int64_t cell) const {
  HPM_CHECK(cell >= 0 && cell < cells_per_side_ * cells_per_side_);
  const double cx = static_cast<double>(cell % cells_per_side_);
  const double cy = static_cast<double>(cell / cells_per_side_);
  return {(cx + 0.5) * options_.cell_size, (cy + 0.5) * options_.cell_size};
}

StatusOr<MarkovPredictor> MarkovPredictor::Train(
    const Trajectory& history, const MarkovOptions& options) {
  if (options.cell_size <= 0.0 || options.extent <= 0.0) {
    return Status::InvalidArgument(
        "cell_size and extent must be positive");
  }
  if (history.size() < 2) {
    return Status::FailedPrecondition(
        "Markov training needs at least 2 samples");
  }
  MarkovPredictor predictor(options);
  for (size_t i = 1; i < history.size(); ++i) {
    const int64_t from = predictor.CellOf(history.points()[i - 1]);
    const int64_t to = predictor.CellOf(history.points()[i]);
    ++predictor.transitions_[from][to];
  }
  return predictor;
}

double MarkovPredictor::TransitionProbability(int64_t from_cell,
                                              int64_t to_cell) const {
  const auto it = transitions_.find(from_cell);
  if (it == transitions_.end()) return 0.0;
  int total = 0;
  int hits = 0;
  for (const auto& [to, count] : it->second) {
    total += count;
    if (to == to_cell) hits = count;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

StatusOr<Point> MarkovPredictor::Predict(
    const std::vector<TimedPoint>& recent, Timestamp tq) const {
  if (recent.empty()) {
    return Status::InvalidArgument("recent movements are empty");
  }
  const Timestamp tc = recent.back().time;
  if (tq < tc) {
    return Status::InvalidArgument("query time precedes current time");
  }
  int64_t cell = CellOf(recent.back().location);
  for (Timestamp t = tc; t < tq; ++t) {
    const auto it = transitions_.find(cell);
    if (it == transitions_.end() || it->second.empty()) break;
    // Greedy: the most probable next cell.
    int best_count = -1;
    int64_t best_cell = cell;
    for (const auto& [to, count] : it->second) {
      if (count > best_count) {
        best_count = count;
        best_cell = to;
      }
    }
    cell = best_cell;
  }
  return CellCenter(cell);
}

}  // namespace hpm
