// Grid-cell Markov location predictor — the pattern-based baseline family
// the paper's related work discusses (§II-B, refs [8]/[14]): partition
// the space into cells, learn first-order transition statistics between
// consecutive timestamps, and predict by walking the most likely chain.
//
// The paper lists this family's deficiencies — accuracy is "considerably
// affected by the size of each cell" and there is no sensible answer at
// distant times — which the ablation_baselines bench reproduces.

#ifndef HPM_BASELINES_MARKOV_H_
#define HPM_BASELINES_MARKOV_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geo/trajectory.h"

namespace hpm {

/// Markov baseline parameters.
struct MarkovOptions {
  /// Side length of a grid cell. The knob the paper criticises.
  double cell_size = 500.0;

  /// Data-space extent (cells cover [0, extent]^2; outside locations
  /// clamp to the boundary cells).
  double extent = 10000.0;
};

/// First-order cell-transition predictor.
class MarkovPredictor {
 public:
  /// Counts cell-to-cell transitions over consecutive samples of
  /// `history`. Fails on invalid options or a history shorter than two
  /// samples.
  static StatusOr<MarkovPredictor> Train(const Trajectory& history,
                                         const MarkovOptions& options);

  /// Predicts the location at `tq`: starts from the cell of the last
  /// recent movement and greedily follows the most probable transition
  /// (tq - tc) times, returning the final cell's centre. A cell with no
  /// recorded outgoing transition absorbs the walk (the object is
  /// predicted to stay), which is this family's documented behaviour
  /// when no pattern applies.
  StatusOr<Point> Predict(const std::vector<TimedPoint>& recent,
                          Timestamp tq) const;

  /// Number of cells that have at least one outgoing transition.
  size_t NumActiveCells() const { return transitions_.size(); }

  /// Transition probability between two cell indices (0 when unseen).
  double TransitionProbability(int64_t from_cell, int64_t to_cell) const;

  /// Cell index of a location.
  int64_t CellOf(const Point& p) const;

  /// Centre of a cell index.
  Point CellCenter(int64_t cell) const;

 private:
  explicit MarkovPredictor(MarkovOptions options);

  MarkovOptions options_;
  int64_t cells_per_side_ = 0;
  /// from-cell -> (to-cell -> count).
  std::unordered_map<int64_t, std::unordered_map<int64_t, int>>
      transitions_;
};

}  // namespace hpm

#endif  // HPM_BASELINES_MARKOV_H_
