#include "core/similarity.h"

#include <cmath>

#include "common/status.h"

namespace hpm {

const char* WeightFunctionName(WeightFunction fn) {
  switch (fn) {
    case WeightFunction::kLinear:
      return "linear";
    case WeightFunction::kQuadratic:
      return "quadratic";
    case WeightFunction::kExponential:
      return "exponential";
    case WeightFunction::kFactorial:
      return "factorial";
  }
  return "unknown";
}

namespace {

double RawWeight(WeightFunction fn, int i) {
  switch (fn) {
    case WeightFunction::kLinear:
      return static_cast<double>(i);
    case WeightFunction::kQuadratic:
      return static_cast<double>(i) * static_cast<double>(i);
    case WeightFunction::kExponential:
      return std::exp2(static_cast<double>(i));
    case WeightFunction::kFactorial:
      return std::tgamma(static_cast<double>(i) + 1.0);
  }
  return 0.0;
}

}  // namespace

double PositionWeight(WeightFunction fn, int i, int size) {
  HPM_CHECK(i >= 1 && i <= size);
  double total = 0.0;
  for (int j = 1; j <= size; ++j) total += RawWeight(fn, j);
  return RawWeight(fn, i) / total;
}

double PremiseSimilarity(const DynamicBitset& rk, const DynamicBitset& rkq,
                         WeightFunction fn) {
  HPM_CHECK(rk.size() == rkq.size());
  const std::vector<size_t> bits = rk.SetBits();
  if (bits.empty()) return 0.0;
  const int size = static_cast<int>(bits.size());

  double total = 0.0;
  for (int j = 1; j <= size; ++j) total += RawWeight(fn, j);

  double similarity = 0.0;
  for (int i = 1; i <= size; ++i) {
    if (rkq.Test(bits[static_cast<size_t>(i - 1)])) {
      similarity += RawWeight(fn, i) / total;
    }
  }
  return similarity;
}

double ConsequenceSimilarity(Timestamp t, Timestamp tq, Timestamp t_eps) {
  HPM_CHECK(t_eps >= 0);
  const double distance = static_cast<double>(std::llabs(tq - t));
  const double sc = 1.0 - distance / static_cast<double>(t_eps + 1);
  return sc < 0.0 ? 0.0 : sc;
}

}  // namespace hpm
