#include "core/hybrid_predictor.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "core/exec_context.h"
#include "mining/offline_miner.h"
#include "mining/transaction.h"

namespace hpm {

HybridPredictor::AtomicQueryCounters&
HybridPredictor::AtomicQueryCounters::operator=(
    const AtomicQueryCounters& other) {
  forward_queries.store(other.forward_queries.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  backward_queries.store(
      other.backward_queries.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  pattern_answers.store(other.pattern_answers.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  motion_fallbacks.store(
      other.motion_fallbacks.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  degraded_answers.store(
      other.degraded_answers.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

QueryCounters HybridPredictor::AtomicQueryCounters::Snapshot() const {
  QueryCounters snapshot;
  snapshot.forward_queries = forward_queries.load(std::memory_order_relaxed);
  snapshot.backward_queries =
      backward_queries.load(std::memory_order_relaxed);
  snapshot.pattern_answers = pattern_answers.load(std::memory_order_relaxed);
  snapshot.motion_fallbacks =
      motion_fallbacks.load(std::memory_order_relaxed);
  snapshot.degraded_answers =
      degraded_answers.load(std::memory_order_relaxed);
  return snapshot;
}

QueryCounters HybridPredictor::counters() const {
  return counters_.Snapshot();
}

void HybridPredictor::ResetCounters() const {
  counters_ = AtomicQueryCounters{};
}

HybridPredictor::HybridPredictor(HybridPredictorOptions options,
                                 FrequentRegionSet regions,
                                 std::vector<TrajectoryPattern> patterns,
                                 KeyTables key_tables, FrozenTpt tpt)
    : options_(options),
      regions_(std::move(regions)),
      patterns_(std::move(patterns)),
      key_tables_(std::move(key_tables)),
      tpt_(std::move(tpt)) {}

StatusOr<std::unique_ptr<HybridPredictor>> HybridPredictor::Train(
    const Trajectory& history, const HybridPredictorOptions& options) {
  if (options.distant_threshold <= 0 ||
      options.distant_threshold >= options.regions.period) {
    return Status::InvalidArgument(
        "distant threshold d must satisfy 0 < d < period");
  }
  if (options.time_relaxation < 0) {
    return Status::InvalidArgument("time relaxation must be >= 0");
  }
  HPM_INJECT_FAULT("core/train");

  Stopwatch timer;

  // The one-shot pass: discovery -> transactions -> Apriori.
  StatusOr<OfflineMineResult> offline =
      MineOffline(history, options.regions, options.mining);
  if (!offline.ok()) return offline.status();
  FrequentRegionSet& region_set = offline->discovery.region_set;
  AprioriResult& mined = offline->mined;

  // Key tables and TPT bulk load.
  KeyTables tables = KeyTables::Build(region_set, mined.patterns);
  std::vector<IndexedPattern> indexed;
  indexed.reserve(mined.patterns.size());
  for (size_t i = 0; i < mined.patterns.size(); ++i) {
    const TrajectoryPattern& p = mined.patterns[i];
    indexed.push_back({tables.EncodePattern(p, region_set), p.confidence,
                       p.consequence, static_cast<int>(i)});
  }
  StatusOr<TptTree> tpt = TptTree::BulkLoad(std::move(indexed), options.tpt);
  if (!tpt.ok()) return tpt.status();
  const size_t builder_bytes = tpt->MemoryBytes();
  FrozenTpt frozen = FrozenTpt::Freeze(*tpt);

  auto predictor = std::unique_ptr<HybridPredictor>(new HybridPredictor(
      options, std::move(region_set), std::move(mined.patterns),
      std::move(tables), std::move(frozen)));
  predictor->summary_.num_sub_trajectories = offline->transactions.size();
  predictor->summary_.num_frequent_regions =
      predictor->regions_.NumRegions();
  predictor->summary_.num_patterns = predictor->patterns_.size();
  predictor->summary_.mining_stats = mined.stats;
  predictor->summary_.tpt_memory_bytes = builder_bytes;
  predictor->summary_.tpt_frozen_bytes = predictor->tpt_.MemoryBytes();
  predictor->summary_.tpt_height = predictor->tpt_.Height();
  predictor->summary_.train_seconds = timer.ElapsedSeconds();
  return predictor;
}

std::vector<int> HybridPredictor::QueryPremise(
    const PredictiveQuery& query) const {
  const std::vector<TimedPoint>& recent = query.recent_movements;
  if (options_.premise_horizon > 0 &&
      recent.size() > static_cast<size_t>(options_.premise_horizon)) {
    const std::vector<TimedPoint> window(
        recent.end() - options_.premise_horizon, recent.end());
    return MapMovementsToRegions(regions_, window,
                                 options_.region_match_slack);
  }
  return MapMovementsToRegions(regions_, recent,
                               options_.region_match_slack);
}

std::vector<Prediction> HybridPredictor::RankAndTake(
    std::vector<Prediction>* candidates, int k) const {
  std::sort(candidates->begin(), candidates->end(),
            [](const Prediction& a, const Prediction& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.confidence > b.confidence;
            });
  const size_t take =
      std::min(candidates->size(), static_cast<size_t>(std::max(k, 0)));
  return std::vector<Prediction>(candidates->begin(),
                                 candidates->begin() + take);
}

StatusOr<Prediction> HybridPredictor::MotionFunctionPredict(
    const PredictiveQuery& query) const {
  HPM_RETURN_IF_ERROR(ValidateQuery(query));
  Prediction prediction;
  prediction.source = PredictionSource::kMotionFunction;

  if (query.context != nullptr) query.context->CountMotionFit();
  RecursiveMotionFunction rmf(options_.rmf);
  if (rmf.Fit(query.recent_movements).ok()) {
    StatusOr<Point> p = rmf.Predict(query.query_time);
    if (p.ok()) {
      prediction.location = *p;
      return prediction;
    }
  }
  // Degenerate history (a single point): the best available answer is
  // the last known location.
  prediction.location = query.recent_movements.back().location;
  return prediction;
}

StatusOr<std::vector<Prediction>> HybridPredictor::DegradedPredict(
    const PredictiveQuery& query, DegradedReason reason) const {
  HPM_CHECK(reason != DegradedReason::kNone);
  HPM_RETURN_IF_ERROR(ValidateQuery(query));
  if (query.PredictionLength() < options_.distant_threshold) {
    counters_.forward_queries.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.backward_queries.fetch_add(1, std::memory_order_relaxed);
  }
  return DegradedAnswer(query, reason);
}

StatusOr<std::vector<Prediction>> HybridPredictor::DegradedAnswer(
    const PredictiveQuery& query, DegradedReason reason) const {
  counters_.motion_fallbacks.fetch_add(1, std::memory_order_relaxed);
  counters_.degraded_answers.fetch_add(1, std::memory_order_relaxed);
  StatusOr<Prediction> fallback = MotionFunctionPredict(query);
  if (!fallback.ok()) return fallback.status();
  fallback->degraded = reason;
  return std::vector<Prediction>{*fallback};
}

namespace {

/// Runs a PredictTask to completion sequentially — the non-batched entry
/// points are Step-to-done over the same machinery the batch executor
/// interleaves, which is what keeps the two bit-identical.
StatusOr<std::vector<Prediction>> RunToCompletion(
    const HybridPredictor& predictor, const PredictiveQuery& query,
    HybridPredictor::PredictTask::Route route) {
  // Scratch buffers come from the execution context's lane when the query
  // runs under the serving pipeline; direct callers get function-local
  // buffers and identical behaviour.
  PredictScratch local;
  PredictScratch& s = query.context != nullptr
                          ? query.context->lane(query.lane)
                          : local;
  HybridPredictor::PredictTask task;
  task.Start(predictor, query, &s, route);
  while (!task.Step(SIZE_MAX)) {
  }
  return task.TakeResult();
}

}  // namespace

void HybridPredictor::PredictTask::CompleteWith(
    StatusOr<std::vector<Prediction>> result) {
  result_ = std::move(result);
  stage_ = Stage::kDone;
  searching_ = false;
}

void HybridPredictor::PredictTask::MotionFallback() {
  // No qualified pattern: call the motion function (Algorithm 2 line 6 /
  // Algorithm 3 line 11).
  predictor_->counters_.motion_fallbacks.fetch_add(1,
                                                   std::memory_order_relaxed);
  StatusOr<Prediction> fallback = predictor_->MotionFunctionPredict(*query_);
  if (!fallback.ok()) {
    CompleteWith(fallback.status());
    return;
  }
  CompleteWith(std::vector<Prediction>{*fallback});
}

bool HybridPredictor::PredictTask::Start(const HybridPredictor& predictor,
                                         const PredictiveQuery& query,
                                         PredictScratch* scratch,
                                         Route route) {
  predictor_ = &predictor;
  query_ = &query;
  scratch_ = scratch;
  stage_ = Stage::kDone;
  searching_ = false;
  round_ = 0;

  const Status valid = ValidateQuery(query);
  if (!valid.ok()) {
    CompleteWith(valid);
    return true;
  }

  if (route == Route::kAuto) {
    route = query.PredictionLength() >= predictor.options_.distant_threshold
                ? Route::kBackward
                : Route::kForward;
  }
  if (route == Route::kForward) {
    predictor.counters_.forward_queries.fetch_add(1,
                                                  std::memory_order_relaxed);
  } else {
    predictor.counters_.backward_queries.fetch_add(1,
                                                   std::memory_order_relaxed);
  }

  // The pattern side is the expensive half; when it cannot be consulted
  // in time (or at all), serve the cheap RMF answer instead of failing.
  if (query.deadline.expired()) {
    CompleteWith(
        predictor.DegradedAnswer(query, DegradedReason::kDeadlineExceeded));
    return true;
  }
  if (!HPM_FAULT_HIT("core/pattern_lookup").ok()) {
    CompleteWith(
        predictor.DegradedAnswer(query, DegradedReason::kPatternUnavailable));
    return true;
  }

  period_ = predictor.regions_.period();
  tq_offset_ = query.query_time % period_;
  premise_ = predictor.QueryPremise(query);

  if (route == Route::kForward) {
    if (!premise_.empty() &&
        predictor.key_tables_
            .EncodeQueryInto(premise_, tq_offset_, &scratch_->query_key)
            .ok()) {
      search_stats_ = TptSearchStats{};
      cursor_ = predictor.tpt_.StartSearch(
          scratch_->query_key, SearchMode::kPremiseAndConsequence,
          &scratch_->tpt_hits, &search_stats_);
      if (!cursor_.done()) {
        searching_ = true;
        stage_ = Stage::kForwardSearch;
        return false;
      }
      FinishForwardSearch();  // Empty tree: the search is already over.
      return true;
    }
    MotionFallback();
    return true;
  }

  // Backward Query Processing (Algorithm 3): widen the consequence
  // interval until a pattern is found or its lower edge reaches the
  // current time.
  t_eps_ = std::max<Timestamp>(1, predictor.options_.time_relaxation);
  const double length = static_cast<double>(query.PredictionLength());
  premise_penalty_ = std::min(
      1.0,
      static_cast<double>(predictor.options_.distant_threshold) / length);
  RunBackwardRounds();
  return done();
}

bool HybridPredictor::PredictTask::Step(size_t max_entry_tests) {
  if (stage_ == Stage::kDone) return true;
  if (!cursor_.Step(max_entry_tests)) return false;
  searching_ = false;
  if (stage_ == Stage::kForwardSearch) {
    FinishForwardSearch();
  } else if (!EndBackwardRound(/*ran_search=*/true)) {
    RunBackwardRounds();
  }
  return done();
}

StatusOr<std::vector<Prediction>> HybridPredictor::PredictTask::TakeResult() {
  HPM_CHECK(stage_ == Stage::kDone);
  return std::move(result_);
}

void HybridPredictor::PredictTask::FinishForwardSearch() {
  if (query_->context != nullptr) query_->context->AddTptStats(search_stats_);
  PredictScratch& s = *scratch_;
  s.candidates.clear();
  s.candidates.reserve(s.tpt_hits.size());
  for (const IndexedPattern* hit : s.tpt_hits) {
    // Equation 2: Sp = Sr * c (premise similarity and confidence are
    // independent evidences -> compound probability).
    const double sr =
        PremiseSimilarity(hit->key.premise(), s.query_key.premise(),
                          predictor_->options_.weight_function);
    Prediction p;
    p.location = predictor_->regions_.Region(hit->consequence_region).center;
    p.uncertainty = predictor_->regions_.Region(hit->consequence_region).mbr;
    p.score = sr * hit->confidence;
    p.source = PredictionSource::kPattern;
    p.pattern_id = hit->pattern_id;
    p.consequence_region = hit->consequence_region;
    p.confidence = hit->confidence;
    s.candidates.push_back(p);
  }
  if (!s.candidates.empty()) {
    predictor_->counters_.pattern_answers.fetch_add(
        1, std::memory_order_relaxed);
    CompleteWith(predictor_->RankAndTake(&s.candidates, query_->k));
    return;
  }
  MotionFallback();
}

void HybridPredictor::PredictTask::EncodeBackwardRound() {
  PredictScratch& s = *scratch_;
  const Timestamp lo_raw = query_->query_time - round_ * t_eps_;
  const Timestamp hi_raw = query_->query_time + round_ * t_eps_;

  // Map the raw-time interval to period offsets (it may wrap), encoding
  // into the lane's key buffers.
  const Timestamp lo_off = ((lo_raw % period_) + period_) % period_;
  const Timestamp hi_off = ((hi_raw % period_) + period_) % period_;
  if (hi_raw - lo_raw >= period_) {
    predictor_->key_tables_.EncodeQueryIntervalInto(premise_, 0, period_ - 1,
                                                    &s.query_key);
  } else if (lo_off <= hi_off) {
    predictor_->key_tables_.EncodeQueryIntervalInto(premise_, lo_off, hi_off,
                                                    &s.query_key);
  } else {
    predictor_->key_tables_.EncodeQueryIntervalInto(premise_, lo_off,
                                                    period_ - 1,
                                                    &s.query_key);
    predictor_->key_tables_.EncodeQueryIntervalInto(premise_, 0, hi_off,
                                                    &s.interval_key);
    s.query_key.UnionWith(s.interval_key);
  }
}

void HybridPredictor::PredictTask::RunBackwardRounds() {
  for (;;) {
    ++round_;
    // Each widening step is another TPT search, so the deadline is
    // re-checked per round.
    if (round_ > 1 && query_->deadline.expired()) {
      CompleteWith(predictor_->DegradedAnswer(
          *query_, DegradedReason::kDeadlineExceeded));
      return;
    }
    EncodeBackwardRound();
    search_stats_ = TptSearchStats{};
    bool ran_search = false;
    if (scratch_->query_key.consequence().Any()) {
      cursor_ = predictor_->tpt_.StartSearch(scratch_->query_key,
                                             SearchMode::kConsequenceOnly,
                                             &scratch_->tpt_hits,
                                             &search_stats_);
      if (!cursor_.done()) {
        searching_ = true;
        stage_ = Stage::kBackwardSearch;
        return;  // Yield; Step() finishes the round.
      }
      ran_search = true;  // Empty tree: the search is already over.
    } else {
      scratch_->tpt_hits.clear();
    }
    if (EndBackwardRound(ran_search)) return;
  }
}

bool HybridPredictor::PredictTask::EndBackwardRound(bool ran_search) {
  if (ran_search && query_->context != nullptr) {
    query_->context->AddTptStats(search_stats_);
  }
  PredictScratch& s = *scratch_;
  if (!s.tpt_hits.empty()) {
    s.candidates.clear();
    s.candidates.reserve(s.tpt_hits.size());
    for (const IndexedPattern* hit : s.tpt_hits) {
      const int time_id = hit->key.consequence().HighestSetBit();
      const Timestamp t = predictor_->key_tables_.OffsetForTimeId(time_id);
      const double sc = ConsequenceSimilarity(t, tq_offset_, t_eps_);
      const double sr =
          PremiseSimilarity(hit->key.premise(), s.query_key.premise(),
                            predictor_->options_.weight_function);
      // Equation 5: Sp = (Sr * d / (tq - tc) + Sc) * c — the premise
      // evidence is penalised as the prediction length grows.
      Prediction p;
      p.location =
          predictor_->regions_.Region(hit->consequence_region).center;
      p.uncertainty =
          predictor_->regions_.Region(hit->consequence_region).mbr;
      p.score = (sr * premise_penalty_ + sc) * hit->confidence;
      p.source = PredictionSource::kPattern;
      p.pattern_id = hit->pattern_id;
      p.consequence_region = hit->consequence_region;
      p.confidence = hit->confidence;
      s.candidates.push_back(p);
    }
    predictor_->counters_.pattern_answers.fetch_add(
        1, std::memory_order_relaxed);
    CompleteWith(predictor_->RankAndTake(&s.candidates, query_->k));
    return true;
  }

  // No qualified pattern anywhere before the interval hit the current
  // time: fall back instead of widening further.
  if (query_->query_time - (round_ + 1) * t_eps_ <= query_->current_time) {
    MotionFallback();
    return true;
  }
  return false;
}

StatusOr<std::vector<Prediction>> HybridPredictor::ForwardQuery(
    const PredictiveQuery& query) const {
  return RunToCompletion(*this, query, PredictTask::Route::kForward);
}

StatusOr<std::vector<Prediction>> HybridPredictor::BackwardQuery(
    const PredictiveQuery& query) const {
  return RunToCompletion(*this, query, PredictTask::Route::kBackward);
}

StatusOr<std::vector<TrajectoryPattern>> HybridPredictor::MineFreshPatterns(
    const Trajectory& new_history, bool* new_consequence_offset) const {
  const Timestamp period = options_.regions.period;
  StatusOr<std::vector<Trajectory>> subs =
      new_history.DecomposePeriodic(period);
  if (!subs.ok()) return subs.status();

  // Map each new sub-trajectory onto the existing frequent regions —
  // region discovery stays anchored to the original training pass, as
  // the paper's insertion path assumes a stable region universe.
  std::vector<Transaction> transactions;
  transactions.reserve(subs->size());
  for (const Trajectory& sub : *subs) {
    transactions.emplace_back(
        MapPeriodPointsToVisits(regions_, sub.points(),
                                options_.region_match_slack),
        regions_.NumRegions());
  }

  StatusOr<AprioriResult> mined =
      MineTrajectoryPatterns(transactions, regions_, options_.mining);
  if (!mined.ok()) return mined.status();

  // Dedupe against the already-indexed rules.
  std::set<std::pair<std::vector<int>, int>> existing;
  for (const TrajectoryPattern& p : patterns_) {
    existing.emplace(p.premise, p.consequence);
  }
  std::vector<TrajectoryPattern> fresh;
  *new_consequence_offset = false;
  for (TrajectoryPattern& p : mined->patterns) {
    if (existing.count({p.premise, p.consequence})) continue;
    if (key_tables_.TimeIdForOffset(
            regions_.Region(p.consequence).offset) < 0) {
      *new_consequence_offset = true;
    }
    fresh.push_back(std::move(p));
  }
  return fresh;
}

StatusOr<std::unique_ptr<HybridPredictor>> HybridPredictor::WithNewHistory(
    const Trajectory& new_history) const {
  HPM_INJECT_FAULT("core/train");
  bool new_consequence_offset = false;
  StatusOr<std::vector<TrajectoryPattern>> fresh =
      MineFreshPatterns(new_history, &new_consequence_offset);
  if (!fresh.ok()) return fresh.status();

  std::vector<TrajectoryPattern> combined = patterns_;
  combined.reserve(combined.size() + fresh->size());
  for (TrajectoryPattern& p : *fresh) combined.push_back(std::move(p));

  // When a new consequence offset appears the key universe grows, so the
  // tables are rebuilt (keys change length). Either way the TPT is bulk
  // loaded from scratch: bulk loading is sequential insertion, so the
  // result is the exact tree the in-place insertion path would produce.
  KeyTables tables = new_consequence_offset
                         ? KeyTables::Build(regions_, combined)
                         : key_tables_;
  std::vector<IndexedPattern> indexed;
  indexed.reserve(combined.size());
  for (size_t i = 0; i < combined.size(); ++i) {
    indexed.push_back({tables.EncodePattern(combined[i], regions_),
                       combined[i].confidence, combined[i].consequence,
                       static_cast<int>(i)});
  }
  StatusOr<TptTree> tpt = TptTree::BulkLoad(std::move(indexed), options_.tpt);
  if (!tpt.ok()) return tpt.status();
  const size_t builder_bytes = tpt->MemoryBytes();
  FrozenTpt frozen = FrozenTpt::Freeze(*tpt);

  auto updated = std::unique_ptr<HybridPredictor>(
      new HybridPredictor(options_, regions_, std::move(combined),
                          std::move(tables), std::move(frozen)));
  updated->summary_ = summary_;
  updated->summary_.num_patterns = updated->patterns_.size();
  updated->summary_.tpt_memory_bytes = builder_bytes;
  updated->summary_.tpt_frozen_bytes = updated->tpt_.MemoryBytes();
  updated->summary_.tpt_height = updated->tpt_.Height();
  // Carry the counts so they stay monotonic across snapshot swaps.
  updated->counters_ = counters_;
  return updated;
}

StatusOr<size_t> HybridPredictor::IncorporateNewHistory(
    const Trajectory& new_history) {
  StatusOr<std::unique_ptr<HybridPredictor>> updated =
      WithNewHistory(new_history);
  if (!updated.ok()) return updated.status();
  const size_t added = (*updated)->patterns_.size() - patterns_.size();
  *this = std::move(**updated);
  return added;
}

StatusOr<std::vector<Prediction>> HybridPredictor::Predict(
    const PredictiveQuery& query) const {
  return RunToCompletion(*this, query, PredictTask::Route::kAuto);
}

}  // namespace hpm
