// HybridPredictor: the paper's primary contribution, tying together the
// discovery pipeline (§IV), the Trajectory Pattern Tree (§V) and the
// Hybrid Prediction Algorithm with its two query processors (§VI).

#ifndef HPM_CORE_HYBRID_PREDICTOR_H_
#define HPM_CORE_HYBRID_PREDICTOR_H_

#include <memory>
#include <vector>

#include "core/query.h"
#include "core/similarity.h"
#include "mining/apriori.h"
#include "mining/frequent_region.h"
#include "motion/recursive_motion.h"
#include "tpt/key_tables.h"
#include "tpt/tpt_tree.h"

namespace hpm {

/// Everything that configures training and query processing.
struct HybridPredictorOptions {
  /// Discovery: period T, DBSCAN Eps/MinPts, sub-trajectory limit.
  FrequentRegionParams regions;

  /// Pattern mining: min confidence/support, pattern length bounds.
  AprioriParams mining;

  /// TPT node capacity.
  TptTree::Options tpt;

  /// Premise-weight family (paper recommends linear or quadratic).
  WeightFunction weight_function = WeightFunction::kLinear;

  /// Distant-time threshold d (Definition 2): queries with prediction
  /// length >= d use Backward Query Processing.
  Timestamp distant_threshold = 60;

  /// Time relaxation length t_eps for BQP (paper: best at 1..3).
  Timestamp time_relaxation = 2;

  /// Distance slack when matching recent movements to frequent-region
  /// MBRs (0 = strict containment).
  double region_match_slack = 0.0;

  /// Only the last `premise_horizon` recent movements feed the query
  /// premise key (0 = all). The motion-function fallback always sees the
  /// full recent window — the premise is about *which regions were just
  /// visited*, while the fallback wants as much kinematic history as it
  /// can get.
  int premise_horizon = 0;

  /// Configuration of the RMF fallback motion function.
  RmfOptions rmf;
};

/// Summary of a training run, for reporting and experiments.
struct TrainingSummary {
  size_t num_sub_trajectories = 0;
  size_t num_frequent_regions = 0;
  size_t num_patterns = 0;
  AprioriStats mining_stats;
  size_t tpt_memory_bytes = 0;
  int tpt_height = 0;
  double train_seconds = 0.0;
};

/// Per-predictor counters describing how queries were answered; the
/// motion-fallback rate drives the paper's Fig. 10 discussion.
struct QueryCounters {
  size_t forward_queries = 0;
  size_t backward_queries = 0;
  size_t pattern_answers = 0;
  size_t motion_fallbacks = 0;
};

/// A trained Hybrid Prediction Model for one moving object.
///
/// Train() mines the object's history once; Predict() answers any number
/// of queries. The class is immutable after training except for the
/// query counters; it is safe to share across readers if the counters'
/// data race is acceptable (or disable them via Predict's argument).
class HybridPredictor {
 public:
  /// Mines frequent regions and trajectory patterns from `history` and
  /// indexes them in a TPT. Fails when the history is shorter than one
  /// period or parameters are invalid.
  static StatusOr<std::unique_ptr<HybridPredictor>> Train(
      const Trajectory& history, const HybridPredictorOptions& options);

  /// Answers a predictive query with the Hybrid Prediction Algorithm:
  /// Forward Query Processing for prediction lengths below the distant
  /// threshold, Backward Query Processing at or above it, with the
  /// motion function as fallback when no pattern qualifies. Returns at
  /// most k predictions, best first (pattern answers carry scores;
  /// fallback answers are single).
  StatusOr<std::vector<Prediction>> Predict(const PredictiveQuery& query) const;

  /// Forward Query Processing (Algorithm 2), callable directly.
  StatusOr<std::vector<Prediction>> ForwardQuery(
      const PredictiveQuery& query) const;

  /// Backward Query Processing (Algorithm 3), callable directly.
  StatusOr<std::vector<Prediction>> BackwardQuery(
      const PredictiveQuery& query) const;

  /// The motion-function answer alone (no pattern lookup) — the
  /// comparison baseline inside HPM.
  StatusOr<Prediction> MotionFunctionPredict(
      const PredictiveQuery& query) const;

  /// Dynamic data (paper §V-B): "When a certain amount of new data is
  /// accumulated, the system mines new patterns and adds them up to TPT
  /// by using the insertion algorithm."
  ///
  /// `new_history` is the newly accumulated movement data (at least one
  /// complete period). Its locations are matched to the *existing*
  /// frequent regions, patterns are mined over the new sub-trajectories,
  /// and rules not yet indexed are inserted into the TPT. Confidences of
  /// the inserted rules reflect the new batch. If a new rule concludes
  /// at a time offset the consequence-key table has never seen, the key
  /// tables and the TPT are rebuilt (keys change length); otherwise the
  /// insertion is incremental. Not safe to call concurrently with
  /// Predict.
  ///
  /// Returns the number of patterns added.
  StatusOr<size_t> IncorporateNewHistory(const Trajectory& new_history);

  /// Persists the trained model (options, frequent regions, patterns) to
  /// a binary file. The TPT itself is not stored — it is rebuilt on load
  /// from the patterns, which is cheaper than its wire format and keeps
  /// the format independent of node layout.
  Status SaveToFile(const std::string& path) const;

  /// Restores a model written by SaveToFile. Fails with InvalidArgument
  /// on a malformed/foreign file and FailedPrecondition on a version
  /// mismatch.
  static StatusOr<std::unique_ptr<HybridPredictor>> LoadFromFile(
      const std::string& path);

  const TrainingSummary& summary() const { return summary_; }
  const QueryCounters& counters() const { return counters_; }
  void ResetCounters() const { counters_ = QueryCounters{}; }

  /// Runtime-tunable ranking knob: switches the premise-weight family
  /// without retraining (the weights only affect query scoring).
  void set_weight_function(WeightFunction fn) {
    options_.weight_function = fn;
  }

  const FrequentRegionSet& regions() const { return regions_; }
  const std::vector<TrajectoryPattern>& patterns() const { return patterns_; }
  const TptTree& tpt() const { return tpt_; }
  const KeyTables& key_tables() const { return key_tables_; }
  const HybridPredictorOptions& options() const { return options_; }

 private:
  HybridPredictor(HybridPredictorOptions options, FrequentRegionSet regions,
                  std::vector<TrajectoryPattern> patterns,
                  KeyTables key_tables, TptTree tpt);

  /// Maps recent movements to visited frequent regions (query premise).
  std::vector<int> QueryPremise(const PredictiveQuery& query) const;

  /// Ranks pattern candidates and materialises the top-k predictions.
  std::vector<Prediction> RankAndTake(
      std::vector<Prediction> candidates, int k) const;

  /// Re-encodes every pattern against freshly built key tables and
  /// reloads the TPT (needed when the key universe changes).
  Status RebuildIndex();

  HybridPredictorOptions options_;
  FrequentRegionSet regions_;
  std::vector<TrajectoryPattern> patterns_;
  KeyTables key_tables_;
  TptTree tpt_;
  TrainingSummary summary_;
  mutable QueryCounters counters_;
};

}  // namespace hpm

#endif  // HPM_CORE_HYBRID_PREDICTOR_H_
