// HybridPredictor: the paper's primary contribution, tying together the
// discovery pipeline (§IV), the Trajectory Pattern Tree (§V) and the
// Hybrid Prediction Algorithm with its two query processors (§VI).

#ifndef HPM_CORE_HYBRID_PREDICTOR_H_
#define HPM_CORE_HYBRID_PREDICTOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/query.h"
#include "core/similarity.h"
#include "mining/apriori.h"
#include "mining/frequent_region.h"
#include "motion/recursive_motion.h"
#include "tpt/frozen_tpt.h"
#include "tpt/key_tables.h"
#include "tpt/tpt_tree.h"

namespace hpm {

struct PredictScratch;

/// Everything that configures training and query processing.
struct HybridPredictorOptions {
  /// Discovery: period T, DBSCAN Eps/MinPts, sub-trajectory limit.
  FrequentRegionParams regions;

  /// Pattern mining: min confidence/support, pattern length bounds.
  AprioriParams mining;

  /// TPT node capacity.
  TptTree::Options tpt;

  /// Premise-weight family (paper recommends linear or quadratic).
  WeightFunction weight_function = WeightFunction::kLinear;

  /// Distant-time threshold d (Definition 2): queries with prediction
  /// length >= d use Backward Query Processing.
  Timestamp distant_threshold = 60;

  /// Time relaxation length t_eps for BQP (paper: best at 1..3).
  Timestamp time_relaxation = 2;

  /// Distance slack when matching recent movements to frequent-region
  /// MBRs (0 = strict containment).
  double region_match_slack = 0.0;

  /// Only the last `premise_horizon` recent movements feed the query
  /// premise key (0 = all). The motion-function fallback always sees the
  /// full recent window — the premise is about *which regions were just
  /// visited*, while the fallback wants as much kinematic history as it
  /// can get.
  int premise_horizon = 0;

  /// Configuration of the RMF fallback motion function.
  RmfOptions rmf;
};

/// Summary of a training run, for reporting and experiments.
struct TrainingSummary {
  size_t num_sub_trajectories = 0;
  size_t num_frequent_regions = 0;
  size_t num_patterns = 0;
  AprioriStats mining_stats;

  /// Bytes of the *builder* (pointer) tree the patterns were loaded
  /// into — the paper's Fig. 11a storage metric.
  size_t tpt_memory_bytes = 0;

  /// Bytes of the frozen arena actually served from (tpt.frozen_bytes).
  size_t tpt_frozen_bytes = 0;
  int tpt_height = 0;
  double train_seconds = 0.0;
};

/// Per-predictor counters describing how queries were answered; the
/// motion-fallback rate drives the paper's Fig. 10 discussion. This is
/// the plain snapshot type returned by counters(); internally the
/// predictor keeps atomic counters so concurrent readers can count.
struct QueryCounters {
  size_t forward_queries = 0;
  size_t backward_queries = 0;
  size_t pattern_answers = 0;
  size_t motion_fallbacks = 0;

  /// Subset of motion_fallbacks produced because the pattern side could
  /// not be consulted (expired deadline / pattern-side fault) rather than
  /// because no pattern matched. The serving degradation rate.
  size_t degraded_answers = 0;
};

/// A trained Hybrid Prediction Model for one moving object.
///
/// Train() mines the object's history once; Predict() answers any number
/// of queries. The model state is immutable after training, and the
/// query counters are atomic, so a trained predictor is safe to share
/// across concurrently-predicting readers. Updates produce *new*
/// predictors via WithNewHistory(); the only mutating members —
/// IncorporateNewHistory() and set_weight_function() — must be
/// externally serialised against readers (the serving layer instead
/// swaps in WithNewHistory() snapshots and never mutates a shared one).
class HybridPredictor {
 public:
  /// Mines frequent regions and trajectory patterns from `history` and
  /// indexes them in a TPT. Fails when the history is shorter than one
  /// period or parameters are invalid.
  static StatusOr<std::unique_ptr<HybridPredictor>> Train(
      const Trajectory& history, const HybridPredictorOptions& options);

  /// Answers a predictive query with the Hybrid Prediction Algorithm:
  /// Forward Query Processing for prediction lengths below the distant
  /// threshold, Backward Query Processing at or above it, with the
  /// motion function as fallback when no pattern qualifies. Returns at
  /// most k predictions, best first (pattern answers carry scores;
  /// fallback answers are single).
  StatusOr<std::vector<Prediction>> Predict(const PredictiveQuery& query) const;

  /// A resumable Predict(): the preamble, each TPT search and the
  /// post-search scoring run as explicit stages, so a batch executor can
  /// interleave many predictions' tree traversals to hide memory stalls.
  /// Predict/ForwardQuery/BackwardQuery are themselves implemented as
  /// Start + Step-to-done + TakeResult, which is what makes batched and
  /// sequential answers (predictions, counters, degraded stamps, search
  /// stats) bit-identical by construction rather than by test alone.
  ///
  /// The task borrows the predictor, the query and the scratch; all
  /// three must outlive it and stay at stable addresses while it runs
  /// (the in-flight search cursor points into the scratch's key words).
  class PredictTask {
   public:
    /// Which processor to run; kAuto routes by prediction length exactly
    /// the way Predict() does.
    enum class Route { kAuto, kForward, kBackward };

    PredictTask() = default;
    PredictTask(const PredictTask&) = delete;
    PredictTask& operator=(const PredictTask&) = delete;

    /// Runs everything up to the start of the first TPT search —
    /// validation, counters, deadline/fault checks, premise mapping, key
    /// encoding. Queries that never reach a search (invalid, degraded,
    /// no premise, empty tree) complete here. Returns done().
    bool Start(const HybridPredictor& predictor,
               const PredictiveQuery& query, PredictScratch* scratch,
               Route route = Route::kAuto);

    bool done() const { return stage_ == Stage::kDone; }

    /// Advances the in-flight search by at most `max_entry_tests`
    /// signature tests, finishing the query (or starting the next BQP
    /// widening round) when a search completes. Returns done().
    bool Step(size_t max_entry_tests);

    /// Warms the next signature block Step would touch (no-op when
    /// done); the batch executor calls this before switching away.
    void Prefetch() const { cursor_.Prefetch(); }

    /// The finished answer; valid once done(), consumed by the call.
    StatusOr<std::vector<Prediction>> TakeResult();

   private:
    enum class Stage { kDone, kForwardSearch, kBackwardSearch };

    void CompleteWith(StatusOr<std::vector<Prediction>> result);
    /// The "no qualified pattern" tail shared by both processors.
    void MotionFallback();
    void FinishForwardSearch();
    /// Runs BQP widening rounds until one leaves a search in flight or
    /// the query completes.
    void RunBackwardRounds();
    /// Encodes round `round_`'s consequence interval into the scratch
    /// key buffers.
    void EncodeBackwardRound();
    /// Round tail once its search (if any) finished; returns true when
    /// the query completed, false to widen again.
    bool EndBackwardRound(bool ran_search);

    const HybridPredictor* predictor_ = nullptr;
    const PredictiveQuery* query_ = nullptr;
    PredictScratch* scratch_ = nullptr;
    Stage stage_ = Stage::kDone;

    FrozenTpt::SearchCursor cursor_;
    TptSearchStats search_stats_;
    /// True when a cursor is actually in flight for the current round
    /// (a BQP round with an empty consequence key runs no search).
    bool searching_ = false;

    // BQP widening-loop state, fixed at Start.
    Timestamp period_ = 0;
    Timestamp tq_offset_ = 0;
    Timestamp t_eps_ = 0;
    Timestamp round_ = 0;
    double premise_penalty_ = 0.0;
    std::vector<int> premise_;

    StatusOr<std::vector<Prediction>> result_{std::vector<Prediction>{}};
  };

  /// Forward Query Processing (Algorithm 2), callable directly.
  StatusOr<std::vector<Prediction>> ForwardQuery(
      const PredictiveQuery& query) const;

  /// Backward Query Processing (Algorithm 3), callable directly.
  StatusOr<std::vector<Prediction>> BackwardQuery(
      const PredictiveQuery& query) const;

  /// The motion-function answer alone (no pattern lookup) — the
  /// comparison baseline inside HPM.
  StatusOr<Prediction> MotionFunctionPredict(
      const PredictiveQuery& query) const;

  /// The load-shedding entry point: answers `query` with the RMF motion
  /// function alone, stamped with `reason`, without touching the pattern
  /// side. Counters stay consistent with Predict() — the call is counted
  /// as a forward/backward query (by prediction length), a motion
  /// fallback and a degraded answer — so the rung-1 ladder response
  /// (DegradedReason::kOverloaded) is indistinguishable from a deadline
  /// degradation in every aggregate metric. `reason` must not be kNone.
  StatusOr<std::vector<Prediction>> DegradedPredict(
      const PredictiveQuery& query, DegradedReason reason) const;

  /// Dynamic data (paper §V-B): "When a certain amount of new data is
  /// accumulated, the system mines new patterns and adds them up to TPT
  /// by using the insertion algorithm."
  ///
  /// `new_history` is the newly accumulated movement data (at least one
  /// complete period). Its locations are matched to the *existing*
  /// frequent regions, patterns are mined over the new sub-trajectories,
  /// and rules not yet indexed are inserted into the TPT. Confidences of
  /// the inserted rules reflect the new batch. If a new rule concludes
  /// at a time offset the consequence-key table has never seen, the key
  /// tables and the TPT are rebuilt (keys change length); otherwise the
  /// keys are unchanged and only the pattern set grows. Not safe to call
  /// concurrently with Predict — concurrent deployments should use
  /// WithNewHistory() and swap the returned snapshot instead.
  ///
  /// Returns the number of patterns added.
  StatusOr<size_t> IncorporateNewHistory(const Trajectory& new_history);

  /// The snapshot-building flavour of the §V-B insertion path: mines
  /// `new_history` exactly like IncorporateNewHistory, but leaves *this
  /// untouched and returns a fresh predictor carrying the combined
  /// pattern set (and a query-counter snapshot, so counts stay monotonic
  /// across swaps). Because the TPT bulk loader is sequential insertion,
  /// the fresh instance's index is bit-identical to what in-place
  /// insertion would have produced. Safe to call while other threads
  /// Predict() on *this.
  StatusOr<std::unique_ptr<HybridPredictor>> WithNewHistory(
      const Trajectory& new_history) const;

  /// Persists the trained model (options, frequent regions, patterns,
  /// and the frozen TPT arena) to a binary file. Storing the arena lets
  /// load validate bytes instead of replaying the sequential-insert
  /// build; the arena section carries its own CRC on top of the file
  /// footer, so corruption surfaces as DataLoss (→ store quarantine),
  /// never as a differently-shaped index.
  Status SaveToFile(const std::string& path) const;

  /// Restores a model written by SaveToFile. Fails with InvalidArgument
  /// on a malformed/foreign file and FailedPrecondition on a version
  /// mismatch.
  static StatusOr<std::unique_ptr<HybridPredictor>> LoadFromFile(
      const std::string& path);

  const TrainingSummary& summary() const { return summary_; }

  /// A consistent-enough snapshot of the query counters (each field is
  /// read with a relaxed atomic load; fields may straddle a concurrent
  /// query, but every increment is eventually visible exactly once).
  QueryCounters counters() const;
  void ResetCounters() const;

  /// Copies `other`'s query-counter values into this predictor, so a
  /// freshly rebuilt model keeps the aggregate counts monotonic across a
  /// snapshot swap (what WithNewHistory does internally). Call before
  /// publishing this predictor to readers — it races with nothing then.
  void CarryCountersFrom(const HybridPredictor& other) const {
    counters_ = other.counters_;
  }

  /// Runtime-tunable ranking knob: switches the premise-weight family
  /// without retraining (the weights only affect query scoring). Not
  /// thread-safe: call before sharing the predictor across threads.
  void set_weight_function(WeightFunction fn) {
    options_.weight_function = fn;
  }

  const FrequentRegionSet& regions() const { return regions_; }
  const std::vector<TrajectoryPattern>& patterns() const { return patterns_; }

  /// The frozen serving index. The mutable builder tree exists only
  /// transiently inside Train/WithNewHistory/LoadFromFile.
  const FrozenTpt& tpt() const { return tpt_; }
  const KeyTables& key_tables() const { return key_tables_; }
  const HybridPredictorOptions& options() const { return options_; }

 private:
  /// Relaxed atomic counterpart of QueryCounters. Copying snapshots the
  /// source (so move/copy of a predictor carries the counts over).
  struct AtomicQueryCounters {
    std::atomic<size_t> forward_queries{0};
    std::atomic<size_t> backward_queries{0};
    std::atomic<size_t> pattern_answers{0};
    std::atomic<size_t> motion_fallbacks{0};
    std::atomic<size_t> degraded_answers{0};

    AtomicQueryCounters() = default;
    AtomicQueryCounters(const AtomicQueryCounters& other) { *this = other; }
    AtomicQueryCounters& operator=(const AtomicQueryCounters& other);

    QueryCounters Snapshot() const;
  };

  HybridPredictor(HybridPredictorOptions options, FrequentRegionSet regions,
                  std::vector<TrajectoryPattern> patterns,
                  KeyTables key_tables, FrozenTpt tpt);

  /// Shared §V-B front half: decomposes `new_history`, maps it onto the
  /// existing regions, mines, and dedupes against patterns_. Sets
  /// `*new_consequence_offset` when a mined rule concludes at a time
  /// offset the consequence-key table has never seen.
  StatusOr<std::vector<TrajectoryPattern>> MineFreshPatterns(
      const Trajectory& new_history, bool* new_consequence_offset) const;

  /// Maps recent movements to visited frequent regions (query premise).
  std::vector<int> QueryPremise(const PredictiveQuery& query) const;

  /// The graceful-degradation answer: the RMF motion-function prediction
  /// stamped with `reason`, counted as a (degraded) motion fallback.
  StatusOr<std::vector<Prediction>> DegradedAnswer(
      const PredictiveQuery& query, DegradedReason reason) const;

  /// Ranks `*candidates` in place and materialises the top-k predictions
  /// (the buffer may be per-query scratch, so it is sorted, read, and left
  /// behind rather than consumed).
  std::vector<Prediction> RankAndTake(
      std::vector<Prediction>* candidates, int k) const;

  HybridPredictorOptions options_;
  FrequentRegionSet regions_;
  std::vector<TrajectoryPattern> patterns_;
  KeyTables key_tables_;
  FrozenTpt tpt_;
  TrainingSummary summary_;
  mutable AtomicQueryCounters counters_;
};

}  // namespace hpm

#endif  // HPM_CORE_HYBRID_PREDICTOR_H_
