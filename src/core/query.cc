#include "core/query.h"

#include <cstdio>

namespace hpm {

const char* DegradedReasonName(DegradedReason reason) {
  switch (reason) {
    case DegradedReason::kNone:
      return "None";
    case DegradedReason::kDeadlineExceeded:
      return "DeadlineExceeded";
    case DegradedReason::kPatternUnavailable:
      return "PatternUnavailable";
    case DegradedReason::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Prediction::ToString() const {
  char buf[192];
  if (source == PredictionSource::kPattern) {
    std::snprintf(buf, sizeof(buf),
                  "pattern #%d (conf %.2f, score %.3f) -> %s", pattern_id,
                  confidence, score, location.ToString().c_str());
  } else if (degraded != DegradedReason::kNone) {
    std::snprintf(buf, sizeof(buf), "motion function (degraded: %s) -> %s",
                  DegradedReasonName(degraded), location.ToString().c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "motion function -> %s",
                  location.ToString().c_str());
  }
  return buf;
}

Status ValidateQuery(const PredictiveQuery& query) {
  if (query.recent_movements.empty()) {
    return Status::InvalidArgument("recent movements are empty");
  }
  for (size_t i = 1; i < query.recent_movements.size(); ++i) {
    if (query.recent_movements[i].time !=
        query.recent_movements[i - 1].time + 1) {
      return Status::InvalidArgument(
          "recent movements must have consecutive unit timestamps");
    }
  }
  if (query.recent_movements.back().time != query.current_time) {
    return Status::InvalidArgument(
        "recent movements must end at current_time");
  }
  if (query.query_time <= query.current_time) {
    return Status::InvalidArgument(
        "query_time must be strictly after current_time");
  }
  if (query.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  return Status::OK();
}

}  // namespace hpm
