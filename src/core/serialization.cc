// Binary persistence for trained HybridPredictor models.
//
// Format v2 (little-endian, as written by the host):
//   magic "HPM1" | version u32 | options | regions | patterns | num_subs u64
//   | builder_bytes u64 | frozen TPT section ("FTPT", own CRC)
//   | footer: magic "HPMC" | crc32 u32 of every preceding byte
// The frozen TPT arena is stored verbatim, so load validates bytes
// (structure + per-section CRC) instead of replaying the sequential
// bulk load, and cross-checks the arena's leaf payloads against the
// re-encoded pattern set so a logically inconsistent section can never
// serve wrong answers. The footer makes torn writes and bit rot
// detectable (DataLoss) before the field validators run; the file
// itself is written via AtomicWriteFile, so a crashed save leaves the
// previous model intact rather than a prefix.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/hybrid_predictor.h"
#include "io/atomic_file.h"
#include "tpt/frozen_tpt.h"

namespace hpm {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'M', '1'};
constexpr char kFooterMagic[4] = {'H', 'P', 'M', 'C'};
constexpr uint32_t kFormatVersion = 2;
constexpr size_t kFooterSize = sizeof(kFooterMagic) + sizeof(uint32_t);

/// Serialises trivially-copyable values into an in-memory buffer; the
/// whole buffer is checksummed and written atomically at the end.
class BinaryWriter {
 public:
  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));
  }

  void WriteBytes(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Reads trivially-copyable values back out of a byte range, latching an
/// error (like the old FILE-based reader) on reads past the end.
class BinaryReader {
 public:
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  void Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ReadBytes(value, sizeof(T));
  }

  void ReadBytes(void* data, size_t n) {
    if (failed_ || n > size_ - pos_) {
      failed_ = true;
      return;
    }
    std::memcpy(data, data_ + pos_, n);
    pos_ += n;
  }

  bool failed() const { return failed_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

void WritePoint(BinaryWriter* f, const Point& p) {
  f->Write(p.x);
  f->Write(p.y);
}

Point ReadPoint(BinaryReader* f) {
  Point p;
  f->Read(&p.x);
  f->Read(&p.y);
  return p;
}

void WriteBox(BinaryWriter* f, const BoundingBox& box) {
  const uint8_t empty = box.IsEmpty() ? 1 : 0;
  f->Write(empty);
  if (!box.IsEmpty()) {
    WritePoint(f, box.min());
    WritePoint(f, box.max());
  }
}

BoundingBox ReadBox(BinaryReader* f) {
  uint8_t empty = 0;
  f->Read(&empty);
  if (empty) return BoundingBox();
  const Point lo = ReadPoint(f);
  const Point hi = ReadPoint(f);
  return BoundingBox(lo, hi);
}

void WriteOptions(BinaryWriter* f, const HybridPredictorOptions& o) {
  f->Write(o.regions.period);
  f->Write(o.regions.dbscan.eps);
  f->Write(static_cast<int64_t>(o.regions.dbscan.min_pts));
  f->Write(static_cast<int64_t>(o.regions.limit_sub_trajectories));
  f->Write(o.mining.min_confidence);
  f->Write(static_cast<int64_t>(o.mining.min_support));
  f->Write(static_cast<int64_t>(o.mining.max_pattern_length));
  f->Write(o.mining.premise_window);
  f->Write(static_cast<uint8_t>(o.mining.enable_pruning));
  f->Write(static_cast<int64_t>(o.tpt.max_node_entries));
  f->Write(static_cast<int64_t>(o.tpt.min_node_entries));
  f->Write(static_cast<int64_t>(o.weight_function));
  f->Write(o.distant_threshold);
  f->Write(o.time_relaxation);
  f->Write(o.region_match_slack);
  f->Write(static_cast<int64_t>(o.rmf.retrospect));
  f->Write(static_cast<uint8_t>(o.rmf.auto_retrospect));
  f->Write(static_cast<int64_t>(o.rmf.window));
  WriteBox(f, o.rmf.clamp_box);
}

HybridPredictorOptions ReadOptions(BinaryReader* f) {
  HybridPredictorOptions o;
  int64_t i64 = 0;
  uint8_t u8 = 0;
  f->Read(&o.regions.period);
  f->Read(&o.regions.dbscan.eps);
  f->Read(&i64);
  o.regions.dbscan.min_pts = static_cast<int>(i64);
  f->Read(&i64);
  o.regions.limit_sub_trajectories = static_cast<int>(i64);
  f->Read(&o.mining.min_confidence);
  f->Read(&i64);
  o.mining.min_support = static_cast<int>(i64);
  f->Read(&i64);
  o.mining.max_pattern_length = static_cast<int>(i64);
  f->Read(&o.mining.premise_window);
  f->Read(&u8);
  o.mining.enable_pruning = u8 != 0;
  f->Read(&i64);
  o.tpt.max_node_entries = static_cast<int>(i64);
  f->Read(&i64);
  o.tpt.min_node_entries = static_cast<int>(i64);
  f->Read(&i64);
  o.weight_function = static_cast<WeightFunction>(i64);
  f->Read(&o.distant_threshold);
  f->Read(&o.time_relaxation);
  f->Read(&o.region_match_slack);
  f->Read(&i64);
  o.rmf.retrospect = static_cast<int>(i64);
  f->Read(&u8);
  o.rmf.auto_retrospect = u8 != 0;
  f->Read(&i64);
  o.rmf.window = static_cast<int>(i64);
  o.rmf.clamp_box = ReadBox(f);
  return o;
}

}  // namespace

Status HybridPredictor::SaveToFile(const std::string& path) const {
  BinaryWriter f;
  f.WriteBytes(kMagic, sizeof(kMagic));
  f.Write(kFormatVersion);
  WriteOptions(&f, options_);

  f.Write(static_cast<uint64_t>(regions_.NumRegions()));
  for (const FrequentRegion& r : regions_.regions()) {
    f.Write(static_cast<int64_t>(r.id));
    f.Write(r.offset);
    f.Write(static_cast<int64_t>(r.index_at_offset));
    WritePoint(&f, r.center);
    WriteBox(&f, r.mbr);
    f.Write(static_cast<int64_t>(r.support));
  }

  f.Write(static_cast<uint64_t>(patterns_.size()));
  for (const TrajectoryPattern& p : patterns_) {
    f.Write(static_cast<uint64_t>(p.premise.size()));
    for (int id : p.premise) f.Write(static_cast<int64_t>(id));
    f.Write(static_cast<int64_t>(p.consequence));
    f.Write(p.confidence);
    f.Write(static_cast<int64_t>(p.support));
  }

  f.Write(static_cast<uint64_t>(summary_.num_sub_trajectories));
  f.Write(static_cast<uint64_t>(summary_.tpt_memory_bytes));

  std::string frozen_section;
  tpt_.AppendTo(&frozen_section);
  f.WriteBytes(frozen_section.data(), frozen_section.size());

  std::string content = f.buffer();
  const uint32_t crc = Crc32(content);
  content.append(kFooterMagic, sizeof(kFooterMagic));
  content.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return AtomicWriteFile(path, content).Annotate("model");
}

StatusOr<std::unique_ptr<HybridPredictor>> HybridPredictor::LoadFromFile(
    const std::string& path) {
  StatusOr<std::string> read = ReadFileToString(path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kInvalidArgument) {
      return Status::InvalidArgument("cannot open file for reading: " + path);
    }
    return read.status();
  }
  const std::string& content = *read;

  // Header magic first: a foreign file is InvalidArgument, reserving
  // DataLoss for files that *were* hpm models but got torn or flipped.
  if (content.size() < sizeof(kMagic) ||
      std::memcmp(content.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an hpm model file: " + path);
  }
  if (content.size() < sizeof(kMagic) + kFooterSize ||
      std::memcmp(content.data() + content.size() - kFooterSize,
                  kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return Status::DataLoss("torn model file (missing footer): " + path);
  }
  const size_t body_size = content.size() - kFooterSize;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc,
              content.data() + body_size + sizeof(kFooterMagic),
              sizeof(stored_crc));
  if (Crc32(content.data(), body_size) != stored_crc) {
    return Status::DataLoss("model file checksum mismatch: " + path);
  }

  BinaryReader f(content.data() + sizeof(kMagic),
                 body_size - sizeof(kMagic));
  uint32_t version = 0;
  f.Read(&version);
  if (version != kFormatVersion) {
    return Status::FailedPrecondition("unsupported model format version " +
                                      std::to_string(version));
  }
  HybridPredictorOptions options = ReadOptions(&f);
  if (f.failed()) {
    return Status::InvalidArgument("truncated model file: " + path);
  }
  if (options.regions.period <= 0 ||
      options.regions.period > (1 << 24)) {
    return Status::InvalidArgument("corrupt period");
  }
  if (options.tpt.max_node_entries < 4 ||
      options.tpt.max_node_entries > (1 << 16) ||
      options.tpt.min_node_entries < 2 ||
      options.tpt.min_node_entries * 2 > options.tpt.max_node_entries + 1) {
    return Status::InvalidArgument("corrupt TPT options");
  }
  if (static_cast<int64_t>(options.weight_function) < 0 ||
      static_cast<int64_t>(options.weight_function) >
          static_cast<int64_t>(WeightFunction::kFactorial)) {
    return Status::InvalidArgument("corrupt weight function");
  }

  FrequentRegionSet regions;
  regions.set_period(options.regions.period);
  uint64_t num_regions = 0;
  f.Read(&num_regions);
  if (f.failed() || num_regions > (1u << 24)) {
    return Status::InvalidArgument("corrupt region count");
  }
  for (uint64_t i = 0; i < num_regions; ++i) {
    FrequentRegion r;
    int64_t i64 = 0;
    f.Read(&i64);
    r.id = static_cast<int>(i64);
    f.Read(&r.offset);
    f.Read(&i64);
    r.index_at_offset = static_cast<int>(i64);
    r.center = ReadPoint(&f);
    r.mbr = ReadBox(&f);
    f.Read(&i64);
    r.support = static_cast<int>(i64);
    if (f.failed() || r.id != static_cast<int>(i) || r.offset < 0 ||
        r.offset >= options.regions.period) {
      return Status::InvalidArgument("corrupt region record");
    }
    regions.AddRegion(std::move(r));
  }

  std::vector<TrajectoryPattern> patterns;
  uint64_t num_patterns = 0;
  f.Read(&num_patterns);
  if (f.failed() || num_patterns > (1u << 28)) {
    return Status::InvalidArgument("corrupt pattern count");
  }
  patterns.reserve(num_patterns);
  for (uint64_t i = 0; i < num_patterns; ++i) {
    TrajectoryPattern p;
    uint64_t premise_size = 0;
    f.Read(&premise_size);
    if (f.failed() || premise_size > 64) {
      return Status::InvalidArgument("corrupt premise size");
    }
    for (uint64_t j = 0; j < premise_size; ++j) {
      int64_t id = 0;
      f.Read(&id);
      if (id < 0 || static_cast<uint64_t>(id) >= num_regions) {
        return Status::InvalidArgument("premise region id out of range");
      }
      p.premise.push_back(static_cast<int>(id));
    }
    int64_t i64 = 0;
    f.Read(&i64);
    if (i64 < 0 || static_cast<uint64_t>(i64) >= num_regions) {
      return Status::InvalidArgument("consequence region id out of range");
    }
    p.consequence = static_cast<int>(i64);
    f.Read(&p.confidence);
    f.Read(&i64);
    p.support = static_cast<int>(i64);
    if (f.failed()) {
      return Status::InvalidArgument("truncated pattern record");
    }
    patterns.push_back(std::move(p));
  }

  uint64_t num_subs = 0;
  uint64_t builder_bytes = 0;
  f.Read(&num_subs);
  f.Read(&builder_bytes);
  if (f.failed()) {
    return Status::InvalidArgument("truncated model file: " + path);
  }

  // The serving index loads straight from the stored arena — no bulk
  // load. Parse validates structure and the section CRC (DataLoss on
  // damage, so the store layer quarantines the file).
  const size_t section_offset = sizeof(kMagic) + f.pos();
  size_t section_consumed = 0;
  StatusOr<FrozenTpt> frozen = FrozenTpt::Parse(
      content.data() + section_offset, body_size - section_offset,
      &section_consumed);
  if (!frozen.ok()) return frozen.status().Annotate("model " + path);
  if (section_offset + section_consumed != body_size) {
    return Status::DataLoss("trailing garbage after frozen TPT section: " +
                            path);
  }

  // Cross-check the arena's leaf payloads against the re-encoded
  // pattern set: every pattern indexed exactly once, with the exact key,
  // confidence and consequence the miner produced. A section that
  // passes its CRC but disagrees with the patterns is corruption, not a
  // servable index.
  KeyTables tables = KeyTables::Build(regions, patterns);
  if (frozen->size() != patterns.size()) {
    return Status::DataLoss("frozen TPT pattern count mismatch: " + path);
  }
  if (!frozen->empty() &&
      (frozen->premise_bits() != tables.premise_key_length() ||
       frozen->consequence_bits() != tables.consequence_key_length())) {
    return Status::DataLoss("frozen TPT key widths disagree with tables: " +
                            path);
  }
  std::vector<uint8_t> indexed_once(patterns.size(), 0);
  for (const IndexedPattern& entry : frozen->patterns()) {
    if (entry.pattern_id < 0 ||
        static_cast<size_t>(entry.pattern_id) >= patterns.size() ||
        indexed_once[static_cast<size_t>(entry.pattern_id)] != 0) {
      return Status::DataLoss("frozen TPT leaf payload ids corrupt: " + path);
    }
    indexed_once[static_cast<size_t>(entry.pattern_id)] = 1;
    const TrajectoryPattern& p =
        patterns[static_cast<size_t>(entry.pattern_id)];
    if (entry.confidence != p.confidence ||
        entry.consequence_region != p.consequence ||
        !(entry.key == tables.EncodePattern(p, regions))) {
      return Status::DataLoss("frozen TPT disagrees with pattern set: " +
                              path);
    }
  }

  auto predictor = std::unique_ptr<HybridPredictor>(
      new HybridPredictor(options, std::move(regions), std::move(patterns),
                          std::move(tables), std::move(*frozen)));
  predictor->summary_.num_sub_trajectories =
      static_cast<size_t>(num_subs);
  predictor->summary_.num_frequent_regions =
      predictor->regions_.NumRegions();
  predictor->summary_.num_patterns = predictor->patterns_.size();
  predictor->summary_.tpt_memory_bytes =
      static_cast<size_t>(builder_bytes);
  predictor->summary_.tpt_frozen_bytes = predictor->tpt_.MemoryBytes();
  predictor->summary_.tpt_height = predictor->tpt_.Height();
  return predictor;
}

}  // namespace hpm
