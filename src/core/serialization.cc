// Binary persistence for trained HybridPredictor models.
//
// Format (little-endian, as written by the host):
//   magic "HPM1" | version u32 | options | regions | patterns
// The TPT is rebuilt from the patterns on load.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/hybrid_predictor.h"

namespace hpm {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'M', '1'};
constexpr uint32_t kFormatVersion = 1;

/// Thin RAII + error-latching wrapper over std::FILE for serialization.
class BinaryFile {
 public:
  BinaryFile(const std::string& path, bool write)
      : file_(std::fopen(path.c_str(), write ? "wb" : "rb")) {}
  ~BinaryFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  BinaryFile(const BinaryFile&) = delete;
  BinaryFile& operator=(const BinaryFile&) = delete;

  bool is_open() const { return file_ != nullptr; }
  bool failed() const { return failed_; }

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (std::fwrite(&value, sizeof(T), 1, file_) != 1) failed_ = true;
  }

  template <typename T>
  void Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (std::fread(value, sizeof(T), 1, file_) != 1) failed_ = true;
  }

  void WriteBytes(const void* data, size_t n) {
    if (std::fwrite(data, 1, n, file_) != n) failed_ = true;
  }

  void ReadBytes(void* data, size_t n) {
    if (std::fread(data, 1, n, file_) != n) failed_ = true;
  }

 private:
  std::FILE* file_;
  bool failed_ = false;
};

void WritePoint(BinaryFile* f, const Point& p) {
  f->Write(p.x);
  f->Write(p.y);
}

Point ReadPoint(BinaryFile* f) {
  Point p;
  f->Read(&p.x);
  f->Read(&p.y);
  return p;
}

void WriteBox(BinaryFile* f, const BoundingBox& box) {
  const uint8_t empty = box.IsEmpty() ? 1 : 0;
  f->Write(empty);
  if (!box.IsEmpty()) {
    WritePoint(f, box.min());
    WritePoint(f, box.max());
  }
}

BoundingBox ReadBox(BinaryFile* f) {
  uint8_t empty = 0;
  f->Read(&empty);
  if (empty) return BoundingBox();
  const Point lo = ReadPoint(f);
  const Point hi = ReadPoint(f);
  return BoundingBox(lo, hi);
}

void WriteOptions(BinaryFile* f, const HybridPredictorOptions& o) {
  f->Write(o.regions.period);
  f->Write(o.regions.dbscan.eps);
  f->Write(static_cast<int64_t>(o.regions.dbscan.min_pts));
  f->Write(static_cast<int64_t>(o.regions.limit_sub_trajectories));
  f->Write(o.mining.min_confidence);
  f->Write(static_cast<int64_t>(o.mining.min_support));
  f->Write(static_cast<int64_t>(o.mining.max_pattern_length));
  f->Write(o.mining.premise_window);
  f->Write(static_cast<uint8_t>(o.mining.enable_pruning));
  f->Write(static_cast<int64_t>(o.tpt.max_node_entries));
  f->Write(static_cast<int64_t>(o.tpt.min_node_entries));
  f->Write(static_cast<int64_t>(o.weight_function));
  f->Write(o.distant_threshold);
  f->Write(o.time_relaxation);
  f->Write(o.region_match_slack);
  f->Write(static_cast<int64_t>(o.rmf.retrospect));
  f->Write(static_cast<uint8_t>(o.rmf.auto_retrospect));
  f->Write(static_cast<int64_t>(o.rmf.window));
  WriteBox(f, o.rmf.clamp_box);
}

HybridPredictorOptions ReadOptions(BinaryFile* f) {
  HybridPredictorOptions o;
  int64_t i64 = 0;
  uint8_t u8 = 0;
  f->Read(&o.regions.period);
  f->Read(&o.regions.dbscan.eps);
  f->Read(&i64);
  o.regions.dbscan.min_pts = static_cast<int>(i64);
  f->Read(&i64);
  o.regions.limit_sub_trajectories = static_cast<int>(i64);
  f->Read(&o.mining.min_confidence);
  f->Read(&i64);
  o.mining.min_support = static_cast<int>(i64);
  f->Read(&i64);
  o.mining.max_pattern_length = static_cast<int>(i64);
  f->Read(&o.mining.premise_window);
  f->Read(&u8);
  o.mining.enable_pruning = u8 != 0;
  f->Read(&i64);
  o.tpt.max_node_entries = static_cast<int>(i64);
  f->Read(&i64);
  o.tpt.min_node_entries = static_cast<int>(i64);
  f->Read(&i64);
  o.weight_function = static_cast<WeightFunction>(i64);
  f->Read(&o.distant_threshold);
  f->Read(&o.time_relaxation);
  f->Read(&o.region_match_slack);
  f->Read(&i64);
  o.rmf.retrospect = static_cast<int>(i64);
  f->Read(&u8);
  o.rmf.auto_retrospect = u8 != 0;
  f->Read(&i64);
  o.rmf.window = static_cast<int>(i64);
  o.rmf.clamp_box = ReadBox(f);
  return o;
}

}  // namespace

Status HybridPredictor::SaveToFile(const std::string& path) const {
  BinaryFile f(path, /*write=*/true);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  f.WriteBytes(kMagic, sizeof(kMagic));
  f.Write(kFormatVersion);
  WriteOptions(&f, options_);

  f.Write(static_cast<uint64_t>(regions_.NumRegions()));
  for (const FrequentRegion& r : regions_.regions()) {
    f.Write(static_cast<int64_t>(r.id));
    f.Write(r.offset);
    f.Write(static_cast<int64_t>(r.index_at_offset));
    WritePoint(&f, r.center);
    WriteBox(&f, r.mbr);
    f.Write(static_cast<int64_t>(r.support));
  }

  f.Write(static_cast<uint64_t>(patterns_.size()));
  for (const TrajectoryPattern& p : patterns_) {
    f.Write(static_cast<uint64_t>(p.premise.size()));
    for (int id : p.premise) f.Write(static_cast<int64_t>(id));
    f.Write(static_cast<int64_t>(p.consequence));
    f.Write(p.confidence);
    f.Write(static_cast<int64_t>(p.support));
  }

  f.Write(static_cast<uint64_t>(summary_.num_sub_trajectories));
  if (f.failed()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<HybridPredictor>> HybridPredictor::LoadFromFile(
    const std::string& path) {
  BinaryFile f(path, /*write=*/false);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open file for reading: " + path);
  }
  char magic[4] = {};
  f.ReadBytes(magic, sizeof(magic));
  if (f.failed() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an hpm model file: " + path);
  }
  uint32_t version = 0;
  f.Read(&version);
  if (version != kFormatVersion) {
    return Status::FailedPrecondition("unsupported model format version " +
                                      std::to_string(version));
  }
  HybridPredictorOptions options = ReadOptions(&f);
  if (f.failed()) {
    return Status::InvalidArgument("truncated model file: " + path);
  }
  if (options.regions.period <= 0 ||
      options.regions.period > (1 << 24)) {
    return Status::InvalidArgument("corrupt period");
  }
  if (options.tpt.max_node_entries < 4 ||
      options.tpt.max_node_entries > (1 << 16) ||
      options.tpt.min_node_entries < 2 ||
      options.tpt.min_node_entries * 2 > options.tpt.max_node_entries + 1) {
    return Status::InvalidArgument("corrupt TPT options");
  }
  if (static_cast<int64_t>(options.weight_function) < 0 ||
      static_cast<int64_t>(options.weight_function) >
          static_cast<int64_t>(WeightFunction::kFactorial)) {
    return Status::InvalidArgument("corrupt weight function");
  }

  FrequentRegionSet regions;
  regions.set_period(options.regions.period);
  uint64_t num_regions = 0;
  f.Read(&num_regions);
  if (f.failed() || num_regions > (1u << 24)) {
    return Status::InvalidArgument("corrupt region count");
  }
  for (uint64_t i = 0; i < num_regions; ++i) {
    FrequentRegion r;
    int64_t i64 = 0;
    f.Read(&i64);
    r.id = static_cast<int>(i64);
    f.Read(&r.offset);
    f.Read(&i64);
    r.index_at_offset = static_cast<int>(i64);
    r.center = ReadPoint(&f);
    r.mbr = ReadBox(&f);
    f.Read(&i64);
    r.support = static_cast<int>(i64);
    if (f.failed() || r.id != static_cast<int>(i) || r.offset < 0 ||
        r.offset >= options.regions.period) {
      return Status::InvalidArgument("corrupt region record");
    }
    regions.AddRegion(std::move(r));
  }

  std::vector<TrajectoryPattern> patterns;
  uint64_t num_patterns = 0;
  f.Read(&num_patterns);
  if (f.failed() || num_patterns > (1u << 28)) {
    return Status::InvalidArgument("corrupt pattern count");
  }
  patterns.reserve(num_patterns);
  for (uint64_t i = 0; i < num_patterns; ++i) {
    TrajectoryPattern p;
    uint64_t premise_size = 0;
    f.Read(&premise_size);
    if (f.failed() || premise_size > 64) {
      return Status::InvalidArgument("corrupt premise size");
    }
    for (uint64_t j = 0; j < premise_size; ++j) {
      int64_t id = 0;
      f.Read(&id);
      if (id < 0 || static_cast<uint64_t>(id) >= num_regions) {
        return Status::InvalidArgument("premise region id out of range");
      }
      p.premise.push_back(static_cast<int>(id));
    }
    int64_t i64 = 0;
    f.Read(&i64);
    if (i64 < 0 || static_cast<uint64_t>(i64) >= num_regions) {
      return Status::InvalidArgument("consequence region id out of range");
    }
    p.consequence = static_cast<int>(i64);
    f.Read(&p.confidence);
    f.Read(&i64);
    p.support = static_cast<int>(i64);
    if (f.failed()) {
      return Status::InvalidArgument("truncated pattern record");
    }
    patterns.push_back(std::move(p));
  }

  uint64_t num_subs = 0;
  f.Read(&num_subs);
  if (f.failed()) {
    return Status::InvalidArgument("truncated model file: " + path);
  }

  // Rebuild the index from the restored patterns.
  KeyTables tables = KeyTables::Build(regions, patterns);
  std::vector<IndexedPattern> indexed;
  indexed.reserve(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    indexed.push_back({tables.EncodePattern(patterns[i], regions),
                       patterns[i].confidence, patterns[i].consequence,
                       static_cast<int>(i)});
  }
  StatusOr<TptTree> tpt = TptTree::BulkLoad(std::move(indexed), options.tpt);
  if (!tpt.ok()) return tpt.status();

  auto predictor = std::unique_ptr<HybridPredictor>(
      new HybridPredictor(options, std::move(regions), std::move(patterns),
                          std::move(tables), std::move(*tpt)));
  predictor->summary_.num_sub_trajectories =
      static_cast<size_t>(num_subs);
  predictor->summary_.num_frequent_regions =
      predictor->regions_.NumRegions();
  predictor->summary_.num_patterns = predictor->patterns_.size();
  predictor->summary_.tpt_memory_bytes = predictor->tpt_.MemoryBytes();
  predictor->summary_.tpt_height = predictor->tpt_.Height();
  return predictor;
}

}  // namespace hpm
