// Predictive-query and prediction types — the public vocabulary of the
// HybridPredictor API.

#ifndef HPM_CORE_QUERY_H_
#define HPM_CORE_QUERY_H_

#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "geo/bounding_box.h"
#include "geo/trajectory.h"

namespace hpm {

class QueryContext;

/// A spatio-temporal predictive query: "given these recent movements and
/// the current time, where will the object be at query_time?"
struct PredictiveQuery {
  /// The object's recent movements m_q, oldest first, consecutive unit
  /// timestamps ending at current_time.
  std::vector<TimedPoint> recent_movements;

  /// Current time t_c.
  Timestamp current_time = 0;

  /// Query time t_q (strictly after current_time).
  Timestamp query_time = 0;

  /// Number of predicted locations requested (top-k).
  int k = 1;

  /// Latency budget. When it expires mid-query the predictor degrades to
  /// the motion-function answer (Prediction::degraded says so) rather than
  /// failing. Defaults to no deadline.
  Deadline deadline;

  /// Serving-layer execution context (scratch buffers, trace, per-query
  /// accounting), or null when the predictor is called directly —
  /// evaluation, tools and tests keep the context-free behaviour.
  QueryContext* context = nullptr;

  /// Which of `context`'s scratch lanes this call may use exclusively.
  /// Meaningful only when context != nullptr.
  int lane = 0;

  /// Prediction length t_q - t_c.
  Timestamp PredictionLength() const { return query_time - current_time; }
};

/// Where a prediction came from.
enum class PredictionSource {
  kPattern,         ///< A trajectory pattern's consequence centre.
  kMotionFunction,  ///< The motion-function fallback (no pattern matched).
};

/// Why a prediction fell back to the motion function when the pattern side
/// was never consulted to completion. kNone covers both pattern answers and
/// the paper's ordinary fallback (pattern side consulted, no match).
enum class DegradedReason {
  kNone = 0,
  kDeadlineExceeded,    ///< The query's deadline expired mid-evaluation.
  kPatternUnavailable,  ///< Pattern-side lookup failed (e.g. injected fault).
  kOverloaded,          ///< Load shedding: the serving layer skipped the
                        ///< pattern side to protect overall throughput.
};

/// Human-readable name ("None", "DeadlineExceeded", "PatternUnavailable",
/// "Overloaded").
const char* DegradedReasonName(DegradedReason reason);

/// One predicted location.
struct Prediction {
  Point location;

  /// Ranking weight Sp (Equations 2/5) for pattern answers; 0 for
  /// motion-function answers.
  double score = 0.0;

  PredictionSource source = PredictionSource::kMotionFunction;

  /// For pattern answers: which pattern produced it (id into the
  /// predictor's pattern list) and its consequence region / confidence.
  int pattern_id = -1;
  int consequence_region = -1;
  double confidence = 0.0;

  /// For pattern answers: the consequence region's MBR — the natural
  /// uncertainty region around `location` (its centre). Empty for
  /// motion-function answers (point estimates).
  BoundingBox uncertainty;

  /// Non-kNone when this is a motion-function answer produced because the
  /// pattern side could not be (fully) consulted — expired deadline or
  /// pattern-side fault — rather than because no pattern matched.
  DegradedReason degraded = DegradedReason::kNone;

  /// "pattern #12 (conf 0.50, score 0.41) -> (x, y)" style rendering.
  std::string ToString() const;
};

/// Validates the structural requirements on a query (non-empty recent
/// movements with consecutive timestamps ending at current_time, a
/// strictly future query_time, k >= 1). Returns InvalidArgument with a
/// specific message on the first violation.
Status ValidateQuery(const PredictiveQuery& query);

}  // namespace hpm

#endif  // HPM_CORE_QUERY_H_
