// Per-query execution context: the one object threaded from the serving
// layer through the predictor down into TPT traversal and the motion
// fallback.
//
// A QueryContext carries (a) the query's latency budget and the load
// shedder's verdict, (b) a per-query Trace, (c) relaxed atomic counters
// that the pipeline's Account stage flushes exactly once into the store's
// aggregate stats/metrics, and (d) per-lane scratch buffers so the hot
// path stops allocating per shard and per object. A "lane" is one unit of
// intra-query parallelism — a shard task in a fan-out, a chunk in a batch
// — and its scratch is owned exclusively by that task, so scratch access
// needs no synchronisation while the counters stay atomic.
//
// Core code reaches the context through PredictiveQuery::context (may be
// null: direct HybridPredictor users — evaluation, tools, tests — keep the
// exact pre-pipeline behaviour with function-local buffers).

#ifndef HPM_CORE_EXEC_CONTEXT_H_
#define HPM_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/epoch.h"
#include "common/trace.h"
#include "core/query.h"
#include "tpt/pattern_key.h"
#include "tpt/tpt_tree.h"

namespace hpm {

/// Reusable buffers for one lane of query execution. Cleared (not freed)
/// between objects, so steady state does no per-object allocation on the
/// pattern side.
struct PredictScratch {
  /// TPT search output buffer.
  std::vector<const IndexedPattern*> tpt_hits;

  /// Candidate predictions prior to ranking.
  std::vector<Prediction> candidates;

  /// Query-key work buffer (FQP key, or BQP round key).
  PatternKey query_key;

  /// Second key buffer for BQP's wrap-around interval union.
  PatternKey interval_key;

  /// Per-lane epoch pin: a fan-out lane running on a pool thread pins
  /// here before its first acquire-load of a shard table, and releases
  /// (or is released by the next assignment) when the lane's work is
  /// done. Makes the scratch move-only, which the lane pool is.
  EpochManager::Guard epoch_guard;
};

/// The per-query execution state. Created by the serving pipeline, one per
/// store entry-point call; lives on the caller's stack for the duration of
/// the query.
class QueryContext {
 public:
  QueryContext() : QueryContext(Deadline::Infinite(), /*traced=*/false) {}
  QueryContext(Deadline deadline, bool traced)
      : deadline_(deadline), trace_(traced) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  const Deadline& deadline() const { return deadline_; }

  /// The degradation ladder's verdict for this query: when true, every
  /// prediction is served from the RMF motion function alone
  /// (DegradedReason::kOverloaded) and the pattern side is never touched.
  bool shed_to_rmf() const { return shed_to_rmf_; }
  void set_shed_to_rmf(bool shed) { shed_to_rmf_ = shed; }

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// Sizes the scratch pool. Must be called before concurrent lane use
  /// (the pipeline's Plan stage does); existing buffers are kept.
  void SetLaneCount(size_t lanes) {
    if (lanes > scratch_.size()) scratch_.resize(lanes);
  }
  size_t lane_count() const { return scratch_.size(); }

  /// Scratch for lane `i`; exclusive to the task running that lane.
  PredictScratch& lane(size_t i) { return scratch_[i]; }

  /// Query-scope epoch pin, held by the entry point that loaded snapshot
  /// pointers on the calling thread (point predict, batch planning). A
  /// pin taken *before* the first snapshot-pointer load protects every
  /// pointer loaded under it for the guard's lifetime, on whichever
  /// thread dereferences it — reclamation frees an object only when all
  /// slots pinned at or before its retirement have released.
  void AdoptEpochGuard(EpochManager::Guard guard) {
    epoch_guard_ = std::move(guard);
  }

  // --- Per-query accounting, flushed once by the pipeline's Account
  // --- stage. Relaxed atomics: fan-out lanes of one query may count
  // --- concurrently.

  /// A prediction served degraded because of load shedding (one count per
  /// prediction, matching OverloadStats::degraded_overload semantics).
  void CountDegradedPrediction(uint64_t n = 1) {
    degraded_predictions_.fetch_add(n, std::memory_order_relaxed);
  }
  /// A shard skipped by an open circuit breaker or a failed shard task.
  void CountSkippedShard() {
    shards_skipped_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A model (re)train deferred by overload rung 1.
  void CountDeferredTrain() {
    trains_deferred_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A location report rejected by ingestion validation.
  void CountRejectedReport() {
    reports_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One object's prediction evaluated (any source).
  void CountObjectEvaluated() {
    objects_evaluated_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One RMF fit performed (fallback or cold start).
  void CountMotionFit() {
    motion_fits_.fetch_add(1, std::memory_order_relaxed);
  }
  /// The batch executor switched away from a stalled traversal to run
  /// another query's (the `batch.interleaved` metric).
  void CountBatchInterleaved() {
    batch_interleaved_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Accumulates one TPT search's traversal effort.
  void AddTptStats(const TptSearchStats& stats) {
    tpt_nodes_visited_.fetch_add(stats.nodes_visited,
                                 std::memory_order_relaxed);
    tpt_entries_tested_.fetch_add(stats.entries_tested,
                                  std::memory_order_relaxed);
    tpt_blocks_scanned_.fetch_add(stats.blocks_scanned,
                                  std::memory_order_relaxed);
  }

  /// Plain snapshot of the accumulators (taken after fan-out joins, so
  /// the values are exact, not advisory).
  struct Totals {
    uint64_t degraded_predictions = 0;
    uint64_t shards_skipped = 0;
    uint64_t trains_deferred = 0;
    uint64_t reports_rejected = 0;
    uint64_t objects_evaluated = 0;
    uint64_t motion_fits = 0;
    uint64_t batch_interleaved = 0;
    uint64_t tpt_nodes_visited = 0;
    uint64_t tpt_entries_tested = 0;
    uint64_t tpt_blocks_scanned = 0;
  };
  Totals totals() const {
    Totals t;
    t.degraded_predictions =
        degraded_predictions_.load(std::memory_order_relaxed);
    t.shards_skipped = shards_skipped_.load(std::memory_order_relaxed);
    t.trains_deferred = trains_deferred_.load(std::memory_order_relaxed);
    t.reports_rejected = reports_rejected_.load(std::memory_order_relaxed);
    t.objects_evaluated = objects_evaluated_.load(std::memory_order_relaxed);
    t.motion_fits = motion_fits_.load(std::memory_order_relaxed);
    t.batch_interleaved = batch_interleaved_.load(std::memory_order_relaxed);
    t.tpt_nodes_visited = tpt_nodes_visited_.load(std::memory_order_relaxed);
    t.tpt_entries_tested =
        tpt_entries_tested_.load(std::memory_order_relaxed);
    t.tpt_blocks_scanned =
        tpt_blocks_scanned_.load(std::memory_order_relaxed);
    return t;
  }

 private:
  Deadline deadline_;
  bool shed_to_rmf_ = false;
  Trace trace_;
  std::vector<PredictScratch> scratch_;
  EpochManager::Guard epoch_guard_;

  std::atomic<uint64_t> degraded_predictions_{0};
  std::atomic<uint64_t> shards_skipped_{0};
  std::atomic<uint64_t> trains_deferred_{0};
  std::atomic<uint64_t> reports_rejected_{0};
  std::atomic<uint64_t> objects_evaluated_{0};
  std::atomic<uint64_t> motion_fits_{0};
  std::atomic<uint64_t> batch_interleaved_{0};
  std::atomic<uint64_t> tpt_nodes_visited_{0};
  std::atomic<uint64_t> tpt_entries_tested_{0};
  std::atomic<uint64_t> tpt_blocks_scanned_{0};
};

}  // namespace hpm

#endif  // HPM_CORE_EXEC_CONTEXT_H_
