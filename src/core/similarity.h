// Similarity measures used to rank candidate patterns (paper §VI-A/C).

#ifndef HPM_CORE_SIMILARITY_H_
#define HPM_CORE_SIMILARITY_H_

#include "bitset/dynamic_bitset.h"
#include "geo/trajectory.h"

namespace hpm {

/// The position-weight family of §VI-A. The i-th '1' of a premise key
/// (counting from the right, 1-based) gets weight f(i) / sum_j f(j); the
/// paper evaluates four choices of f and reports linear and quadratic as
/// the most accurate.
enum class WeightFunction {
  kLinear,       ///< f(i) = i
  kQuadratic,    ///< f(i) = i^2
  kExponential,  ///< f(i) = 2^i
  kFactorial,    ///< f(i) = i!
};

/// Parses/prints a WeightFunction name ("linear", "quadratic",
/// "exponential", "factorial").
const char* WeightFunctionName(WeightFunction fn);

/// Normalised weight of the i-th of `size` set bits (1-based i).
/// Preconditions: 1 <= i <= size.
double PositionWeight(WeightFunction fn, int i, int size);

/// Premise similarity Sr (Equation 1): the sum of the weights of the
/// '1's in the pattern premise key `rk` that also appear in the query
/// premise key `rkq`. Weights are assigned to rk's set bits in ascending
/// position order — Property 1 guarantees higher positions are closer to
/// the consequence time. Result in [0, 1]; an empty rk yields 0.
/// Precondition: rk.size() == rkq.size().
double PremiseSimilarity(const DynamicBitset& rk, const DynamicBitset& rkq,
                         WeightFunction fn);

/// Consequence similarity Sc (Equation 3): 1 - |tq - t| / (t_eps + 1),
/// clamped to [0, 1]. `t` is the pattern's consequence offset, `tq` the
/// query offset, `t_eps` the time relaxation length.
double ConsequenceSimilarity(Timestamp t, Timestamp tq, Timestamp t_eps);

}  // namespace hpm

#endif  // HPM_CORE_SIMILARITY_H_
