#include "proptest/generators.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace hpm {
namespace proptest {

namespace {

/// Reflects `v` into [lo, hi] (one bounce is enough for steps smaller
/// than the extent).
double Reflect(double v, double lo, double hi) {
  if (v < lo) v = lo + (lo - v);
  if (v > hi) v = hi - (v - hi);
  return std::clamp(v, lo, hi);
}

}  // namespace

Point RandomPoint(Random& rng, const BoundingBox& extent) {
  HPM_CHECK(!extent.IsEmpty());
  return {rng.UniformDouble(extent.min().x, extent.max().x),
          rng.UniformDouble(extent.min().y, extent.max().y)};
}

BoundingBox RandomBox(Random& rng, const BoundingBox& extent) {
  return BoundingBox(RandomPoint(rng, extent), RandomPoint(rng, extent));
}

Trajectory RandomWalk(Random& rng, size_t n, const BoundingBox& extent,
                      double max_step) {
  Trajectory out;
  Point p = RandomPoint(rng, extent);
  for (size_t i = 0; i < n; ++i) {
    out.Append(p);
    p.x = Reflect(p.x + rng.UniformDouble(-max_step, max_step),
                  extent.min().x, extent.max().x);
    p.y = Reflect(p.y + rng.UniformDouble(-max_step, max_step),
                  extent.min().y, extent.max().y);
  }
  return out;
}

Trajectory LinearTrack(Random& rng, size_t n, const BoundingBox& extent,
                       Timestamp horizon) {
  HPM_CHECK(n >= 1);
  const Point start = RandomPoint(rng, extent);
  // The farthest extrapolated timestamp the caller may ask about.
  const double reach = static_cast<double>(n - 1 + horizon);
  const double span_x = extent.max().x - extent.min().x;
  const double span_y = extent.max().y - extent.min().y;
  // Velocity bounded so start + v * reach cannot leave the extent in
  // either direction; direction is then re-rolled freely.
  const double vx_cap =
      reach > 0 ? std::min(start.x - extent.min().x,
                           extent.max().x - start.x) / reach
                : span_x;
  const double vy_cap =
      reach > 0 ? std::min(start.y - extent.min().y,
                           extent.max().y - start.y) / reach
                : span_y;
  const Point velocity = {rng.UniformDouble(-vx_cap, vx_cap),
                          rng.UniformDouble(-vy_cap, vy_cap)};
  Trajectory out;
  for (size_t t = 0; t < n; ++t) {
    out.Append(start + velocity * static_cast<double>(t));
  }
  return out;
}

Trajectory PeriodicHistory(Random& rng, Timestamp period, int periods,
                           const BoundingBox& extent, double noise_stddev) {
  HPM_CHECK(period >= 1 && periods >= 1);
  const double margin = 6.0 * noise_stddev;
  BoundingBox inner(
      {extent.min().x + margin, extent.min().y + margin},
      {std::max(extent.min().x + margin, extent.max().x - margin),
       std::max(extent.min().y + margin, extent.max().y - margin)});
  std::vector<Point> route;
  route.reserve(static_cast<size_t>(period));
  for (Timestamp t = 0; t < period; ++t) {
    route.push_back(RandomPoint(rng, inner));
  }
  Trajectory out;
  for (int d = 0; d < periods; ++d) {
    for (Timestamp t = 0; t < period; ++t) {
      Point p = route[static_cast<size_t>(t)];
      p.x += rng.Gaussian(0.0, noise_stddev);
      p.y += rng.Gaussian(0.0, noise_stddev);
      out.Append(p);
    }
  }
  return out;
}

DynamicBitset RandomBitset(Random& rng, size_t size, double density) {
  DynamicBitset bits(size);
  for (size_t i = 0; i < size; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

PatternKey RandomPatternKey(Random& rng, size_t premise_length,
                            size_t consequence_length, double density) {
  HPM_CHECK(premise_length >= 1 && consequence_length >= 1);
  DynamicBitset premise = RandomBitset(rng, premise_length, density);
  DynamicBitset consequence =
      RandomBitset(rng, consequence_length, density);
  premise.Set(rng.Uniform(premise_length));
  consequence.Set(rng.Uniform(consequence_length));
  return PatternKey(std::move(premise), std::move(consequence));
}

std::vector<IndexedPattern> RandomPatternSet(Random& rng, int count,
                                             size_t premise_length,
                                             size_t consequence_length,
                                             double density) {
  std::vector<IndexedPattern> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    IndexedPattern pattern;
    pattern.key =
        RandomPatternKey(rng, premise_length, consequence_length, density);
    pattern.confidence = rng.UniformDouble(0.05, 1.0);
    pattern.consequence_region =
        static_cast<int>(rng.Uniform(premise_length));
    pattern.pattern_id = i;
    out.push_back(std::move(pattern));
  }
  return out;
}

Matrix RandomMatrix(Random& rng, size_t rows, size_t cols, double lo,
                    double hi) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.UniformDouble(lo, hi);
    }
  }
  return m;
}

Matrix RandomWellConditionedMatrix(Random& rng, size_t n) {
  Matrix m = RandomMatrix(rng, n, n, -1.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    m(i, i) += static_cast<double>(n);
  }
  return m;
}

}  // namespace proptest
}  // namespace hpm
