#include "proptest/proptest.h"

#include <cstdlib>
#include <mutex>

namespace hpm {
namespace proptest {

namespace {

/// splitmix64 step — the same mixer Random uses for seeding, so case
/// seeds inherit its avalanche behaviour.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::mutex forced_seed_mutex;
bool forced_seed_set = false;
bool env_seed_checked = false;
uint64_t forced_seed_value = 0;

}  // namespace

std::optional<uint64_t> ForcedSeed() {
  std::lock_guard<std::mutex> lock(forced_seed_mutex);
  if (!forced_seed_set && !env_seed_checked) {
    env_seed_checked = true;
    if (const char* env = std::getenv("HPM_PROP_SEED")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') {
        forced_seed_set = true;
        forced_seed_value = static_cast<uint64_t>(parsed);
      }
    }
  }
  if (!forced_seed_set) return std::nullopt;
  return forced_seed_value;
}

void SetForcedSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(forced_seed_mutex);
  forced_seed_set = true;
  forced_seed_value = seed;
}

uint64_t SeedForTest(uint64_t default_seed) {
  return ForcedSeed().value_or(default_seed);
}

std::string ReplayLine(uint64_t seed) {
  const std::string n = std::to_string(seed);
  return "[proptest] replay: re-run this test binary with --seed=" + n +
         "  (or HPM_PROP_SEED=" + n + ")";
}

uint64_t CaseSeed(uint64_t base_seed, uint64_t index) {
  return SplitMix64(base_seed + SplitMix64(index));
}

uint64_t HashName(const std::string& name) {
  // FNV-1a, then one splitmix round to spread short names.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return SplitMix64(h);
}

}  // namespace proptest
}  // namespace hpm
