// Random input generators for the property harness. Every generator is
// a pure function of the Random stream it is handed, so a case seed
// reproduces its inputs bit-for-bit (the contract the `--seed=` replay
// path depends on).

#ifndef HPM_PROPTEST_GENERATORS_H_
#define HPM_PROPTEST_GENERATORS_H_

#include <cstddef>
#include <vector>

#include "bitset/dynamic_bitset.h"
#include "common/random.h"
#include "geo/bounding_box.h"
#include "geo/point.h"
#include "geo/trajectory.h"
#include "linalg/matrix.h"
#include "tpt/pattern_key.h"
#include "tpt/tpt_tree.h"

namespace hpm {
namespace proptest {

/// Uniform point inside `extent` (must be non-empty).
Point RandomPoint(Random& rng, const BoundingBox& extent);

/// Uniform axis-aligned box with corners inside `extent`.
BoundingBox RandomBox(Random& rng, const BoundingBox& extent);

/// Random walk of `n` samples: uniform start, per-step displacement
/// uniform in [-max_step, max_step]^2, reflected into `extent`.
Trajectory RandomWalk(Random& rng, size_t n, const BoundingBox& extent,
                      double max_step);

/// Exactly-linear track: start + velocity * t for t in [0, n). The
/// start and velocity are chosen so every sample, and the extrapolation
/// up to `horizon` further steps, stays inside `extent`.
Trajectory LinearTrack(Random& rng, size_t n, const BoundingBox& extent,
                       Timestamp horizon);

/// Periodic history: a random per-offset route of length `period` is
/// drawn once, then repeated `periods` times with Gaussian noise of the
/// given stddev — the clusterable input the discovery pipeline expects.
/// The route's waypoints keep `margin` distance from the extent edges so
/// noisy samples stay in range.
Trajectory PeriodicHistory(Random& rng, Timestamp period, int periods,
                           const BoundingBox& extent, double noise_stddev);

/// Bitset of `size` bits where each bit is set with probability
/// `density`.
DynamicBitset RandomBitset(Random& rng, size_t size, double density);

/// Pattern key with the given part lengths; each part gets one
/// guaranteed set bit (as mined patterns and encodable queries have)
/// plus further bits at `density`.
PatternKey RandomPatternKey(Random& rng, size_t premise_length,
                            size_t consequence_length, double density);

/// `count` indexed patterns sharing the given key part lengths, with
/// dense pattern ids 0..count-1, random confidences in (0,1] and
/// consequence regions in [0, premise_length).
std::vector<IndexedPattern> RandomPatternSet(Random& rng, int count,
                                             size_t premise_length,
                                             size_t consequence_length,
                                             double density);

/// rows x cols matrix with entries uniform in [lo, hi).
Matrix RandomMatrix(Random& rng, size_t rows, size_t cols, double lo,
                    double hi);

/// n x n diagonally-dominant (hence well-conditioned) matrix: uniform
/// entries in [-1,1) plus n on the diagonal.
Matrix RandomWellConditionedMatrix(Random& rng, size_t n);

}  // namespace proptest
}  // namespace hpm

#endif  // HPM_PROPTEST_GENERATORS_H_
