// main() for property-test binaries: accepts `--seed=<n>` (or
// `--seed <n>`) before gtest flags and pins the proptest harness to that
// single case — the replay path every failure message prints. All other
// arguments pass through to gtest.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "proptest/proptest.h"

namespace hpm {
namespace proptest {

namespace {

bool ParseSeedValue(const char* text, uint64_t* seed) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *seed = static_cast<uint64_t>(parsed);
  return true;
}

}  // namespace

int RunGtestMain(int argc, char** argv) {
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    uint64_t seed = 0;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      if (!ParseSeedValue(argv[i] + 7, &seed)) {
        std::fprintf(stderr, "invalid --seed value: %s\n", argv[i] + 7);
        return 2;
      }
      SetForcedSeed(seed);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      if (!ParseSeedValue(argv[i + 1], &seed)) {
        std::fprintf(stderr, "invalid --seed value: %s\n", argv[i + 1]);
        return 2;
      }
      SetForcedSeed(seed);
      ++i;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int passthrough_argc = static_cast<int>(passthrough.size());
  passthrough.push_back(nullptr);
  ::testing::InitGoogleTest(&passthrough_argc, passthrough.data());
  return RUN_ALL_TESTS();
}

}  // namespace proptest
}  // namespace hpm

int main(int argc, char** argv) {
  return hpm::proptest::RunGtestMain(argc, argv);
}
