#include "proptest/shrink.h"

namespace hpm {
namespace proptest {

std::vector<DynamicBitset> ShrinkBitset(const DynamicBitset& bits) {
  std::vector<DynamicBitset> out;
  for (const size_t pos : bits.SetBits()) {
    DynamicBitset smaller = bits;
    smaller.Set(pos, false);
    out.push_back(std::move(smaller));
  }
  return out;
}

std::vector<Trajectory> ShrinkTrajectory(const Trajectory& trajectory) {
  std::vector<Trajectory> out;
  const size_t n = trajectory.size();
  if (n <= 1) return out;
  const auto prefix = [&trajectory](size_t count) {
    std::vector<Point> points(trajectory.points().begin(),
                              trajectory.points().begin() +
                                  static_cast<ptrdiff_t>(count));
    return Trajectory(std::move(points));
  };
  out.push_back(prefix(n / 2));
  out.push_back(prefix(n - 1));
  return out;
}

}  // namespace proptest
}  // namespace hpm
