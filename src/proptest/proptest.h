// Property-based testing harness (see docs/TESTING.md).
//
// A Property couples a deterministic generator (seeded Random -> input),
// a pure check (input -> failure message or empty string), and an
// optional shrinker (input -> smaller candidate inputs). The runner
// derives one seed per case from a base seed, reports the first failure
// after bounded greedy shrinking, and prints a one-line `--seed=<n>`
// replay command so any failure can be reproduced exactly — re-run the
// test binary with `--seed=<n>` (or HPM_PROP_SEED=<n> in the
// environment) and the runner executes just that case.
//
// The harness is gtest-agnostic: Run() returns a RunResult and test
// code asserts on it (EXPECT_TRUE(r.ok) << r.message). Non-property
// randomized tests reuse SeedForTest()/ReplayLine() so their failures
// carry the same replay line.

#ifndef HPM_PROPTEST_PROPTEST_H_
#define HPM_PROPTEST_PROPTEST_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace hpm {
namespace proptest {

/// Per-property runner configuration.
struct RunnerOptions {
  /// Random cases to run when no seed is forced.
  int num_cases = 100;

  /// Base seed the per-case seeds are derived from. Distinct properties
  /// in one binary should use distinct bases (the default mixes in the
  /// property name, so leaving it 0 is fine).
  uint64_t base_seed = 0;

  /// Total check() invocations the shrinking pass may spend.
  int max_shrink_checks = 200;
};

/// The seed forced for this process via `--seed=<n>` (parsed by
/// RunGtestMain) or the HPM_PROP_SEED environment variable; nullopt when
/// neither is present.
std::optional<uint64_t> ForcedSeed();

/// Installs a forced seed (used by the `--seed=` flag; tests may call it
/// to pin a case programmatically).
void SetForcedSeed(uint64_t seed);

/// The seed a randomized test should use: ForcedSeed() when set, else
/// `default_seed`. Pair with ReplayLine(seed) in a SCOPED_TRACE so every
/// failure names its seed.
uint64_t SeedForTest(uint64_t default_seed);

/// The one-line replay recipe printed on every failure, e.g.
/// "[proptest] replay: <binary> --seed=12345  (or HPM_PROP_SEED=12345)".
std::string ReplayLine(uint64_t seed);

/// Seed of case `index` under `base_seed` (splitmix64 of the pair).
uint64_t CaseSeed(uint64_t base_seed, uint64_t index);

/// Stable 64-bit hash of a property name, mixed into the base seed so
/// two properties with base_seed 0 explore different streams.
uint64_t HashName(const std::string& name);

/// Outcome of a property run.
struct RunResult {
  bool ok = true;

  /// On failure: property name, failing seed, replay line, the check's
  /// failure description, and the (possibly shrunk) input rendering.
  std::string message;
};

/// A named property over inputs of type T.
template <typename T>
class Property {
 public:
  using Generator = std::function<T(Random&)>;
  /// Returns "" when the input satisfies the property, else a failure
  /// description. Must be a pure function of the input.
  using Check = std::function<std::string(const T&)>;
  /// Returns strictly-simpler candidate inputs to try while shrinking.
  using Shrinker = std::function<std::vector<T>(const T&)>;
  using Printer = std::function<std::string(const T&)>;

  Property(std::string name, Generator gen, Check check)
      : name_(std::move(name)),
        gen_(std::move(gen)),
        check_(std::move(check)) {}

  Property& WithShrinker(Shrinker shrink) {
    shrink_ = std::move(shrink);
    return *this;
  }

  Property& WithPrinter(Printer print) {
    print_ = std::move(print);
    return *this;
  }

  /// Runs the property: one case per derived seed, or exactly the forced
  /// case when a seed is forced for the process.
  RunResult Run(const RunnerOptions& options = {}) const {
    const std::optional<uint64_t> forced = ForcedSeed();
    if (forced.has_value()) return RunCase(*forced);
    const uint64_t base = options.base_seed ^ HashName(name_);
    for (int i = 0; i < options.num_cases; ++i) {
      RunResult result = RunCase(CaseSeed(base, static_cast<uint64_t>(i)),
                                 options.max_shrink_checks);
      if (!result.ok) return result;
    }
    return RunResult{};
  }

 private:
  RunResult RunCase(uint64_t seed, int max_shrink_checks = 0) const {
    Random rng(seed);
    T input = gen_(rng);
    std::string failure = check_(input);
    if (failure.empty()) return RunResult{};

    // Greedy bounded shrink: keep the smallest input that still fails.
    int shrink_steps = 0;
    if (shrink_) {
      int budget = max_shrink_checks;
      bool progressed = true;
      while (progressed && budget > 0) {
        progressed = false;
        for (T& candidate : shrink_(input)) {
          if (--budget < 0) break;
          std::string candidate_failure = check_(candidate);
          if (!candidate_failure.empty()) {
            input = std::move(candidate);
            failure = std::move(candidate_failure);
            ++shrink_steps;
            progressed = true;
            break;
          }
        }
      }
    }

    RunResult result;
    result.ok = false;
    result.message = "property '" + name_ + "' failed (seed " +
                     std::to_string(seed) + ")\n" + ReplayLine(seed) + "\n" +
                     failure;
    if (shrink_steps > 0) {
      result.message +=
          "\n(input shrunk " + std::to_string(shrink_steps) + " steps)";
    }
    if (print_) result.message += "\ninput: " + print_(input);
    return result;
  }

  std::string name_;
  Generator gen_;
  Check check_;
  Shrinker shrink_;
  Printer print_;
};

/// gtest main replacement for property-test binaries: strips a leading
/// `--seed=<n>` / `--seed <n>` argument into SetForcedSeed, initialises
/// gtest with the rest, and runs all tests. Defined in proptest_main.cc
/// (link hpm_proptest_main instead of GTest::gtest_main).
int RunGtestMain(int argc, char** argv);

}  // namespace proptest
}  // namespace hpm

#endif  // HPM_PROPTEST_PROPTEST_H_
