// Bounded shrinking helpers for the property harness: each function
// returns a list of strictly-simpler candidates, ordered most-aggressive
// first so the runner's greedy pass converges in few checks.

#ifndef HPM_PROPTEST_SHRINK_H_
#define HPM_PROPTEST_SHRINK_H_

#include <cstddef>
#include <vector>

#include "bitset/dynamic_bitset.h"
#include "geo/trajectory.h"

namespace hpm {
namespace proptest {

/// Candidates for a vector input: both halves, then the vector with one
/// element deleted (at most `max_single_deletions` evenly spread
/// positions, so huge inputs stay cheap).
template <typename T>
std::vector<std::vector<T>> ShrinkVector(const std::vector<T>& v,
                                         size_t max_single_deletions = 16) {
  std::vector<std::vector<T>> out;
  if (v.size() <= 1) return out;
  const size_t half = v.size() / 2;
  out.emplace_back(v.begin(), v.begin() + static_cast<ptrdiff_t>(half));
  out.emplace_back(v.begin() + static_cast<ptrdiff_t>(half), v.end());
  const size_t deletions =
      v.size() < max_single_deletions ? v.size() : max_single_deletions;
  for (size_t k = 0; k < deletions; ++k) {
    const size_t pos = k * v.size() / deletions;
    std::vector<T> smaller;
    smaller.reserve(v.size() - 1);
    for (size_t i = 0; i < v.size(); ++i) {
      if (i != pos) smaller.push_back(v[i]);
    }
    out.push_back(std::move(smaller));
  }
  return out;
}

/// Candidates for a bitset input: clear one set bit at a time (the size
/// is part of the input's type-level contract and is preserved).
std::vector<DynamicBitset> ShrinkBitset(const DynamicBitset& bits);

/// Candidates for a trajectory input: prefix of half the samples, then
/// prefixes dropping one trailing sample.
std::vector<Trajectory> ShrinkTrajectory(const Trajectory& trajectory);

}  // namespace proptest
}  // namespace hpm

#endif  // HPM_PROPTEST_SHRINK_H_
