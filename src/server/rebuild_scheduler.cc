#include "server/rebuild_scheduler.h"

#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace hpm {
namespace {

/// Drops the calling thread to idle scheduling priority. Lowering is
/// unprivileged on Linux; failure (or another platform) degrades to a
/// normal-priority worker, never an error.
void EnterIdlePriority() {
#ifdef __linux__
  sched_param param{};
  (void)pthread_setschedparam(pthread_self(), SCHED_IDLE, &param);
#endif
}

}  // namespace

RebuildScheduler::RebuildScheduler(Options options,
                                   std::function<void(ObjectId)> rebuild,
                                   std::function<bool()> under_pressure)
    : options_(options),
      rebuild_(std::move(rebuild)),
      under_pressure_(std::move(under_pressure)) {
  worker_ = std::thread([this] { Worker(); });
}

RebuildScheduler::~RebuildScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

RebuildScheduler::EnqueueResult RebuildScheduler::Enqueue(ObjectId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queued_ids_.count(id) > 0) return EnqueueResult::kAlreadyPending;
    if (options_.max_pending > 0 && queue_.size() >= options_.max_pending) {
      return EnqueueResult::kDropped;
    }
    queue_.push_back(id);
    queued_ids_.insert(id);
  }
  work_cv_.notify_one();
  return EnqueueResult::kQueued;
}

void RebuildScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  work_cv_.notify_all();
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && active_ == 0) || stopping_;
  });
  draining_ = false;
}

size_t RebuildScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + static_cast<size_t>(active_);
}

void RebuildScheduler::Worker() {
  if (options_.idle_priority) EnterIdlePriority();
  auto last_start = std::chrono::steady_clock::time_point::min();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    if (!draining_ && under_pressure_ && under_pressure_()) {
      if (options_.deferred_counter != nullptr) {
        options_.deferred_counter->Increment();
      }
      lock.unlock();
      std::this_thread::sleep_for(options_.defer_backoff);
      lock.lock();
      continue;
    }
    if (options_.min_start_interval.count() > 0 && !draining_) {
      const auto next_allowed = last_start + options_.min_start_interval;
      if (std::chrono::steady_clock::now() < next_allowed) {
        // Wake early only to stop or drain; then re-evaluate everything.
        work_cv_.wait_until(lock, next_allowed,
                            [this] { return stopping_ || draining_; });
        continue;
      }
    }
    last_start = std::chrono::steady_clock::now();
    const ObjectId id = queue_.front();
    queue_.pop_front();
    queued_ids_.erase(id);
    ++active_;
    lock.unlock();
    rebuild_(id);
    lock.lock();
    --active_;
    idle_cv_.notify_all();
  }
}

}  // namespace hpm
