#include "server/replication.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

#include "common/fault_injection.h"
#include "io/atomic_file.h"
#include "io/eintr.h"
#include "io/wal.h"

namespace hpm {

namespace {

std::string SegmentFileName(int shard, uint64_t seq) {
  return "wal-" + std::to_string(shard) + "-" + std::to_string(seq) + ".log";
}

/// The size of a mirror file, 0 when absent.
uint64_t LocalSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

/// Appends `bytes` at the end of `path` (creating it). The mirror is a
/// byte copy of the primary's segment, not a journal we own: plain
/// appends suffice, and a replica crash mid-append just leaves a torn
/// tail that the restart catch-up truncates and re-fetches.
Status AppendBytes(const std::string& path, const std::string& bytes) {
  const int fd = RetryOnEintr([&] {
    return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  });
  if (fd < 0) {
    return Status::DataLoss("cannot open mirror segment " + path);
  }
  const bool ok =
      WriteAllFd(fd, bytes.data(), bytes.size()) ==
      static_cast<ssize_t>(bytes.size());
  RetryOnEintr([&] { return ::close(fd); });
  if (!ok) {
    return Status::DataLoss("short write to mirror segment " + path);
  }
  return Status::OK();
}

}  // namespace

StatusOr<uint64_t> BootstrapReplica(HpmClient& client,
                                    const std::string& data_dir,
                                    uint32_t fetch_chunk_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  if (!ec) std::filesystem::create_directories(data_dir + "/wal", ec);
  if (ec) {
    return Status::InvalidArgument("cannot create replica directory " +
                                   data_dir + ": " + ec.message());
  }

  StatusOr<ReplStateReply> state = client.ReplState(ReplStateRequest{});
  HPM_RETURN_IF_ERROR(state.status().Annotate("bootstrap: primary state"));
  const uint64_t gen = state->generation;
  if (gen == 0) return uint64_t{0};  // primary never saved; journal-only

  const std::string manifest_name = "MANIFEST-" + std::to_string(gen);
  std::string manifest;
  HPM_RETURN_IF_ERROR(
      client.FetchFile(manifest_name, fetch_chunk_bytes, &manifest)
          .Annotate("bootstrap"));

  // Fetch every object file the manifest names. The manifest's own
  // format is verified (header + checksum) by the store load after
  // bootstrap; here only the file names are needed, so parse leniently.
  size_t pos = 0;
  while (pos < manifest.size()) {
    const size_t eol = manifest.find('\n', pos);
    const std::string line =
        manifest.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos = eol == std::string::npos ? manifest.size() : eol + 1;
    int64_t id = 0;
    size_t history_len = 0, consumed = 0;
    int has_model = 0;
    if (std::sscanf(line.c_str(), "object %" SCNd64 " %zu %zu %d", &id,
                    &history_len, &consumed, &has_model) != 4) {
      continue;
    }
    const std::string stem = std::to_string(id) + "-" + std::to_string(gen);
    std::vector<std::string> names = {stem + ".csv"};
    if (has_model != 0) names.push_back(stem + ".model");
    for (const std::string& name : names) {
      std::string contents;
      HPM_RETURN_IF_ERROR(client.FetchFile(name, fetch_chunk_bytes, &contents)
                              .Annotate("bootstrap"));
      HPM_RETURN_IF_ERROR(
          AtomicWriteFile(data_dir + "/" + name, contents));
    }
  }
  HPM_RETURN_IF_ERROR(
      AtomicWriteFile(data_dir + "/" + manifest_name, manifest));
  // The commit point, mirroring SaveToDirectory: only once CURRENT
  // lands is the bootstrapped snapshot loadable. A kill anywhere above
  // leaves a directory a re-run simply overwrites.
  HPM_RETURN_IF_ERROR(
      AtomicWriteFile(data_dir + "/CURRENT", manifest_name + "\n"));
  return gen;
}

Replicator::Replicator(HpmClient* client, MovingObjectStore* store,
                       ReplicaHealth* health, uint64_t floor_gen,
                       ReplicatorOptions options)
    : client_(client),
      store_(store),
      health_(health),
      floor_gen_(floor_gen),
      options_(std::move(options)),
      mirror_dir_(options_.data_dir + "/wal") {
  std::error_code ec;
  std::filesystem::create_directories(mirror_dir_, ec);
}

Replicator::~Replicator() { Stop(); }

Status Replicator::ApplySegment(const std::string& path, int shard,
                                uint64_t seq, uint64_t base_gen,
                                bool truncate_torn_tail) {
  StatusOr<WalSegmentContents> contents =
      ReadWalSegment(path, truncate_torn_tail);
  HPM_RETURN_IF_ERROR(contents.status().Annotate("mirror " + path));
  if (!contents->header_ok) {
    // The header frame itself is still in flight (or torn); nothing to
    // apply yet. The remaining header bytes arrive with the next fetch.
    return Status::OK();
  }
  if (contents->corrupt) {
    // Corruption *before* the tail cannot be a half-fetched frame: the
    // mirrored bytes differ from what the primary served. Cut the
    // mirror back to the bad frame so the next sync re-fetches it; if
    // records already applied came from the cut region the count check
    // below flips resync.
    std::error_code ec;
    std::filesystem::resize_file(path, contents->corrupt_offset, ec);
  }

  size_t& cursor = cursors_[{shard, seq}];
  if (contents->records.size() < cursor) {
    resync_required_.store(true, std::memory_order_relaxed);
    return Status::DataLoss("mirror segment " + path +
                            " lost applied records (corrupt mirror or "
                            "diverged primary): resync required");
  }
  const bool skip_covered = base_gen < floor_gen_;
  while (cursor < contents->records.size()) {
    HPM_INJECT_FAULT("repl/apply");
    if (!skip_covered) {
      StatusOr<bool> applied =
          store_->ApplyReplicated(contents->records[cursor]);
      if (!applied.ok()) {
        if (applied.status().code() == StatusCode::kOutOfRange) {
          resync_required_.store(true, std::memory_order_relaxed);
        }
        return applied.status().Annotate("apply " + path);
      }
    }
    ++cursor;
    applied_records_.fetch_add(1, std::memory_order_relaxed);
  }
  if (contents->corrupt) {
    return Status::Unavailable("mirror segment " + path +
                               " truncated at corrupt frame; re-fetching");
  }
  return Status::OK();
}

Status Replicator::CatchUpFromMirror() {
  for (const WalSegmentInfo& info : ListWalSegments(mirror_dir_)) {
    if (!info.header_ok) continue;  // half-fetched header; sync resumes it
    HPM_RETURN_IF_ERROR(ApplySegment(info.path, info.shard, info.seq,
                                     info.base_gen,
                                     /*truncate_torn_tail=*/true));
  }
  return Status::OK();
}

Status Replicator::SyncSegment(const WireSegment& segment, uint64_t* lag) {
  const std::string name = SegmentFileName(segment.shard, segment.seq);
  const std::string path = mirror_dir_ + "/" + name;
  uint64_t local = LocalSize(path);

  if (local > segment.size) {
    // The primary's segment shrank: it replayed after a crash and cut a
    // torn tail we had already mirrored. Those bytes were never a
    // complete frame on the primary, so they were never applied here —
    // drop them and re-mirror whatever the primary appended since.
    std::error_code ec;
    std::filesystem::resize_file(path, segment.size, ec);
    if (ec) {
      return Status::DataLoss("cannot truncate mirror segment " + path +
                              ": " + ec.message());
    }
    local = segment.size;
  }

  while (local < segment.size) {
    ReplFetchRequest request;
    request.name = "wal/" + name;
    request.offset = local;
    request.max_bytes = static_cast<uint32_t>(
        std::min<uint64_t>(options_.fetch_chunk_bytes, segment.size - local));
    StatusOr<ReplFetchReply> chunk = client_->ReplFetch(request);
    HPM_RETURN_IF_ERROR(chunk.status().Annotate("fetch " + request.name));
    if (chunk->bytes.empty()) {
      // The primary no longer has these bytes (segment retired between
      // the listing and the fetch). Count the gap as lag; the next
      // listing resolves it.
      *lag += segment.size - local;
      return Status::OK();
    }
    HPM_RETURN_IF_ERROR(AppendBytes(path, chunk->bytes));
    local += chunk->bytes.size();
  }

  return ApplySegment(path, segment.shard, segment.seq, segment.base_gen,
                      /*truncate_torn_tail=*/false);
}

Status Replicator::SyncOnce() {
  ReplStateRequest heartbeat;
  heartbeat.follower_lag_bytes =
      health_->lag_bytes.load(std::memory_order_relaxed);
  heartbeat.follower_applied_records =
      applied_records_.load(std::memory_order_relaxed);
  StatusOr<ReplStateReply> state = client_->ReplState(heartbeat);
  HPM_RETURN_IF_ERROR(state.status().Annotate("sync: primary state"));

  uint64_t lag = 0;
  Status result = Status::OK();
  for (const WireSegment& segment : state->segments) {
    Status synced = SyncSegment(segment, &lag);
    if (!synced.ok()) {
      // Keep syncing the other shards' streams — they are independent —
      // but report the failure and skip the health stamp below.
      lag += segment.size > LocalSize(mirror_dir_ + "/" +
                                      SegmentFileName(segment.shard,
                                                      segment.seq))
                 ? segment.size -
                       LocalSize(mirror_dir_ + "/" +
                                 SegmentFileName(segment.shard, segment.seq))
                 : 0;
      if (result.ok()) result = synced;
    }
  }
  health_->lag_bytes.store(lag, std::memory_order_relaxed);
  health_->applied_records.store(
      applied_records_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  if (result.ok() && lag == 0) {
    // Everything the primary listed is mirrored and applied: the
    // replica now reflects the primary's generation as of this poll.
    health_->RecordSync(state->generation, 0);
  }
  return result;
}

void Replicator::Start() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = false;
  }
  sync_thread_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(stop_mutex_);
        stop_cv_.wait_for(lock, options_.poll_interval,
                          [this] { return stopping_; });
        if (stopping_) return;
      }
      if (resync_required_.load(std::memory_order_relaxed)) continue;
      Status synced = SyncOnce();
      std::lock_guard<std::mutex> lock(status_mutex_);
      last_status_ = std::move(synced);
    }
  });
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (sync_thread_.joinable()) sync_thread_.join();
}

Status Replicator::last_status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return last_status_;
}

}  // namespace hpm
