// The unified query-execution pipeline: every MovingObjectStore entry
// point — point predict, batch predict, range, kNN, and ingest — executes
// as one instantiation of the staged sequence
//
//   Admit -> Plan -> FanOut -> MergeRank -> Account
//
// * Admit    consults admission control (rung 2 of the overload ladder)
//            and holds the RAII ticket for the query's lifetime.
// * Plan     evaluates the rung-1 degradation ladder (queue depth,
//            deadline headroom) into the QueryContext and sizes its
//            scratch lanes.
// * FanOut   runs the per-shard / per-chunk work behind the per-shard
//            circuit breakers, on the pool with inline fallback under
//            backpressure.
// * MergeRank sorts and truncates fleet results in the entry point's
//            order.
// * Account  flushes the context's accumulators into the store's
//            AtomicOverloadStats and MetricsRegistry exactly once — the
//            single accounting point — records per-stage latencies, and
//            hands the per-query trace to the store's trace sink. It runs
//            on *every* exit path (the destructor invokes it if the entry
//            point returned early), so counts like admitted/shed stay
//            exact even for rejected or not-found queries.
//
// The pipeline owns the QueryContext that lower layers (predictor, TPT,
// motion fallback) see via PredictiveQuery::context.

#ifndef HPM_SERVER_QUERY_PIPELINE_H_
#define HPM_SERVER_QUERY_PIPELINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/admission.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/exec_context.h"
#include "server/store_types.h"

namespace hpm {

/// The store entry point a pipeline instance is executing.
enum class StoreOp {
  kReport = 0,
  kPredict,
  kPredictBatch,
  kRange,
  kNearest,
};
inline constexpr size_t kNumStoreOps = 5;

/// Stable short name ("report", "predict", "predict_batch", "range",
/// "nearest") — used in metric names and trace roots.
const char* StoreOpName(StoreOp op);

/// Pointers into the store's MetricsRegistry, resolved once at store
/// construction so the hot path never touches the registry lock.
struct StoreMetrics {
  explicit StoreMetrics(MetricsRegistry* registry);

  Counter* admitted[kNumStoreOps];
  Counter* shed[kNumStoreOps];
  Counter* degraded_predictions;
  Counter* shards_skipped;
  Counter* trains_deferred;
  Counter* reports_rejected;
  Counter* objects_evaluated;
  Counter* motion_fits;
  /// Batch-executor stall interleaves: times it switched away from a
  /// yielded traversal to advance another query's.
  Counter* batch_interleaved;
  /// Epoch-reclamation lifecycle (wired straight into the store's
  /// EpochManager, which increments them itself).
  Counter* epoch_pinned;
  Counter* epoch_retired;
  Counter* epoch_freed;
  Counter* tpt_nodes_visited;
  Counter* tpt_entries_tested;
  Counter* tpt_blocks_scanned;
  Counter* tpt_frozen_bytes;
  /// Durable-ingest journal (io/wal wired through the store; see
  /// docs/ROBUSTNESS.md). wal_disabled is a 0/1 health flag: it is
  /// incremented exactly once when a disk fault drops the store to
  /// non-durable serving.
  Counter* wal_appended;
  Counter* wal_synced;
  Counter* wal_replayed_records;
  Counter* wal_truncated_bytes;
  Counter* wal_disabled;
  /// Files moved into <dir>/quarantine/ by this store's load + replay.
  Counter* quarantined_files;
  /// Incremental pattern maintenance (server/rebuild_scheduler.h and
  /// mining/incremental_miner.h; see docs/OBSERVABILITY.md for the row
  /// semantics). miner.* counts stream-side maintenance events;
  /// rebuild.* counts background model-rebuild lifecycle events.
  Counter* miner_transactions;
  Counter* miner_unmatched_points;
  Counter* miner_promoted;
  Counter* miner_demoted;
  Counter* miner_candidates_evicted;
  Counter* rebuild_scheduled;
  Counter* rebuild_completed;
  Counter* rebuild_failed;
  Counter* rebuild_deferred;
  Counter* rebuild_dropped;

  LatencyHistogram* rebuild_build_us;
  LatencyHistogram* stage_admit;
  LatencyHistogram* stage_plan;
  LatencyHistogram* stage_fanout;
  LatencyHistogram* stage_merge;
  LatencyHistogram* op_total[kNumStoreOps];
};

/// Called with the finished per-query trace when the store has tracing
/// enabled. `op` is StoreOpName(op) of the traced query.
using TraceSink = std::function<void(const char* op, const Trace& trace)>;

/// One staged query execution. Stack-allocated in the entry point; stages
/// are member calls; Account runs at destruction if not invoked earlier.
class QueryPipeline {
 public:
  /// Borrowed store subsystems. All pointers outlive the pipeline.
  struct Env {
    AdmissionController* admission = nullptr;
    ThreadPool* pool = nullptr;
    const std::vector<std::unique_ptr<CircuitBreaker>>* breakers = nullptr;
    AtomicOverloadStats* stats = nullptr;
    StoreMetrics* metrics = nullptr;
    /// Rung-1 ladder thresholds (ObjectStoreOptions values).
    size_t degrade_queue_depth = 0;
    std::chrono::microseconds degrade_min_headroom{0};
    /// Non-null (and non-empty) when per-query tracing is on.
    const TraceSink* trace_sink = nullptr;
  };

  QueryPipeline(const Env& env, StoreOp op, Deadline deadline);
  ~QueryPipeline();

  QueryPipeline(const QueryPipeline&) = delete;
  QueryPipeline& operator=(const QueryPipeline&) = delete;

  QueryContext& context() { return ctx_; }
  StoreOp op() const { return op_; }

  /// Stage 1: admission control. `what` names the operation in rejection
  /// messages (kept identical to the pre-pipeline strings so retry-after
  /// handling and logs are unchanged). On rejection the query is counted
  /// shed; on success the ticket is held until the pipeline dies.
  Status Admit(const char* what);

  /// Stage 2: evaluates the rung-1 ladder into the context and sizes
  /// `lanes` scratch lanes.
  void Plan(size_t lanes);

  /// The rung-1 verdict against the *current* pool pressure (Plan uses
  /// this with the query's own deadline; deferred-training checks use an
  /// infinite one).
  bool ShouldShedNow(const Deadline& deadline) const;

  /// Extra planning work (e.g. batch snapshot acquisition) timed into the
  /// plan stage.
  template <typename Fn>
  auto RunPlan(Fn&& fn) {
    planned_ = true;
    ScopedSpan span(&ctx_.trace(), "plan", root_span_);
    const StageTimer timer(&plan_micros_);
    return fn();
  }

  /// Stage 3 for fleet queries: runs `shard_fn(shard, &hits)` for every
  /// shard whose breaker admits the call — on the pool when it has more
  /// than one worker (TrySubmit with inline fallback under backpressure),
  /// inline otherwise — records each outcome on the shard's breaker, and
  /// merges healthy shards in shard order. Failed/skipped shards flag the
  /// result partial (and count into the context) instead of failing the
  /// query. `shard_fn` writes hits for shard s using scratch lane s.
  using ShardFn =
      std::function<Status(int shard, std::vector<RangeHit>* hits)>;
  FleetQueryResult FanOut(const ShardFn& shard_fn);

  /// Stage 3 for batches: splits [0, total) into contiguous chunks, one
  /// per pool worker, running each via TrySubmit with inline fallback.
  /// `chunk_fn(begin, end, lane)` owns scratch lane `lane` exclusively.
  void FanOutChunks(
      size_t total,
      const std::function<void(size_t begin, size_t end, size_t lane)>&
          chunk_fn);

  /// Stage 3 for single-object work: runs `fn` inline, timed as fan-out.
  template <typename Fn>
  auto RunFanOut(Fn&& fn) {
    fanned_out_ = true;
    ScopedSpan span(&ctx_.trace(), "fanout", root_span_);
    const StageTimer timer(&fanout_micros_);
    return fn();
  }

  /// Stage 4: sorts `result->hits` with `less` and truncates to `limit`
  /// hits when limit >= 0.
  void MergeRank(FleetQueryResult* result,
                 const std::function<bool(const RangeHit&, const RangeHit&)>&
                     less,
                 int limit = -1);

  /// Stage 4 for non-fleet result assembly, timed as merge.
  template <typename Fn>
  auto RunMerge(Fn&& fn) {
    merged_ = true;
    ScopedSpan span(&ctx_.trace(), "merge", root_span_);
    const StageTimer timer(&merge_micros_);
    return fn();
  }

  /// Stage 5: the single accounting point (see file comment). Idempotent;
  /// invoked by the destructor when the entry point exited early.
  void Account();

 private:
  using Clock = std::chrono::steady_clock;

  /// Adds the scope's elapsed microseconds to *sink on destruction.
  class StageTimer {
   public:
    explicit StageTimer(uint64_t* sink)
        : sink_(sink), start_(Clock::now()) {}
    ~StageTimer() {
      *sink_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - start_)
              .count());
    }
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;

   private:
    uint64_t* sink_;
    Clock::time_point start_;
  };

  Env env_;
  StoreOp op_;
  QueryContext ctx_;
  Clock::time_point start_;

  std::optional<AdmissionTicket> ticket_;
  bool admitted_ = false;
  bool shed_ = false;
  bool planned_ = false;
  bool fanned_out_ = false;
  bool merged_ = false;
  bool accounted_ = false;

  uint64_t admit_micros_ = 0;
  uint64_t plan_micros_ = 0;
  uint64_t fanout_micros_ = 0;
  uint64_t merge_micros_ = 0;

  int root_span_ = -1;
};

}  // namespace hpm

#endif  // HPM_SERVER_QUERY_PIPELINE_H_
