#include "server/object_store.h"

#include <algorithm>
#include <future>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/retry.h"
#include "motion/recursive_motion.h"

namespace hpm {

MovingObjectStore::MovingObjectStore(ObjectStoreOptions options)
    : options_(std::move(options)),
      continuous_(std::make_unique<ContinuousState>()) {
  HPM_CHECK(options_.min_training_periods >= 1);
  HPM_CHECK(options_.update_batch_periods >= 1);
  HPM_CHECK(options_.recent_window >= 2);
  HPM_CHECK(options_.num_shards >= 1);
  HPM_CHECK(options_.query_threads >= 0);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  const int threads = options_.query_threads > 0
                          ? options_.query_threads
                          : ThreadPool::DefaultThreadCount();
  pool_ = std::make_unique<ThreadPool>(threads);
}

size_t MovingObjectStore::ShardIndex(ObjectId id, size_t num_shards) {
  // splitmix64 finaliser: object ids are often sequential, and the
  // identity hash would put runs of ids on the same shard.
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

Status MovingObjectStore::ReportLocation(ObjectId id,
                                         const Point& location) {
  Shard& shard = ShardFor(id);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.objects[id].history.Append(location);
  }
  HPM_RETURN_IF_ERROR(MaybeTrain(shard, id));
  if (HasContinuousQueries()) {
    QuerySnapshot snapshot;
    {
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      snapshot = MakeSnapshot(id, shard.objects.at(id));
    }
    EvaluateContinuousQueries(snapshot);
  }
  return Status::OK();
}

Status MovingObjectStore::ReportTrajectory(ObjectId id,
                                           const Trajectory& trajectory) {
  for (const Point& p : trajectory.points()) {
    HPM_RETURN_IF_ERROR(ReportLocation(id, p));
  }
  return Status::OK();
}

Status MovingObjectStore::MaybeTrain(Shard& shard, ObjectId id) {
  const Timestamp period = options_.predictor.regions.period;
  const size_t period_samples = static_cast<size_t>(period);

  // Decide under the writer lock; mine outside it. `training_in_flight`
  // keeps a second reporter of the same object from mining the same
  // batch concurrently — it re-checks the threshold on its next report.
  enum class Action { kNone, kInitial, kIncremental };
  Action action = Action::kNone;
  Trajectory training_input;
  std::shared_ptr<const HybridPredictor> base;
  size_t consumed_at_capture = 0;
  size_t whole_periods = 0;

  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    ObjectState& state = shard.objects.at(id);
    if (state.training_in_flight) return Status::OK();
    if (state.predictor == nullptr) {
      const size_t needed =
          static_cast<size_t>(options_.min_training_periods) * period_samples;
      if (state.history.size() < needed) return Status::OK();
      action = Action::kInitial;
      training_input = state.history;
    } else {
      const size_t fresh = state.history.size() - state.consumed_samples;
      const size_t batch =
          static_cast<size_t>(options_.update_batch_periods) * period_samples;
      if (fresh < batch) return Status::OK();
      whole_periods = (fresh / period_samples) * period_samples;
      StatusOr<Trajectory> suffix = state.history.Slice(
          static_cast<Timestamp>(state.consumed_samples),
          static_cast<Timestamp>(state.consumed_samples + whole_periods));
      if (!suffix.ok()) return suffix.status();
      action = Action::kIncremental;
      training_input = std::move(*suffix);
      base = state.predictor;
      consumed_at_capture = state.consumed_samples;
    }
    state.training_in_flight = true;
  }

  // Mining runs unlocked: readers keep serving the previous snapshot.
  // Transient (kUnavailable) build failures — a wedged allocator, an
  // injected fault — are retried with backoff before the swap is given
  // up; the RNG is seeded from the object id so schedules replay.
  Random retry_rng(0x74726e5f72747279ULL ^ static_cast<uint64_t>(id));
  StatusOr<std::unique_ptr<HybridPredictor>> built = RetryWithBackoff(
      RetryPolicy{}, retry_rng,
      [&]() -> StatusOr<std::unique_ptr<HybridPredictor>> {
        return action == Action::kInitial
                   ? HybridPredictor::Train(training_input,
                                            options_.predictor)
                   : base->WithNewHistory(training_input);
      });

  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  ObjectState& state = shard.objects.at(id);
  state.training_in_flight = false;
  if (!built.ok()) return built.status().Annotate("train");
  state.predictor =
      std::shared_ptr<const HybridPredictor>(std::move(*built));
  state.consumed_samples =
      action == Action::kInitial
          ? training_input.NumSubTrajectories(period) * period_samples
          : consumed_at_capture + whole_periods;
  return Status::OK();
}

std::vector<ObjectId> MovingObjectStore::ObjectIds() const {
  std::vector<ObjectId> ids;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    ids.reserve(ids.size() + shard->objects.size());
    for (const auto& [id, state] : shard->objects) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t MovingObjectStore::NumObjects() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->objects.size();
  }
  return total;
}

size_t MovingObjectStore::HistoryLength(ObjectId id) const {
  Shard& shard = ShardFor(id);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  const auto it = shard.objects.find(id);
  return it == shard.objects.end() ? 0 : it->second.history.size();
}

StatusOr<std::shared_ptr<const HybridPredictor>>
MovingObjectStore::GetPredictor(ObjectId id) const {
  Shard& shard = ShardFor(id);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  const auto it = shard.objects.find(id);
  if (it == shard.objects.end()) {
    return Status::NotFound("unknown object id");
  }
  if (it->second.predictor == nullptr) {
    return Status::FailedPrecondition("object has no trained model yet");
  }
  return it->second.predictor;
}

MovingObjectStore::QuerySnapshot MovingObjectStore::MakeSnapshot(
    ObjectId id, const ObjectState& state) const {
  QuerySnapshot snapshot;
  snapshot.id = id;
  snapshot.history_size = state.history.size();
  snapshot.now = static_cast<Timestamp>(state.history.size()) - 1;
  if (state.history.size() >= 2) {
    snapshot.recent =
        state.history.RecentMovements(snapshot.now, options_.recent_window);
  }
  snapshot.predictor = state.predictor;
  return snapshot;
}

StatusOr<std::vector<Prediction>> MovingObjectStore::PredictSnapshot(
    const QuerySnapshot& snapshot, Timestamp tq, int k,
    Deadline deadline) const {
  if (snapshot.history_size < 2) {
    return Status::FailedPrecondition(
        "object has fewer than 2 reported locations");
  }
  if (tq <= snapshot.now) {
    return Status::InvalidArgument(
        "query time must be after the object's last report");
  }
  PredictiveQuery query;
  query.recent_movements = snapshot.recent;
  query.current_time = snapshot.now;
  query.query_time = tq;
  query.k = k;
  query.deadline = deadline;

  if (snapshot.predictor != nullptr) {
    return snapshot.predictor->Predict(query);
  }
  // Cold start: pure motion function until the first training threshold.
  RecursiveMotionFunction rmf(options_.predictor.rmf);
  Prediction prediction;
  prediction.source = PredictionSource::kMotionFunction;
  prediction.location = query.recent_movements.back().location;
  if (rmf.Fit(query.recent_movements).ok()) {
    StatusOr<Point> p = rmf.Predict(tq);
    if (p.ok()) prediction.location = *p;
  }
  return std::vector<Prediction>{prediction};
}

StatusOr<std::vector<Prediction>> MovingObjectStore::PredictLocation(
    ObjectId id, Timestamp tq, int k, Deadline deadline) const {
  Shard& shard = ShardFor(id);
  QuerySnapshot snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto it = shard.objects.find(id);
    if (it == shard.objects.end()) {
      return Status::NotFound("unknown object id");
    }
    snapshot = MakeSnapshot(id, it->second);
  }
  return PredictSnapshot(snapshot, tq, k, deadline);
}

std::vector<StatusOr<std::vector<Prediction>>>
MovingObjectStore::PredictLocationBatch(const std::vector<ObjectId>& ids,
                                        Timestamp tq, int k,
                                        Deadline deadline) const {
  using Result = StatusOr<std::vector<Prediction>>;

  // One lock acquisition per shard: group the input indices by shard,
  // then snapshot each group in a single critical section.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    by_shard[ShardIndex(ids[i], shards_.size())].push_back(i);
  }
  std::vector<std::optional<QuerySnapshot>> snapshots(ids.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    std::shared_lock<std::shared_mutex> lock(shards_[s]->mutex);
    for (size_t i : by_shard[s]) {
      const auto it = shards_[s]->objects.find(ids[i]);
      if (it != shards_[s]->objects.end()) {
        snapshots[i] = MakeSnapshot(ids[i], it->second);
      }
    }
  }

  // Predict lock-free, fanning contiguous chunks out on the pool.
  std::vector<std::optional<Result>> results(ids.size());
  auto predict_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = snapshots[i].has_value()
                       ? PredictSnapshot(*snapshots[i], tq, k, deadline)
                       : Result(Status::NotFound("unknown object id"));
    }
  };
  const size_t workers = static_cast<size_t>(pool_->num_threads());
  if (workers <= 1 || ids.size() < 2) {
    predict_range(0, ids.size());
  } else {
    const size_t chunk = (ids.size() + workers - 1) / workers;
    std::vector<std::future<void>> futures;
    for (size_t begin = 0; begin < ids.size(); begin += chunk) {
      const size_t end = std::min(begin + chunk, ids.size());
      futures.push_back(
          pool_->Submit([&predict_range, begin, end] {
            predict_range(begin, end);
          }));
    }
    for (std::future<void>& f : futures) f.get();
  }

  std::vector<Result> out;
  out.reserve(ids.size());
  for (std::optional<Result>& r : results) out.push_back(std::move(*r));
  return out;
}

MovingObjectStore::ShardHits MovingObjectStore::RangeQueryShard(
    const Shard& shard, const BoundingBox& range, Timestamp tq,
    int k_per_object, Deadline deadline) const {
  std::vector<QuerySnapshot> snapshots;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    snapshots.reserve(shard.objects.size());
    for (const auto& [id, state] : shard.objects) {
      const Timestamp now = static_cast<Timestamp>(state.history.size()) - 1;
      if (state.history.size() < 2 || tq <= now) continue;
      snapshots.push_back(MakeSnapshot(id, state));
    }
  }
  ShardHits result;
  for (const QuerySnapshot& snapshot : snapshots) {
    // The deadline travels inside the query: once it expires, each
    // remaining object's answer degrades to the cheap RMF prediction
    // instead of the shard aborting with partial coverage.
    StatusOr<std::vector<Prediction>> predictions =
        PredictSnapshot(snapshot, tq, k_per_object, deadline);
    if (!predictions.ok()) {
      result.status = predictions.status();
      return result;
    }
    const Prediction* best = nullptr;
    for (const Prediction& p : *predictions) {
      if (!range.Contains(p.location)) continue;
      if (best == nullptr || p.score > best->score) best = &p;
    }
    if (best != nullptr) result.hits.push_back({snapshot.id, *best});
  }
  return result;
}

MovingObjectStore::ShardHits MovingObjectStore::NearestNeighborShard(
    const Shard& shard, Timestamp tq, Deadline deadline) const {
  std::vector<QuerySnapshot> snapshots;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    snapshots.reserve(shard.objects.size());
    for (const auto& [id, state] : shard.objects) {
      const Timestamp now = static_cast<Timestamp>(state.history.size()) - 1;
      if (state.history.size() < 2 || tq <= now) continue;
      snapshots.push_back(MakeSnapshot(id, state));
    }
  }
  ShardHits result;
  for (const QuerySnapshot& snapshot : snapshots) {
    StatusOr<std::vector<Prediction>> predictions =
        PredictSnapshot(snapshot, tq, 1, deadline);
    if (!predictions.ok()) {
      result.status = predictions.status();
      return result;
    }
    result.hits.push_back({snapshot.id, predictions->front()});
  }
  return result;
}

template <typename Fn>
StatusOr<std::vector<RangeHit>> MovingObjectStore::FanOut(Fn&& fn) const {
  std::vector<ShardHits> partials(shards_.size());
  if (pool_->num_threads() <= 1 || shards_.size() == 1) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      partials[s] = fn(*shards_[s]);
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      futures.push_back(pool_->Submit(
          [this, &fn, &partials, s] { partials[s] = fn(*shards_[s]); }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  std::vector<RangeHit> hits;
  for (ShardHits& partial : partials) {
    if (!partial.status.ok()) return partial.status;
    hits.insert(hits.end(),
                std::make_move_iterator(partial.hits.begin()),
                std::make_move_iterator(partial.hits.end()));
  }
  return hits;
}

StatusOr<std::vector<RangeHit>> MovingObjectStore::PredictiveRangeQuery(
    const BoundingBox& range, Timestamp tq, int k_per_object,
    Deadline deadline) const {
  if (range.IsEmpty()) {
    return Status::InvalidArgument("query range is empty");
  }
  if (k_per_object < 1) {
    return Status::InvalidArgument("k_per_object must be >= 1");
  }
  StatusOr<std::vector<RangeHit>> hits = FanOut(
      [this, &range, tq, k_per_object, deadline](const Shard& shard) {
        return RangeQueryShard(shard, range, tq, k_per_object, deadline);
      });
  if (!hits.ok()) return hits.status();
  std::sort(hits->begin(), hits->end(),
            [](const RangeHit& a, const RangeHit& b) {
              if (a.prediction.score != b.prediction.score) {
                return a.prediction.score > b.prediction.score;
              }
              return a.id < b.id;
            });
  return hits;
}

StatusOr<std::vector<RangeHit>> MovingObjectStore::PredictiveNearestNeighbors(
    const Point& target, Timestamp tq, int n, Deadline deadline) const {
  if (n < 1) {
    return Status::InvalidArgument("n must be >= 1");
  }
  StatusOr<std::vector<RangeHit>> hits = FanOut(
      [this, tq, deadline](const Shard& shard) {
        return NearestNeighborShard(shard, tq, deadline);
      });
  if (!hits.ok()) return hits.status();
  std::sort(hits->begin(), hits->end(),
            [&target](const RangeHit& a, const RangeHit& b) {
              const double da = SquaredDistance(a.prediction.location, target);
              const double db = SquaredDistance(b.prediction.location, target);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  if (static_cast<int>(hits->size()) > n) {
    hits->resize(static_cast<size_t>(n));
  }
  return hits;
}

int MovingObjectStore::RegisterContinuousQuery(const BoundingBox& range,
                                               Timestamp horizon,
                                               int k_per_object) {
  HPM_CHECK(!range.IsEmpty());
  HPM_CHECK(horizon >= 1);
  HPM_CHECK(k_per_object >= 1);
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  ContinuousQuery query;
  query.id = continuous_->next_query_id++;
  query.range = range;
  query.horizon = horizon;
  query.k_per_object = k_per_object;
  const int id = query.id;
  continuous_->queries.emplace(id, std::move(query));
  return id;
}

void MovingObjectStore::UnregisterContinuousQuery(int query_id) {
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  continuous_->queries.erase(query_id);
}

bool MovingObjectStore::HasContinuousQueries() const {
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  return !continuous_->queries.empty();
}

void MovingObjectStore::EvaluateContinuousQueries(
    const QuerySnapshot& snapshot) {
  if (snapshot.history_size < 2) return;
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  for (auto& [query_id, query] : continuous_->queries) {
    const Timestamp tq = snapshot.now + query.horizon;
    StatusOr<std::vector<Prediction>> predictions =
        PredictSnapshot(snapshot, tq, query.k_per_object);
    if (!predictions.ok()) continue;
    const Prediction* matching = nullptr;
    for (const Prediction& p : *predictions) {
      if (query.range.Contains(p.location)) {
        if (matching == nullptr || p.score > matching->score) matching = &p;
      }
    }
    const bool inside_now = matching != nullptr;
    const auto it = query.inside.find(snapshot.id);
    const bool inside_before = it != query.inside.end() && it->second;
    if (inside_now != inside_before) {
      ContinuousEvent event;
      event.query_id = query_id;
      event.object = snapshot.id;
      event.entered = inside_now;
      event.prediction = inside_now ? *matching : predictions->front();
      event.evaluated_at = tq;
      std::lock_guard<std::mutex> events_lock(continuous_->events_mutex);
      continuous_->pending_events.push_back(std::move(event));
    }
    query.inside[snapshot.id] = inside_now;
  }
}

std::vector<MovingObjectStore::ContinuousEvent>
MovingObjectStore::DrainContinuousEvents() {
  std::lock_guard<std::mutex> lock(continuous_->events_mutex);
  std::vector<ContinuousEvent> events =
      std::move(continuous_->pending_events);
  continuous_->pending_events.clear();
  return events;
}

}  // namespace hpm
