#include "server/object_store.h"

#include <algorithm>

#include "motion/recursive_motion.h"

namespace hpm {

MovingObjectStore::MovingObjectStore(ObjectStoreOptions options)
    : options_(std::move(options)) {
  HPM_CHECK(options_.min_training_periods >= 1);
  HPM_CHECK(options_.update_batch_periods >= 1);
  HPM_CHECK(options_.recent_window >= 2);
}

Status MovingObjectStore::ReportLocation(ObjectId id,
                                         const Point& location) {
  ObjectState& state = objects_[id];
  state.history.Append(location);
  HPM_RETURN_IF_ERROR(MaybeTrain(&state));
  if (!continuous_queries_.empty()) {
    EvaluateContinuousQueries(id, state);
  }
  return Status::OK();
}

Status MovingObjectStore::ReportTrajectory(ObjectId id,
                                           const Trajectory& trajectory) {
  for (const Point& p : trajectory.points()) {
    HPM_RETURN_IF_ERROR(ReportLocation(id, p));
  }
  return Status::OK();
}

Status MovingObjectStore::MaybeTrain(ObjectState* state) {
  const Timestamp period = options_.predictor.regions.period;
  const size_t period_samples = static_cast<size_t>(period);

  if (state->predictor == nullptr) {
    const size_t needed =
        static_cast<size_t>(options_.min_training_periods) * period_samples;
    if (state->history.size() < needed) return Status::OK();
    auto trained = HybridPredictor::Train(state->history,
                                          options_.predictor);
    if (!trained.ok()) return trained.status();
    state->predictor = std::move(*trained);
    state->consumed_samples =
        state->history.NumSubTrajectories(period) * period_samples;
    return Status::OK();
  }

  const size_t fresh = state->history.size() - state->consumed_samples;
  const size_t batch =
      static_cast<size_t>(options_.update_batch_periods) * period_samples;
  if (fresh < batch) return Status::OK();
  const size_t whole_periods = (fresh / period_samples) * period_samples;
  StatusOr<Trajectory> suffix = state->history.Slice(
      static_cast<Timestamp>(state->consumed_samples),
      static_cast<Timestamp>(state->consumed_samples + whole_periods));
  if (!suffix.ok()) return suffix.status();
  StatusOr<size_t> added = state->predictor->IncorporateNewHistory(*suffix);
  if (!added.ok()) return added.status();
  state->consumed_samples += whole_periods;
  return Status::OK();
}

std::vector<ObjectId> MovingObjectStore::ObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, state] : objects_) ids.push_back(id);
  return ids;
}

size_t MovingObjectStore::HistoryLength(ObjectId id) const {
  const auto it = objects_.find(id);
  return it == objects_.end() ? 0 : it->second.history.size();
}

StatusOr<const HybridPredictor*> MovingObjectStore::GetPredictor(
    ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("unknown object id");
  }
  if (it->second.predictor == nullptr) {
    return Status::FailedPrecondition("object has no trained model yet");
  }
  return static_cast<const HybridPredictor*>(it->second.predictor.get());
}

StatusOr<std::vector<Prediction>> MovingObjectStore::PredictForState(
    const ObjectState& state, Timestamp tq, int k) const {
  if (state.history.size() < 2) {
    return Status::FailedPrecondition(
        "object has fewer than 2 reported locations");
  }
  const Timestamp now =
      static_cast<Timestamp>(state.history.size()) - 1;
  if (tq <= now) {
    return Status::InvalidArgument(
        "query time must be after the object's last report");
  }
  PredictiveQuery query;
  query.recent_movements =
      state.history.RecentMovements(now, options_.recent_window);
  query.current_time = now;
  query.query_time = tq;
  query.k = k;

  if (state.predictor != nullptr) {
    return state.predictor->Predict(query);
  }
  // Cold start: pure motion function until the first training threshold.
  RecursiveMotionFunction rmf(options_.predictor.rmf);
  Prediction prediction;
  prediction.source = PredictionSource::kMotionFunction;
  prediction.location = query.recent_movements.back().location;
  if (rmf.Fit(query.recent_movements).ok()) {
    StatusOr<Point> p = rmf.Predict(tq);
    if (p.ok()) prediction.location = *p;
  }
  return std::vector<Prediction>{prediction};
}

StatusOr<std::vector<Prediction>> MovingObjectStore::PredictLocation(
    ObjectId id, Timestamp tq, int k) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("unknown object id");
  }
  return PredictForState(it->second, tq, k);
}

StatusOr<std::vector<RangeHit>> MovingObjectStore::PredictiveRangeQuery(
    const BoundingBox& range, Timestamp tq, int k_per_object) const {
  if (range.IsEmpty()) {
    return Status::InvalidArgument("query range is empty");
  }
  if (k_per_object < 1) {
    return Status::InvalidArgument("k_per_object must be >= 1");
  }
  std::vector<RangeHit> hits;
  for (const auto& [id, state] : objects_) {
    const Timestamp now =
        static_cast<Timestamp>(state.history.size()) - 1;
    if (state.history.size() < 2 || tq <= now) continue;
    StatusOr<std::vector<Prediction>> predictions =
        PredictForState(state, tq, k_per_object);
    if (!predictions.ok()) return predictions.status();
    const Prediction* best = nullptr;
    for (const Prediction& p : *predictions) {
      if (!range.Contains(p.location)) continue;
      if (best == nullptr || p.score > best->score) best = &p;
    }
    if (best != nullptr) hits.push_back({id, *best});
  }
  std::sort(hits.begin(), hits.end(),
            [](const RangeHit& a, const RangeHit& b) {
              if (a.prediction.score != b.prediction.score) {
                return a.prediction.score > b.prediction.score;
              }
              return a.id < b.id;
            });
  return hits;
}

StatusOr<std::vector<RangeHit>> MovingObjectStore::PredictiveNearestNeighbors(
    const Point& target, Timestamp tq, int n) const {
  if (n < 1) {
    return Status::InvalidArgument("n must be >= 1");
  }
  std::vector<RangeHit> hits;
  for (const auto& [id, state] : objects_) {
    const Timestamp now =
        static_cast<Timestamp>(state.history.size()) - 1;
    if (state.history.size() < 2 || tq <= now) continue;
    StatusOr<std::vector<Prediction>> predictions =
        PredictForState(state, tq, 1);
    if (!predictions.ok()) return predictions.status();
    hits.push_back({id, predictions->front()});
  }
  std::sort(hits.begin(), hits.end(),
            [&target](const RangeHit& a, const RangeHit& b) {
              const double da = SquaredDistance(a.prediction.location, target);
              const double db = SquaredDistance(b.prediction.location, target);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  if (static_cast<int>(hits.size()) > n) {
    hits.resize(static_cast<size_t>(n));
  }
  return hits;
}

int MovingObjectStore::RegisterContinuousQuery(const BoundingBox& range,
                                               Timestamp horizon,
                                               int k_per_object) {
  HPM_CHECK(!range.IsEmpty());
  HPM_CHECK(horizon >= 1);
  HPM_CHECK(k_per_object >= 1);
  ContinuousQuery query;
  query.id = next_query_id_++;
  query.range = range;
  query.horizon = horizon;
  query.k_per_object = k_per_object;
  const int id = query.id;
  continuous_queries_.emplace(id, std::move(query));
  return id;
}

void MovingObjectStore::UnregisterContinuousQuery(int query_id) {
  continuous_queries_.erase(query_id);
}

void MovingObjectStore::EvaluateContinuousQueries(ObjectId id,
                                                  const ObjectState& state) {
  if (state.history.size() < 2) return;
  const Timestamp now = static_cast<Timestamp>(state.history.size()) - 1;
  for (auto& [query_id, query] : continuous_queries_) {
    const Timestamp tq = now + query.horizon;
    StatusOr<std::vector<Prediction>> predictions =
        PredictForState(state, tq, query.k_per_object);
    if (!predictions.ok()) continue;
    const Prediction* matching = nullptr;
    for (const Prediction& p : *predictions) {
      if (query.range.Contains(p.location)) {
        if (matching == nullptr || p.score > matching->score) matching = &p;
      }
    }
    const bool inside_now = matching != nullptr;
    const auto it = query.inside.find(id);
    const bool inside_before = it != query.inside.end() && it->second;
    if (inside_now != inside_before) {
      ContinuousEvent event;
      event.query_id = query_id;
      event.object = id;
      event.entered = inside_now;
      event.prediction =
          inside_now ? *matching : predictions->front();
      event.evaluated_at = tq;
      pending_events_.push_back(std::move(event));
    }
    query.inside[id] = inside_now;
  }
}

std::vector<MovingObjectStore::ContinuousEvent>
MovingObjectStore::DrainContinuousEvents() {
  std::vector<ContinuousEvent> events = std::move(pending_events_);
  pending_events_.clear();
  return events;
}

}  // namespace hpm
