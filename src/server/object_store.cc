#include "server/object_store.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "motion/recursive_motion.h"

namespace hpm {

std::string ShardQueryFaultSite(int shard) {
  return "server/shard_query:" + std::to_string(shard);
}

MovingObjectStore::MovingObjectStore(ObjectStoreOptions options)
    : options_(std::move(options)),
      continuous_(std::make_unique<ContinuousState>()),
      stats_(std::make_unique<AtomicOverloadStats>()),
      metrics_registry_(std::make_unique<MetricsRegistry>()) {
  HPM_CHECK(options_.min_training_periods >= 1);
  HPM_CHECK(options_.update_batch_periods >= 1);
  HPM_CHECK(options_.recent_window >= 2);
  HPM_CHECK(options_.num_shards >= 1);
  HPM_CHECK(options_.query_threads >= 0);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  ThreadPoolOptions pool_options;
  pool_options.num_threads = options_.query_threads > 0
                                 ? options_.query_threads
                                 : ThreadPool::DefaultThreadCount();
  pool_options.max_queue_depth = options_.max_pool_queue;
  pool_ = std::make_unique<ThreadPool>(pool_options);
  admission_ = std::make_unique<AdmissionController>(options_.admission);
  breakers_.reserve(shards_.size());
  for (int i = 0; i < options_.num_shards; ++i) {
    breakers_.push_back(
        std::make_unique<CircuitBreaker>(options_.breaker));
    if (options_.breaker_listener) {
      auto listener = options_.breaker_listener;
      breakers_.back()->SetStateListener(
          [listener, i](CircuitBreaker::State from,
                        CircuitBreaker::State to) { listener(i, from, to); });
    }
  }
  metrics_ = std::make_unique<StoreMetrics>(metrics_registry_.get());
  wal_disabled_ = std::make_unique<std::atomic<bool>>(false);
  generation_ = std::make_unique<std::atomic<uint64_t>>(0);
  replaying_ = std::make_unique<std::atomic<bool>>(false);
  scheduler_mu_ = std::make_unique<std::mutex>();
  scheduler_ptr_ = std::make_unique<std::atomic<RebuildScheduler*>>(nullptr);
  EpochOptions epoch_options;
  epoch_options.pinned_counter = metrics_->epoch_pinned;
  epoch_options.retired_counter = metrics_->epoch_retired;
  epoch_options.freed_counter = metrics_->epoch_freed;
  epoch_ = std::make_unique<EpochManager>(epoch_options);
  if (!options_.durability.wal_dir.empty()) {
    // A journal that cannot be opened degrades the store to non-durable
    // serving instead of failing construction — disk faults degrade.
    if (Status ready = InitWal(/*base_gen=*/0); !ready.ok()) {
      DisableWal(ready);
    }
  }
}

Status MovingObjectStore::InitWal(uint64_t base_gen) {
  const std::string& dir = options_.durability.wal_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::DataLoss("cannot create wal directory " + dir + ": " +
                            ec.message());
  }
  WalWriterOptions wal_options;
  wal_options.sync_policy = options_.durability.sync_policy;
  wal_options.sync_interval = options_.durability.sync_interval;
  wal_options.clock = options_.durability.clock;
  wal_options.max_segment_bytes = options_.durability.max_segment_bytes;
  // Continue each shard's sequence past whatever is already on disk —
  // recovered segments are never appended to, only replayed.
  std::vector<uint64_t> next_seq(shards_.size(), 0);
  for (const WalSegmentInfo& info : ListWalSegments(dir)) {
    if (info.shard >= 0 &&
        static_cast<size_t>(info.shard) < next_seq.size()) {
      next_seq[static_cast<size_t>(info.shard)] =
          std::max(next_seq[static_cast<size_t>(info.shard)], info.seq + 1);
    }
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    StatusOr<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(dir, static_cast<int>(i), next_seq[i], base_gen,
                        wal_options);
    if (!writer.ok()) {
      return writer.status().Annotate("wal open shard " + std::to_string(i));
    }
    std::lock_guard<std::mutex> lock(shards_[i]->write_mutex);
    shards_[i]->wal = std::move(*writer);
  }
  return Status::OK();
}

void MovingObjectStore::WalAppend(Shard& shard, const WalRecord& record) {
  if (shard.wal == nullptr ||
      wal_disabled_->load(std::memory_order_relaxed)) {
    return;
  }
  bool synced = false;
  if (Status appended = shard.wal->Append(record, &synced);
      !appended.ok()) {
    DisableWal(appended.Annotate("wal append"));
    return;
  }
  metrics_->wal_appended->Increment();
  if (synced) metrics_->wal_synced->Increment();
}

void MovingObjectStore::DisableWal(const Status& cause) const {
  (void)cause;  // the health flag + metric are the diagnostic surface
  bool expected = false;
  if (wal_disabled_->compare_exchange_strong(expected, true,
                                             std::memory_order_relaxed)) {
    metrics_->wal_disabled->Increment();
  }
}

uint64_t MovingObjectStore::ApplyWalRecord(const WalRecord& record) {
  // Crash replay tolerates everything ApplyReplicated refuses: covered
  // records (overlapping rotated segments) and gaps (stale segments)
  // are simply not applied.
  const StatusOr<bool> applied = ApplyReplicated(record);
  return applied.ok() && *applied ? 1 : 0;
}

StatusOr<bool> MovingObjectStore::ApplyReplicated(const WalRecord& record) {
  Shard& shard = ShardFor(record.id);
  if (record.type == WalRecord::Type::kRejected) {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    ++shard.rejected_reports[record.id];
    WalAppend(shard, record);
    return true;
  }
  if (record.type == WalRecord::Type::kRejectedBaseline) {
    // Save-time tally seed: the snapshot this segment sits on top of
    // doesn't carry rejection counts, so the baseline restores them.
    // Assignment (not increment) keeps replay idempotent when several
    // baselines for the same object appear across segments.
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    if (record.t >= 0) {
      shard.rejected_reports[record.id] = static_cast<uint64_t>(record.t);
      WalAppend(shard, record);
    }
    return true;
  }
  if (!std::isfinite(record.x) || !std::isfinite(record.y) ||
      record.t < 0) {
    // Journaled reports were validated at ingest; refuse bad replays.
    return Status::InvalidArgument("malformed journal record for object " +
                                   std::to_string(record.id));
  }
  {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    auto it = shard.records.find(record.id);
    const Timestamp next =
        it == shard.records.end()
            ? 0
            : static_cast<Timestamp>(it->second->history.size());
    // t < next: the local state already contains this record (segments
    // rotated out mid-save overlap the generation that covered them;
    // replication re-delivers across follower restarts).
    if (record.t < next) return false;
    // t > next: a gap from a stale, retired or wrongly ordered segment —
    // never fabricate history. A follower getting this must resync.
    if (record.t > next) {
      return Status::OutOfRange(
          "journal gap for object " + std::to_string(record.id) +
          ": record t=" + std::to_string(record.t) + ", next=" +
          std::to_string(next));
    }
    const bool created = it == shard.records.end();
    if (created) {
      it = shard.records
               .emplace(record.id, std::make_unique<ObjectRecord>(record.id))
               .first;
      if (options_.rebuild.incremental) it->second->miner = NewMiner();
    }
    ObjectRecord& rec = *it->second;
    rec.history.Append(Point{record.x, record.y});
    if (rec.miner != nullptr) rec.miner->Observe(Point{record.x, record.y});
    // A store with its own journal attached re-journals the applied
    // record before publishing, exactly like live ingest; during
    // LoadFromDirectory replay no writer is attached yet and this is a
    // no-op.
    WalAppend(shard, record);
    PublishView(rec, BuildView(rec));
    if (created) PublishTable(shard);
  }
  // Re-run the training thresholds exactly as live ingest would have:
  // the replayed store's models then match an uninterrupted store's.
  // A training failure leaves the history intact (thresholds re-fire on
  // the next report), so it never fails the recovery.
  QueryPipeline pipeline(PipelineEnv(), StoreOp::kReport,
                         Deadline::Infinite());
  (void)MaybeTrain(shard, record.id, pipeline,
                   /*allow_background=*/
                   !replaying_->load(std::memory_order_relaxed));
  return true;
}

size_t MovingObjectStore::ShardIndex(ObjectId id, size_t num_shards) {
  // splitmix64 finaliser: object ids are often sequential, and the
  // identity hash would put runs of ids on the same shard.
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

const MovingObjectStore::ObjectRecord* MovingObjectStore::ShardTable::Find(
    ObjectId id) const {
  const auto it = std::lower_bound(
      records.begin(), records.end(), id,
      [](const ObjectRecord* record, ObjectId key) { return record->id < key; });
  if (it == records.end() || (*it)->id != id) return nullptr;
  return *it;
}

const MovingObjectStore::ObjectView* MovingObjectStore::BuildView(
    const ObjectRecord& record) const {
  auto* view = new ObjectView;
  view->id = record.id;
  view->history_size = record.history.size();
  view->now = static_cast<Timestamp>(record.history.size()) - 1;
  if (record.history.size() >= 2) {
    view->recent =
        record.history.RecentMovements(view->now, options_.recent_window);
  }
  view->predictor = record.predictor;
  return view;
}

void MovingObjectStore::PublishView(ObjectRecord& record,
                                    const ObjectView* view) {
  const ObjectView* old =
      record.view.exchange(view, std::memory_order_release);
  if (old != nullptr) epoch_->Retire(old);
}

void MovingObjectStore::PublishTable(Shard& shard) {
  auto* table = new ShardTable;
  table->records.reserve(shard.records.size());
  // The record map is id-sorted, so the table comes out Find()-able.
  for (const auto& [id, record] : shard.records) {
    table->records.push_back(record.get());
  }
  const ShardTable* old =
      shard.table.exchange(table, std::memory_order_release);
  epoch_->Retire(old);
}

const MovingObjectStore::ObjectView* MovingObjectStore::FindView(
    const Shard& shard, ObjectId id) const {
  const ShardTable* table = shard.table.load(std::memory_order_acquire);
  const ObjectRecord* record = table->Find(id);
  if (record == nullptr) return nullptr;
  return record->view.load(std::memory_order_acquire);
}

QueryPipeline::Env MovingObjectStore::PipelineEnv() const {
  QueryPipeline::Env env;
  env.admission = admission_.get();
  env.pool = pool_.get();
  env.breakers = &breakers_;
  env.stats = stats_.get();
  env.metrics = metrics_.get();
  env.degrade_queue_depth = options_.degrade_queue_depth;
  env.degrade_min_headroom = options_.degrade_min_headroom;
  env.trace_sink = options_.trace_sink ? &options_.trace_sink : nullptr;
  return env;
}

void MovingObjectStore::RecordRejectedReport(ObjectId id,
                                             QueryContext& ctx) {
  ctx.CountRejectedReport();
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  ++shard.rejected_reports[id];
  WalRecord journal;
  journal.type = WalRecord::Type::kRejected;
  journal.id = id;
  WalAppend(shard, journal);
}

uint64_t MovingObjectStore::RejectedReports(ObjectId id) const {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  const auto it = shard.rejected_reports.find(id);
  return it == shard.rejected_reports.end() ? 0 : it->second;
}

Status MovingObjectStore::Ingest(ObjectId id, const Point& location,
                                 const Timestamp* expected_t) {
  QueryPipeline pipeline(PipelineEnv(), StoreOp::kReport,
                         Deadline::Infinite());
  QueryContext& ctx = pipeline.context();

  // Input validation precedes admission: a malformed report consumes no
  // admission token (it is rejected, not shed).
  if (expected_t != nullptr && *expected_t < 0) {
    RecordRejectedReport(id, ctx);
    return Status::InvalidArgument("report: negative timestamp");
  }
  if (!std::isfinite(location.x) || !std::isfinite(location.y)) {
    RecordRejectedReport(id, ctx);
    return Status::InvalidArgument(
        "report: non-finite coordinate rejected");
  }
  HPM_RETURN_IF_ERROR(pipeline.Admit("report"));
  pipeline.Plan(1);

  Shard& shard = ShardFor(id);
  Status appended = pipeline.RunFanOut([&]() -> Status {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    // find(), not emplace first: a rejected report for an unknown object
    // must not create a phantom entry.
    auto it = shard.records.find(id);
    if (expected_t != nullptr) {
      const Timestamp next =
          it == shard.records.end()
              ? 0
              : static_cast<Timestamp>(it->second->history.size());
      if (*expected_t != next) {
        ++shard.rejected_reports[id];
        ctx.CountRejectedReport();
        WalRecord journal;
        journal.type = WalRecord::Type::kRejected;
        journal.id = id;
        WalAppend(shard, journal);
        return Status::InvalidArgument(
            *expected_t < next
                ? "report: non-monotone timestamp (object clock is at " +
                      std::to_string(next) + ")"
                : "report: timestamp gap (object clock is at " +
                      std::to_string(next) + ")");
      }
    }
    const bool created = it == shard.records.end();
    // Journal before the epoch-published view swap: once a reader can
    // observe the report, a crash must replay it. A WAL failure here
    // degrades the store to non-durable serving — the report still lands.
    WalRecord journal;
    journal.type = WalRecord::Type::kReport;
    journal.id = id;
    journal.t = created ? 0
                        : static_cast<Timestamp>(it->second->history.size());
    journal.x = location.x;
    journal.y = location.y;
    WalAppend(shard, journal);
    if (created) {
      it = shard.records
               .emplace(id, std::make_unique<ObjectRecord>(id))
               .first;
      if (options_.rebuild.incremental) it->second->miner = NewMiner();
    }
    ObjectRecord& record = *it->second;
    record.history.Append(location);
    if (record.miner != nullptr) record.miner->Observe(location);
    // View before table: a record must never be reachable viewless.
    PublishView(record, BuildView(record));
    if (created) PublishTable(shard);
    return Status::OK();
  });
  HPM_RETURN_IF_ERROR(appended);
  HPM_RETURN_IF_ERROR(MaybeTrain(shard, id, pipeline,
                                 /*allow_background=*/true));
  if (HasContinuousQueries()) {
    pipeline.RunMerge([&] {
      const EpochManager::Guard guard = epoch_->Pin();
      const ObjectView* view = FindView(shard, id);
      if (view != nullptr) EvaluateContinuousQueries(*view);
    });
  }
  return Status::OK();
}

Status MovingObjectStore::ReportLocation(ObjectId id,
                                         const Point& location) {
  return Ingest(id, location, nullptr);
}

Status MovingObjectStore::ReportLocationAt(ObjectId id, Timestamp t,
                                           const Point& location) {
  return Ingest(id, location, &t);
}

Status MovingObjectStore::ReportTrajectory(ObjectId id,
                                           const Trajectory& trajectory) {
  for (const Point& p : trajectory.points()) {
    HPM_RETURN_IF_ERROR(ReportLocation(id, p));
  }
  return Status::OK();
}

Status MovingObjectStore::MaybeTrain(Shard& shard, ObjectId id,
                                     QueryPipeline& pipeline,
                                     bool allow_background) {
  const Timestamp period = options_.predictor.regions.period;
  const size_t period_samples = static_cast<size_t>(period);

  // Decide under the writer lock; mine outside it. `training_in_flight`
  // keeps a second reporter of the same object from mining the same
  // batch concurrently — it re-checks the threshold on its next report.
  enum class Action { kNone, kInitial, kIncremental, kRebuild };
  Action action = Action::kNone;
  Trajectory training_input;
  std::shared_ptr<const HybridPredictor> base;
  size_t consumed_at_capture = 0;
  size_t whole_periods = 0;

  {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    ObjectRecord& record = *shard.records.at(id);
    if (record.training_in_flight) return Status::OK();
    if (record.predictor == nullptr) {
      const size_t needed =
          static_cast<size_t>(options_.min_training_periods) * period_samples;
      if (record.history.size() < needed) return Status::OK();
      action = Action::kInitial;
    } else if (options_.rebuild.incremental) {
      // Incremental mode: the period-count trigger is replaced by the
      // miner's drift score — a model is rebuilt when its pattern set
      // has measurably moved, not merely when time has passed.
      if (record.miner == nullptr || !record.miner->has_regions() ||
          record.miner->drift() < options_.rebuild.drift_threshold ||
          record.miner->window_end() <= record.consumed_samples) {
        return Status::OK();
      }
      action = Action::kRebuild;
    } else {
      const size_t fresh = record.history.size() - record.consumed_samples;
      const size_t batch =
          static_cast<size_t>(options_.update_batch_periods) * period_samples;
      if (fresh < batch) return Status::OK();
      action = Action::kIncremental;
    }
    // Training is the most expendable work in the system: under rung-1
    // pressure it is deferred outright — the thresholds stay satisfied,
    // so the next report after pressure clears picks it up. (Background
    // rebuilds get their own deferral in the scheduler's worker; the
    // check here covers the inline paths.)
    if (pipeline.ShouldShedNow(Deadline::Infinite())) {
      pipeline.context().CountDeferredTrain();
      return Status::OK();
    }
    if (action == Action::kRebuild) {
      // Capture nothing here: RebuildObject re-examines the record
      // under the lock itself (the state may move before a background
      // worker gets to it).
    } else if (action == Action::kInitial) {
      training_input = record.history;
    } else {
      const size_t fresh = record.history.size() - record.consumed_samples;
      whole_periods = (fresh / period_samples) * period_samples;
      StatusOr<Trajectory> suffix = record.history.Slice(
          static_cast<Timestamp>(record.consumed_samples),
          static_cast<Timestamp>(record.consumed_samples + whole_periods));
      if (!suffix.ok()) return suffix.status();
      training_input = std::move(*suffix);
      base = record.predictor;
      consumed_at_capture = record.consumed_samples;
    }
    // kRebuild leaves the flag to RebuildObject (which sets it for the
    // span of its own capture/build/publish cycle).
    if (action != Action::kRebuild) record.training_in_flight = true;
  }

  if (action == Action::kRebuild) {
    if (options_.rebuild.background && allow_background) {
      switch (EnsureScheduler()->Enqueue(id)) {
        case RebuildScheduler::EnqueueResult::kQueued:
          metrics_->rebuild_scheduled->Increment();
          break;
        case RebuildScheduler::EnqueueResult::kAlreadyPending:
          break;
        case RebuildScheduler::EnqueueResult::kDropped:
          // Drift persists, so a later report re-requests the rebuild.
          metrics_->rebuild_dropped->Increment();
          break;
      }
      return Status::OK();
    }
    return RebuildObject(shard, id);
  }

  // Mining runs unlocked: readers keep serving the previous snapshot.
  // Transient (kUnavailable) build failures — a wedged allocator, an
  // injected fault — are retried with backoff before the swap is given
  // up; the RNG is seeded from the object id so schedules replay.
  ScopedSpan span(&pipeline.context().trace(), "train");
  Random retry_rng(0x74726e5f72747279ULL ^ static_cast<uint64_t>(id));
  StatusOr<std::unique_ptr<HybridPredictor>> built = RetryWithBackoff(
      RetryPolicy{}, retry_rng,
      [&]() -> StatusOr<std::unique_ptr<HybridPredictor>> {
        return action == Action::kInitial
                   ? HybridPredictor::Train(training_input,
                                            options_.predictor)
                   : base->WithNewHistory(training_input);
      });

  std::lock_guard<std::mutex> lock(shard.write_mutex);
  ObjectRecord& record = *shard.records.at(id);
  record.training_in_flight = false;
  if (!built.ok()) return built.status().Annotate("train");
  record.predictor =
      std::shared_ptr<const HybridPredictor>(std::move(*built));
  // Every (re)train publishes a fresh frozen arena; the counter tracks
  // total bytes built so dashboards see index growth across generations.
  metrics_->tpt_frozen_bytes->Increment(
      record.predictor->summary().tpt_frozen_bytes);
  record.consumed_samples =
      action == Action::kInitial
          ? training_input.NumSubTrajectories(period) * period_samples
          : consumed_at_capture + whole_periods;
  if (record.miner != nullptr && action == Action::kInitial) {
    // Bootstrap handoff to incremental maintenance: the miner adopts
    // the freshly discovered region vocabulary (recounting its window
    // against it) and drift starts accumulating from here; every later
    // refresh is a drift-triggered rebuild.
    record.miner->AdoptRegions(record.predictor->regions());
    record.consumed_samples = record.miner->window_end();
  }
  // The swap the readers actually see: the new model generation becomes
  // visible with this view publication, and the old view (holding the
  // previous generation's last shared handle once readers drain) heads
  // to limbo.
  PublishView(record, BuildView(record));
  return Status::OK();
}

std::unique_ptr<IncrementalMiner> MovingObjectStore::NewMiner() const {
  IncrementalMinerOptions miner_options = options_.rebuild.miner;
  // The miner must map points to regions exactly as training does, or
  // its transactions (and thus its pattern set) would diverge from what
  // a rebuild mines.
  miner_options.region_match_slack = options_.predictor.region_match_slack;
  auto miner = std::make_unique<IncrementalMiner>(
      miner_options, options_.predictor.regions.period,
      options_.predictor.mining);
  MinerMetricHooks hooks;
  hooks.transactions = metrics_->miner_transactions;
  hooks.unmatched_points = metrics_->miner_unmatched_points;
  hooks.promoted = metrics_->miner_promoted;
  hooks.demoted = metrics_->miner_demoted;
  hooks.candidates_evicted = metrics_->miner_candidates_evicted;
  miner->set_metric_hooks(hooks);
  return miner;
}

RebuildScheduler* MovingObjectStore::EnsureScheduler() {
  if (RebuildScheduler* existing =
          scheduler_ptr_->load(std::memory_order_acquire);
      existing != nullptr) {
    return existing;
  }
  std::lock_guard<std::mutex> lock(*scheduler_mu_);
  if (RebuildScheduler* existing =
          scheduler_ptr_->load(std::memory_order_acquire);
      existing != nullptr) {
    return existing;
  }
  // The worker captures `this`. Created only on the live-ingest path —
  // after the store's address is final — never during LoadFromDirectory
  // replay (see `replaying_`), so the movability contract holds.
  RebuildScheduler::Options scheduler_options;
  scheduler_options.max_pending = options_.rebuild.max_pending;
  scheduler_options.deferred_counter = metrics_->rebuild_deferred;
  scheduler_options.idle_priority = options_.rebuild.idle_priority;
  scheduler_options.min_start_interval = options_.rebuild.min_rebuild_interval;
  scheduler_ = std::make_unique<RebuildScheduler>(
      scheduler_options,
      [this](ObjectId id) { (void)RebuildObject(ShardFor(id), id); },
      [this] {
        return options_.degrade_queue_depth > 0 &&
               pool_->queue_depth() >= options_.degrade_queue_depth;
      });
  scheduler_ptr_->store(scheduler_.get(), std::memory_order_release);
  return scheduler_.get();
}

Status MovingObjectStore::RebuildObject(Shard& shard, ObjectId id) {
  // Capture the rebuild window under the writer lock. Re-examine
  // everything: between the drift trigger and this call (possibly much
  // later, on the background worker) the record may have been rebuilt
  // by someone else or have nothing new.
  Trajectory window;
  std::shared_ptr<const HybridPredictor> previous;
  size_t consumed_at_capture = 0;
  {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    const auto it = shard.records.find(id);
    if (it == shard.records.end()) return Status::OK();
    ObjectRecord& record = *it->second;
    if (record.miner == nullptr || record.predictor == nullptr ||
        record.training_in_flight ||
        record.miner->window_end() <= record.consumed_samples) {
      return Status::OK();
    }
    window = record.miner->WindowTrajectory();
    consumed_at_capture = record.miner->window_end();
    previous = record.predictor;
    record.training_in_flight = true;
  }

  // Mine + freeze off-lock; readers keep serving `previous` throughout.
  // On any failure the last-good model stays published and the drift
  // that triggered us is still there to re-request the rebuild.
  auto fail = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    shard.records.at(id)->training_in_flight = false;
    metrics_->rebuild_failed->Increment();
    return status.Annotate("rebuild object " + std::to_string(id));
  };
  const Stopwatch timer;
  if (Status faulted = HPM_FAULT_HIT("rebuild/mine"); !faulted.ok()) {
    return fail(faulted);
  }
  StatusOr<std::unique_ptr<HybridPredictor>> built =
      HybridPredictor::Train(window, options_.predictor);
  if (!built.ok()) return fail(built.status());
  if (Status faulted = HPM_FAULT_HIT("rebuild/freeze"); !faulted.ok()) {
    return fail(faulted);
  }

  std::lock_guard<std::mutex> lock(shard.write_mutex);
  ObjectRecord& record = *shard.records.at(id);
  record.training_in_flight = false;
  if (Status faulted = HPM_FAULT_HIT("rebuild/publish"); !faulted.ok()) {
    metrics_->rebuild_failed->Increment();
    return faulted.Annotate("rebuild object " + std::to_string(id));
  }
  record.predictor =
      std::shared_ptr<const HybridPredictor>(std::move(*built));
  // Monotonic aggregate query counters survive the swap.
  record.predictor->CarryCountersFrom(*previous);
  metrics_->tpt_frozen_bytes->Increment(
      record.predictor->summary().tpt_frozen_bytes);
  record.consumed_samples = consumed_at_capture;
  // Adopt the rebuilt model's region vocabulary: the recount aligns the
  // miner's counts with what the model was actually built from, and
  // drift restarts from this publish.
  record.miner->AdoptRegions(record.predictor->regions());
  PublishView(record, BuildView(record));
  metrics_->rebuild_completed->Increment();
  metrics_->rebuild_build_us->RecordMicros(
      static_cast<uint64_t>(timer.ElapsedMicros()));
  return Status::OK();
}

Status MovingObjectStore::FlushRebuilds() {
  if (!options_.rebuild.incremental) return Status::OK();
  if (RebuildScheduler* scheduler =
          scheduler_ptr_->load(std::memory_order_acquire);
      scheduler != nullptr) {
    scheduler->Drain();
  }
  Status first = Status::OK();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<ObjectId> pending;
    {
      std::lock_guard<std::mutex> lock(shard->write_mutex);
      for (const auto& [id, record] : shard->records) {
        if (record->predictor != nullptr && record->miner != nullptr &&
            record->miner->window_end() > record->consumed_samples) {
          pending.push_back(id);
        }
      }
    }
    for (const ObjectId id : pending) {
      if (Status rebuilt = RebuildObject(*shard, id);
          !rebuilt.ok() && first.ok()) {
        first = rebuilt;
      }
    }
  }
  return first;
}

StatusOr<MovingObjectStore::MinerSnapshot> MovingObjectStore::MinerState(
    ObjectId id) const {
  if (!options_.rebuild.incremental) {
    return Status::FailedPrecondition(
        "store is not in incremental-maintenance mode");
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  const auto it = shard.records.find(id);
  if (it == shard.records.end() || it->second->miner == nullptr) {
    return Status::NotFound("no miner for object " + std::to_string(id));
  }
  const ObjectRecord& record = *it->second;
  MinerSnapshot snapshot;
  snapshot.drift = record.miner->drift();
  snapshot.window_end = record.miner->window_end();
  snapshot.consumed_samples = record.consumed_samples;
  snapshot.window = record.miner->WindowTrajectory();
  snapshot.patterns = record.miner->CurrentPatterns();
  snapshot.stats = record.miner->stats();
  return snapshot;
}

std::vector<ObjectId> MovingObjectStore::ObjectIds() const {
  const EpochManager::Guard guard = epoch_->Pin();
  std::vector<ObjectId> ids;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const ShardTable* table = shard->table.load(std::memory_order_acquire);
    ids.reserve(ids.size() + table->records.size());
    for (const ObjectRecord* record : table->records) {
      ids.push_back(record->id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t MovingObjectStore::NumObjects() const {
  const EpochManager::Guard guard = epoch_->Pin();
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->table.load(std::memory_order_acquire)->records.size();
  }
  return total;
}

size_t MovingObjectStore::HistoryLength(ObjectId id) const {
  const EpochManager::Guard guard = epoch_->Pin();
  const ObjectView* view = FindView(ShardFor(id), id);
  return view == nullptr ? 0 : view->history_size;
}

StatusOr<std::shared_ptr<const HybridPredictor>>
MovingObjectStore::GetPredictor(ObjectId id) const {
  const EpochManager::Guard guard = epoch_->Pin();
  const ObjectView* view = FindView(ShardFor(id), id);
  if (view == nullptr) {
    return Status::NotFound("unknown object id");
  }
  if (view->predictor == nullptr) {
    return Status::FailedPrecondition("object has no trained model yet");
  }
  return view->predictor;
}

OverloadStats MovingObjectStore::overload_stats() const {
  return stats_->Snapshot();
}

CircuitBreaker::State MovingObjectStore::BreakerState(int shard) const {
  HPM_CHECK(shard >= 0 && shard < static_cast<int>(breakers_.size()));
  return breakers_[static_cast<size_t>(shard)]->state();
}

std::optional<StatusOr<std::vector<Prediction>>>
MovingObjectStore::PreparePredict(const ObjectView& view, Timestamp tq,
                                  int k, QueryContext* ctx, int lane,
                                  PredictiveQuery* query) const {
  using Result = StatusOr<std::vector<Prediction>>;
  if (view.history_size < 2) {
    return Result(Status::FailedPrecondition(
        "object has fewer than 2 reported locations"));
  }
  if (tq <= view.now) {
    return Result(Status::InvalidArgument(
        "query time must be after the object's last report"));
  }
  if (ctx != nullptr) ctx->CountObjectEvaluated();
  query->recent_movements = view.recent;
  query->current_time = view.now;
  query->query_time = tq;
  query->k = k;
  query->deadline = ctx != nullptr ? ctx->deadline() : Deadline::Infinite();
  query->context = ctx;
  query->lane = lane;

  if (view.predictor != nullptr) {
    if (ctx != nullptr && ctx->shed_to_rmf()) {
      // Rung 1: the pattern side is skipped wholesale; the answer is the
      // exact RMF prediction, visibly stamped Overloaded.
      ctx->CountDegradedPrediction();
      return Result(view.predictor->DegradedPredict(
          *query, DegradedReason::kOverloaded));
    }
    return std::nullopt;  // Pattern path: the caller runs it.
  }
  // Cold start: pure motion function until the first training threshold.
  // This is already the cheapest answer, so overload changes nothing.
  if (ctx != nullptr) ctx->CountMotionFit();
  RecursiveMotionFunction rmf(options_.predictor.rmf);
  Prediction prediction;
  prediction.source = PredictionSource::kMotionFunction;
  prediction.location = query->recent_movements.back().location;
  if (rmf.Fit(query->recent_movements).ok()) {
    StatusOr<Point> p = rmf.Predict(tq);
    if (p.ok()) prediction.location = *p;
  }
  return Result(std::vector<Prediction>{prediction});
}

StatusOr<std::vector<Prediction>> MovingObjectStore::PredictView(
    const ObjectView& view, Timestamp tq, int k, QueryContext* ctx,
    int lane) const {
  PredictiveQuery query;
  if (std::optional<StatusOr<std::vector<Prediction>>> finished =
          PreparePredict(view, tq, k, ctx, lane, &query)) {
    return std::move(*finished);
  }
  return view.predictor->Predict(query);
}

StatusOr<std::vector<Prediction>> MovingObjectStore::PredictLocation(
    ObjectId id, Timestamp tq, int k, Deadline deadline) const {
  QueryPipeline pipeline(PipelineEnv(), StoreOp::kPredict, deadline);
  HPM_RETURN_IF_ERROR(pipeline.Admit("predict"));
  pipeline.Plan(1);
  QueryContext& ctx = pipeline.context();

  Shard& shard = ShardFor(id);
  const ObjectView* view =
      pipeline.RunPlan([&]() -> const ObjectView* {
        // Pin before the pointer loads; the guard rides the context, so
        // the view stays live for the pipeline's whole lifetime.
        ctx.AdoptEpochGuard(epoch_->Pin());
        return FindView(shard, id);
      });
  if (view == nullptr) {
    return Status::NotFound("unknown object id");
  }
  return pipeline.RunFanOut(
      [&] { return PredictView(*view, tq, k, &ctx, /*lane=*/0); });
}

std::vector<StatusOr<std::vector<Prediction>>>
MovingObjectStore::PredictLocationBatch(const std::vector<ObjectId>& ids,
                                        Timestamp tq, int k,
                                        Deadline deadline) const {
  using Result = StatusOr<std::vector<Prediction>>;

  QueryPipeline pipeline(PipelineEnv(), StoreOp::kPredictBatch, deadline);
  // One admission ticket covers the whole batch (it is one request).
  if (Status admitted = pipeline.Admit("predict_batch"); !admitted.ok()) {
    return std::vector<Result>(ids.size(), Result(admitted));
  }
  pipeline.Plan(1);
  QueryContext& ctx = pipeline.context();

  // Plan: pin the query epoch once, resolve every id to its published
  // view (raw pointers, valid under the pin for the pipeline's life),
  // and compute the locality order — by shard, then by model identity,
  // so consecutive in-flight tasks traverse the same frozen arena.
  std::vector<const ObjectView*> views(ids.size());
  std::vector<size_t> order;
  pipeline.RunPlan([&] {
    ctx.AdoptEpochGuard(epoch_->Pin());
    std::vector<size_t> shard_of(ids.size());
    std::vector<const void*> model_of(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      shard_of[i] = ShardIndex(ids[i], shards_.size());
      views[i] = FindView(*shards_[shard_of[i]], ids[i]);
      model_of[i] =
          views[i] != nullptr ? views[i]->predictor.get() : nullptr;
    }
    order = BatchExecutor::LocalityOrder(shard_of, model_of);
  });

  // Fan the locality-ordered batch out in contiguous chunks; each chunk
  // runs its share stall-interleaved. Answers land at their input index,
  // so the output order is untouched by the reordering.
  std::vector<std::optional<Result>> results(ids.size());
  pipeline.FanOutChunks(
      order.size(), [&](size_t begin, size_t end, size_t lane) {
        BatchExecutor executor(options_.batch, &ctx);
        const std::vector<size_t> chunk(order.begin() + begin,
                                        order.begin() + end);
        executor.Run(
            chunk,
            [&](size_t item, PredictiveQuery* query,
                PredictScratch* scratch,
                HybridPredictor::PredictTask* task)
                -> std::optional<Result> {
              const ObjectView* view = views[item];
              if (view == nullptr) {
                return Result(Status::NotFound("unknown object id"));
              }
              if (std::optional<Result> finished = PreparePredict(
                      *view, tq, k, &ctx, static_cast<int>(lane), query)) {
                return finished;
              }
              task->Start(*view->predictor, *query, scratch);
              return std::nullopt;
            },
            [&](size_t item, Result result) {
              results[item] = std::move(result);
            });
      });

  return pipeline.RunMerge([&] {
    std::vector<Result> out;
    out.reserve(ids.size());
    for (std::optional<Result>& r : results) out.push_back(std::move(*r));
    return out;
  });
}

Status MovingObjectStore::RangeQueryShard(int shard_index,
                                          const BoundingBox& range,
                                          Timestamp tq, int k_per_object,
                                          QueryContext& ctx,
                                          std::vector<RangeHit>* hits) const {
  // The per-shard kill switch: a -DHPM_ENABLE_FAULTS=ON build can force
  // this shard's share of every fan-out to fail, driving its breaker.
  if (Status injected = HPM_FAULT_HIT(ShardQueryFaultSite(shard_index));
      !injected.ok()) {
    return injected.Annotate("shard_query");
  }
  const Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  // This lane's pin: everything loaded below stays live until the lane
  // releases (the guard lives in the lane's scratch, so even an early
  // error return stays covered until the pipeline retires the context).
  PredictScratch& scratch = ctx.lane(static_cast<size_t>(shard_index));
  scratch.epoch_guard = epoch_->Pin();
  const ShardTable* table = shard.table.load(std::memory_order_acquire);
  for (const ObjectRecord* record : table->records) {
    const ObjectView& view =
        *record->view.load(std::memory_order_acquire);
    if (view.history_size < 2 || tq <= view.now) continue;
    // The deadline travels inside the query context: once it expires,
    // each remaining object's answer degrades to the cheap RMF
    // prediction instead of the shard aborting with partial coverage.
    StatusOr<std::vector<Prediction>> predictions =
        PredictView(view, tq, k_per_object, &ctx, shard_index);
    if (!predictions.ok()) {
      return predictions.status();
    }
    const Prediction* best = nullptr;
    for (const Prediction& p : *predictions) {
      if (!range.Contains(p.location)) continue;
      if (best == nullptr || p.score > best->score) best = &p;
    }
    if (best != nullptr) hits->push_back({view.id, *best});
  }
  scratch.epoch_guard.Release();
  return Status::OK();
}

Status MovingObjectStore::NearestNeighborShard(
    int shard_index, Timestamp tq, QueryContext& ctx,
    std::vector<RangeHit>* hits) const {
  if (Status injected = HPM_FAULT_HIT(ShardQueryFaultSite(shard_index));
      !injected.ok()) {
    return injected.Annotate("shard_query");
  }
  const Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  PredictScratch& scratch = ctx.lane(static_cast<size_t>(shard_index));
  scratch.epoch_guard = epoch_->Pin();
  const ShardTable* table = shard.table.load(std::memory_order_acquire);
  for (const ObjectRecord* record : table->records) {
    const ObjectView& view =
        *record->view.load(std::memory_order_acquire);
    if (view.history_size < 2 || tq <= view.now) continue;
    StatusOr<std::vector<Prediction>> predictions =
        PredictView(view, tq, 1, &ctx, shard_index);
    if (!predictions.ok()) {
      return predictions.status();
    }
    hits->push_back({view.id, predictions->front()});
  }
  scratch.epoch_guard.Release();
  return Status::OK();
}

StatusOr<FleetQueryResult> MovingObjectStore::PredictiveRangeQuery(
    const BoundingBox& range, Timestamp tq, int k_per_object,
    Deadline deadline) const {
  if (range.IsEmpty()) {
    return Status::InvalidArgument("query range is empty");
  }
  if (k_per_object < 1) {
    return Status::InvalidArgument("k_per_object must be >= 1");
  }
  QueryPipeline pipeline(PipelineEnv(), StoreOp::kRange, deadline);
  HPM_RETURN_IF_ERROR(pipeline.Admit("range_query"));
  pipeline.Plan(shards_.size());
  QueryContext& ctx = pipeline.context();

  FleetQueryResult result = pipeline.FanOut(
      [this, &range, tq, k_per_object, &ctx](int shard,
                                             std::vector<RangeHit>* hits) {
        return RangeQueryShard(shard, range, tq, k_per_object, ctx, hits);
      });
  pipeline.MergeRank(&result, [](const RangeHit& a, const RangeHit& b) {
    if (a.prediction.score != b.prediction.score) {
      return a.prediction.score > b.prediction.score;
    }
    return a.id < b.id;
  });
  return result;
}

StatusOr<FleetQueryResult> MovingObjectStore::PredictiveNearestNeighbors(
    const Point& target, Timestamp tq, int n, Deadline deadline) const {
  if (n < 1) {
    return Status::InvalidArgument("n must be >= 1");
  }
  QueryPipeline pipeline(PipelineEnv(), StoreOp::kNearest, deadline);
  HPM_RETURN_IF_ERROR(pipeline.Admit("knn_query"));
  pipeline.Plan(shards_.size());
  QueryContext& ctx = pipeline.context();

  FleetQueryResult result = pipeline.FanOut(
      [this, tq, &ctx](int shard, std::vector<RangeHit>* hits) {
        return NearestNeighborShard(shard, tq, ctx, hits);
      });
  pipeline.MergeRank(
      &result,
      [&target](const RangeHit& a, const RangeHit& b) {
        const double da = SquaredDistance(a.prediction.location, target);
        const double db = SquaredDistance(b.prediction.location, target);
        if (da != db) return da < db;
        return a.id < b.id;
      },
      /*limit=*/n);
  return result;
}

int MovingObjectStore::RegisterContinuousQuery(const BoundingBox& range,
                                               Timestamp horizon,
                                               int k_per_object) {
  HPM_CHECK(!range.IsEmpty());
  HPM_CHECK(horizon >= 1);
  HPM_CHECK(k_per_object >= 1);
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  ContinuousQuery query;
  query.id = continuous_->next_query_id++;
  query.range = range;
  query.horizon = horizon;
  query.k_per_object = k_per_object;
  const int id = query.id;
  continuous_->queries.emplace(id, std::move(query));
  return id;
}

void MovingObjectStore::UnregisterContinuousQuery(int query_id) {
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  continuous_->queries.erase(query_id);
}

bool MovingObjectStore::HasContinuousQueries() const {
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  return !continuous_->queries.empty();
}

void MovingObjectStore::EvaluateContinuousQueries(const ObjectView& view) {
  if (view.history_size < 2) return;
  std::lock_guard<std::mutex> lock(continuous_->mutex);
  for (auto& [query_id, query] : continuous_->queries) {
    const Timestamp tq = view.now + query.horizon;
    StatusOr<std::vector<Prediction>> predictions =
        PredictView(view, tq, query.k_per_object, /*ctx=*/nullptr,
                    /*lane=*/0);
    if (!predictions.ok()) continue;
    const Prediction* matching = nullptr;
    for (const Prediction& p : *predictions) {
      if (query.range.Contains(p.location)) {
        if (matching == nullptr || p.score > matching->score) matching = &p;
      }
    }
    const bool inside_now = matching != nullptr;
    const auto it = query.inside.find(view.id);
    const bool inside_before = it != query.inside.end() && it->second;
    if (inside_now != inside_before) {
      ContinuousEvent event;
      event.query_id = query_id;
      event.object = view.id;
      event.entered = inside_now;
      event.prediction = inside_now ? *matching : predictions->front();
      event.evaluated_at = tq;
      std::lock_guard<std::mutex> events_lock(continuous_->events_mutex);
      continuous_->pending_events.push_back(std::move(event));
    }
    query.inside[view.id] = inside_now;
  }
}

std::vector<MovingObjectStore::ContinuousEvent>
MovingObjectStore::DrainContinuousEvents() {
  std::lock_guard<std::mutex> lock(continuous_->events_mutex);
  std::vector<ContinuousEvent> events =
      std::move(continuous_->pending_events);
  continuous_->pending_events.clear();
  return events;
}

}  // namespace hpm
