// Shared vocabulary of the serving layer: object ids, fleet-query results
// and the overload-control counters. Split out of object_store.h so the
// query pipeline (server/query_pipeline.h) and the store can both speak
// these types without a circular include.

#ifndef HPM_SERVER_STORE_TYPES_H_
#define HPM_SERVER_STORE_TYPES_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/query.h"

namespace hpm {

/// Identifies one tracked moving object.
using ObjectId = int64_t;

/// Relaxed counters describing the overload-control layer's decisions.
struct OverloadStats {
  uint64_t admitted = 0;         ///< Entry-point calls past admission.
  uint64_t shed = 0;             ///< Entry-point calls rejected (rung 2).
  uint64_t degraded_overload = 0;///< Queries answered RMF-only (rung 1).
  uint64_t trains_deferred = 0;  ///< (Re)trains postponed under pressure.
  uint64_t shards_skipped = 0;   ///< Shard fan-outs skipped or failed.
  uint64_t reports_rejected = 0; ///< Malformed ReportLocation inputs.
};

/// Relaxed-atomic backing of OverloadStats. Updated only by the query
/// pipeline's Account stage — the single accounting point — and read by
/// MovingObjectStore::overload_stats().
struct AtomicOverloadStats {
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> degraded_overload{0};
  std::atomic<uint64_t> trains_deferred{0};
  std::atomic<uint64_t> shards_skipped{0};
  std::atomic<uint64_t> reports_rejected{0};

  OverloadStats Snapshot() const {
    OverloadStats stats;
    stats.admitted = admitted.load(std::memory_order_relaxed);
    stats.shed = shed.load(std::memory_order_relaxed);
    stats.degraded_overload =
        degraded_overload.load(std::memory_order_relaxed);
    stats.trains_deferred = trains_deferred.load(std::memory_order_relaxed);
    stats.shards_skipped = shards_skipped.load(std::memory_order_relaxed);
    stats.reports_rejected =
        reports_rejected.load(std::memory_order_relaxed);
    return stats;
  }
};

/// One object's answer to a predictive range query.
struct RangeHit {
  ObjectId id = 0;

  /// The best-scored prediction that falls inside the query range.
  Prediction prediction;
};

/// Result of a fleet query (range / kNN). `partial` is the
/// overload-resilience contract: a shard whose circuit breaker is open,
/// or whose share of the fan-out failed, is *skipped* — the query still
/// answers from the healthy shards instead of failing end to end.
struct FleetQueryResult {
  /// Hits from every shard that answered, in the query's sort order.
  std::vector<RangeHit> hits;

  /// True when at least one shard did not contribute.
  bool partial = false;

  /// Indices of the shards that were skipped (breaker open) or failed
  /// during this call, ascending.
  std::vector<int> skipped_shards;
};

}  // namespace hpm

#endif  // HPM_SERVER_STORE_TYPES_H_
