#include "server/query_pipeline.h"

#include <algorithm>
#include <future>
#include <string>

namespace hpm {

const char* StoreOpName(StoreOp op) {
  switch (op) {
    case StoreOp::kReport:
      return "report";
    case StoreOp::kPredict:
      return "predict";
    case StoreOp::kPredictBatch:
      return "predict_batch";
    case StoreOp::kRange:
      return "range";
    case StoreOp::kNearest:
      return "nearest";
  }
  return "unknown";
}

StoreMetrics::StoreMetrics(MetricsRegistry* registry) {
  for (size_t i = 0; i < kNumStoreOps; ++i) {
    const std::string op = StoreOpName(static_cast<StoreOp>(i));
    admitted[i] = registry->GetCounter("store.admitted." + op);
    shed[i] = registry->GetCounter("store.shed." + op);
    op_total[i] = registry->GetHistogram("op." + op + "_us");
  }
  degraded_predictions = registry->GetCounter("store.degraded_predictions");
  shards_skipped = registry->GetCounter("store.shards_skipped");
  trains_deferred = registry->GetCounter("store.trains_deferred");
  reports_rejected = registry->GetCounter("store.reports_rejected");
  objects_evaluated = registry->GetCounter("store.objects_evaluated");
  motion_fits = registry->GetCounter("store.motion_fits");
  batch_interleaved = registry->GetCounter("batch.interleaved");
  epoch_pinned = registry->GetCounter("epoch.pinned");
  epoch_retired = registry->GetCounter("epoch.retired");
  epoch_freed = registry->GetCounter("epoch.freed");
  tpt_nodes_visited = registry->GetCounter("tpt.nodes_visited");
  tpt_entries_tested = registry->GetCounter("tpt.entries_tested");
  tpt_blocks_scanned = registry->GetCounter("tpt.block_scans");
  tpt_frozen_bytes = registry->GetCounter("tpt.frozen_bytes");
  wal_appended = registry->GetCounter("wal.appended");
  wal_synced = registry->GetCounter("wal.synced");
  wal_replayed_records = registry->GetCounter("wal.replayed_records");
  wal_truncated_bytes = registry->GetCounter("wal.truncated_bytes");
  wal_disabled = registry->GetCounter("store.wal_disabled");
  quarantined_files = registry->GetCounter("store.quarantined_files");
  miner_transactions = registry->GetCounter("miner.transactions");
  miner_unmatched_points = registry->GetCounter("miner.unmatched_points");
  miner_promoted = registry->GetCounter("miner.promoted");
  miner_demoted = registry->GetCounter("miner.demoted");
  miner_candidates_evicted = registry->GetCounter("miner.candidates_evicted");
  rebuild_scheduled = registry->GetCounter("rebuild.scheduled");
  rebuild_completed = registry->GetCounter("rebuild.completed");
  rebuild_failed = registry->GetCounter("rebuild.failed");
  rebuild_deferred = registry->GetCounter("rebuild.deferred");
  rebuild_dropped = registry->GetCounter("rebuild.dropped");
  rebuild_build_us = registry->GetHistogram("rebuild.build_us");
  stage_admit = registry->GetHistogram("stage.admit_us");
  stage_plan = registry->GetHistogram("stage.plan_us");
  stage_fanout = registry->GetHistogram("stage.fanout_us");
  stage_merge = registry->GetHistogram("stage.merge_us");
}

QueryPipeline::QueryPipeline(const Env& env, StoreOp op, Deadline deadline)
    : env_(env),
      op_(op),
      ctx_(deadline,
           /*traced=*/env.trace_sink != nullptr && *env.trace_sink != nullptr),
      start_(Clock::now()) {
  root_span_ = ctx_.trace().BeginSpan(StoreOpName(op_));
}

QueryPipeline::~QueryPipeline() { Account(); }

Status QueryPipeline::Admit(const char* what) {
  ScopedSpan span(&ctx_.trace(), "admit", root_span_);
  const StageTimer timer(&admit_micros_);
  StatusOr<AdmissionTicket> ticket = env_.admission->Admit(what);
  if (!ticket.ok()) {
    shed_ = true;
    return ticket.status();
  }
  ticket_.emplace(std::move(*ticket));
  admitted_ = true;
  return Status::OK();
}

bool QueryPipeline::ShouldShedNow(const Deadline& deadline) const {
  if (env_.degrade_queue_depth > 0 &&
      env_.pool->queue_depth() >= env_.degrade_queue_depth) {
    return true;
  }
  if (env_.degrade_min_headroom.count() > 0 && !deadline.is_infinite() &&
      deadline.remaining() < env_.degrade_min_headroom) {
    return true;
  }
  return false;
}

void QueryPipeline::Plan(size_t lanes) {
  planned_ = true;
  ScopedSpan span(&ctx_.trace(), "plan", root_span_);
  const StageTimer timer(&plan_micros_);
  ctx_.set_shed_to_rmf(ShouldShedNow(ctx_.deadline()));
  ctx_.SetLaneCount(std::max<size_t>(lanes, 1));
}

FleetQueryResult QueryPipeline::FanOut(const ShardFn& shard_fn) {
  fanned_out_ = true;
  ScopedSpan span(&ctx_.trace(), "fanout", root_span_);
  const StageTimer timer(&fanout_micros_);

  const std::vector<std::unique_ptr<CircuitBreaker>>& breakers =
      *env_.breakers;
  const size_t n = breakers.size();
  ctx_.SetLaneCount(n);
  std::vector<std::vector<RangeHit>> hits(n);
  std::vector<Status> statuses(n);
  std::vector<char> allowed(n, 0);

  // Breaker gate first: an open breaker costs one atomic-ish check, not
  // a doomed shard query.
  for (size_t s = 0; s < n; ++s) {
    allowed[s] = breakers[s]->Allow() ? 1 : 0;
  }

  if (env_.pool->num_threads() <= 1 || n == 1) {
    for (size_t s = 0; s < n; ++s) {
      if (allowed[s]) {
        statuses[s] = shard_fn(static_cast<int>(s), &hits[s]);
      }
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      if (!allowed[s]) continue;
      // Bounded queue: a saturated pool means the shard runs inline on
      // the calling thread — backpressure, not unbounded queueing.
      StatusOr<std::future<void>> submitted =
          env_.pool->TrySubmit([&shard_fn, &hits, &statuses, s] {
            statuses[s] = shard_fn(static_cast<int>(s), &hits[s]);
          });
      if (submitted.ok()) {
        futures.push_back(std::move(*submitted));
      } else {
        statuses[s] = shard_fn(static_cast<int>(s), &hits[s]);
      }
    }
    for (std::future<void>& f : futures) f.get();
  }

  FleetQueryResult result;
  for (size_t s = 0; s < n; ++s) {
    if (!allowed[s]) {
      result.partial = true;
      result.skipped_shards.push_back(static_cast<int>(s));
      ctx_.CountSkippedShard();
      continue;
    }
    if (!statuses[s].ok()) {
      // The shard failed: feed its breaker and serve without it rather
      // than failing the whole query.
      breakers[s]->RecordFailure();
      result.partial = true;
      result.skipped_shards.push_back(static_cast<int>(s));
      ctx_.CountSkippedShard();
      continue;
    }
    breakers[s]->RecordSuccess();
    result.hits.insert(result.hits.end(),
                       std::make_move_iterator(hits[s].begin()),
                       std::make_move_iterator(hits[s].end()));
  }
  return result;
}

void QueryPipeline::FanOutChunks(
    size_t total,
    const std::function<void(size_t begin, size_t end, size_t lane)>&
        chunk_fn) {
  fanned_out_ = true;
  ScopedSpan span(&ctx_.trace(), "fanout", root_span_);
  const StageTimer timer(&fanout_micros_);

  const size_t workers = static_cast<size_t>(env_.pool->num_threads());
  if (workers <= 1 || total < 2) {
    ctx_.SetLaneCount(1);
    if (total > 0) chunk_fn(0, total, 0);
    return;
  }
  const size_t chunk = (total + workers - 1) / workers;
  const size_t num_chunks = (total + chunk - 1) / chunk;
  ctx_.SetLaneCount(num_chunks);
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  size_t lane = 0;
  for (size_t begin = 0; begin < total; begin += chunk, ++lane) {
    const size_t end = std::min(begin + chunk, total);
    // Bounded queue: when the pool is saturated the chunk runs inline —
    // the caller pays with its own time (backpressure) rather than
    // growing the queue.
    StatusOr<std::future<void>> submitted = env_.pool->TrySubmit(
        [&chunk_fn, begin, end, lane] { chunk_fn(begin, end, lane); });
    if (submitted.ok()) {
      futures.push_back(std::move(*submitted));
    } else {
      chunk_fn(begin, end, lane);
    }
  }
  for (std::future<void>& f : futures) f.get();
}

void QueryPipeline::MergeRank(
    FleetQueryResult* result,
    const std::function<bool(const RangeHit&, const RangeHit&)>& less,
    int limit) {
  merged_ = true;
  ScopedSpan span(&ctx_.trace(), "merge", root_span_);
  const StageTimer timer(&merge_micros_);
  std::sort(result->hits.begin(), result->hits.end(), less);
  if (limit >= 0 && static_cast<int>(result->hits.size()) > limit) {
    result->hits.resize(static_cast<size_t>(limit));
  }
}

void QueryPipeline::Account() {
  if (accounted_) return;
  accounted_ = true;

  const QueryContext::Totals totals = ctx_.totals();
  AtomicOverloadStats* stats = env_.stats;
  if (admitted_) stats->admitted.fetch_add(1, std::memory_order_relaxed);
  if (shed_) stats->shed.fetch_add(1, std::memory_order_relaxed);
  stats->degraded_overload.fetch_add(totals.degraded_predictions,
                                     std::memory_order_relaxed);
  stats->shards_skipped.fetch_add(totals.shards_skipped,
                                  std::memory_order_relaxed);
  stats->trains_deferred.fetch_add(totals.trains_deferred,
                                   std::memory_order_relaxed);
  stats->reports_rejected.fetch_add(totals.reports_rejected,
                                    std::memory_order_relaxed);

  if (StoreMetrics* m = env_.metrics; m != nullptr) {
    const size_t op = static_cast<size_t>(op_);
    if (admitted_) m->admitted[op]->Increment();
    if (shed_) m->shed[op]->Increment();
    m->degraded_predictions->Increment(totals.degraded_predictions);
    m->shards_skipped->Increment(totals.shards_skipped);
    m->trains_deferred->Increment(totals.trains_deferred);
    m->reports_rejected->Increment(totals.reports_rejected);
    m->objects_evaluated->Increment(totals.objects_evaluated);
    m->motion_fits->Increment(totals.motion_fits);
    m->batch_interleaved->Increment(totals.batch_interleaved);
    m->tpt_nodes_visited->Increment(totals.tpt_nodes_visited);
    m->tpt_entries_tested->Increment(totals.tpt_entries_tested);
    m->tpt_blocks_scanned->Increment(totals.tpt_blocks_scanned);
    m->stage_admit->RecordMicros(admit_micros_);
    if (planned_) m->stage_plan->RecordMicros(plan_micros_);
    if (fanned_out_) m->stage_fanout->RecordMicros(fanout_micros_);
    if (merged_) m->stage_merge->RecordMicros(merge_micros_);
    m->op_total[op]->Record(Clock::now() - start_);
  }

  Trace& trace = ctx_.trace();
  if (trace.enabled()) {
    trace.AddCounter("objects_evaluated", totals.objects_evaluated);
    trace.AddCounter("degraded_predictions", totals.degraded_predictions);
    trace.AddCounter("shards_skipped", totals.shards_skipped);
    trace.AddCounter("motion_fits", totals.motion_fits);
    if (totals.batch_interleaved > 0) {
      trace.AddCounter("batch_interleaved", totals.batch_interleaved);
    }
    trace.AddCounter("tpt_nodes_visited", totals.tpt_nodes_visited);
    trace.AddCounter("tpt_entries_tested", totals.tpt_entries_tested);
    trace.AddCounter("tpt_blocks_scanned", totals.tpt_blocks_scanned);
    trace.EndSpan(root_span_);
    if (env_.trace_sink != nullptr && *env_.trace_sink != nullptr) {
      (*env_.trace_sink)(StoreOpName(op_), trace);
    }
  }
}

}  // namespace hpm
