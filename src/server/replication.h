// Primary/replica replication: a follower mirrors the primary's
// generational snapshot plus the byte-exact tail of its journal
// segments, and applies the journal records to a local store.
//
// The replica state machine (docs/ROBUSTNESS.md §replication):
//
//   bootstrap   BootstrapReplica fetches the primary's current snapshot
//               generation G — manifest, object files, then CURRENT
//               *last* (the same commit-point discipline as a local
//               save: a crash mid-bootstrap leaves no CURRENT, so a
//               reload finds nothing half-loaded).
//   catch-up    The replica loads the snapshot with no journal writer
//               attached, then CatchUpFromMirror re-applies every
//               mirrored journal record (idempotent: covered records
//               are skipped, rejection baselines assign-last-wins).
//   steady      SyncOnce polls the primary: heartbeat + segment
//               listing, per-segment truncate-if-shorter (the primary
//               replayed a torn tail after a crash) or fetch-if-longer
//               (chunked byte range appends into the local mirror),
//               then applies the newly parseable records in (shard,
//               seq) order through MovingObjectStore::ApplyReplicated.
//
// Because training is deterministic and ApplyReplicated re-runs the
// exact live-ingest path, a replica that has applied the same records
// holds a bit-identical model to the primary — the repl prop suite
// asserts this byte-for-byte on the serialized models.
//
// A detected divergence (a journal gap the primary can no longer
// serve, a mirror segment corrupt before its tail) flips
// resync_required(): the replica keeps serving stale reads and the
// operator re-bootstraps. Sync failures never crash the replica — they
// just freeze its staleness stamp until the primary is reachable again.

#ifndef HPM_SERVER_REPLICATION_H_
#define HPM_SERVER_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "net/client.h"
#include "net/server.h"
#include "server/object_store.h"

namespace hpm {

/// Copies the primary's current snapshot generation into `data_dir`
/// (creating it and its wal/ mirror directory), writing CURRENT last.
/// Returns the bootstrapped generation (0 when the primary has never
/// saved — the replica then starts from an empty store and pure journal
/// replay). Safe to re-run over a half-bootstrapped directory.
StatusOr<uint64_t> BootstrapReplica(HpmClient& client,
                                    const std::string& data_dir,
                                    uint32_t fetch_chunk_bytes = 256 * 1024);

struct ReplicatorOptions {
  /// The replica's store directory; the journal mirror lives in
  /// <data_dir>/wal.
  std::string data_dir;
  /// Steady-state poll spacing.
  std::chrono::milliseconds poll_interval{200};
  /// Byte range per fetch request.
  uint32_t fetch_chunk_bytes = 256 * 1024;
};

class Replicator {
 public:
  /// `client` talks to the primary; `store` is the replica's local
  /// store (loaded with *no* journal writer — the mirror belongs to the
  /// primary's byte stream); `health` is the stamp the serving replica
  /// reads. All must outlive the Replicator. `floor_gen` is the
  /// generation the local snapshot covers (BootstrapReplica's return /
  /// the loaded generation): mirror segments below it are wholly
  /// contained in the snapshot and are skipped.
  Replicator(HpmClient* client, MovingObjectStore* store,
             ReplicaHealth* health, uint64_t floor_gen,
             ReplicatorOptions options);
  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Replays every record already in the local mirror (replica
  /// restart). Truncates torn mirror tails — the half-fetched bytes are
  /// re-fetched from the primary on the next sync. Must run before
  /// Start().
  Status CatchUpFromMirror();

  /// One full poll: heartbeat + listing, mirror, apply, stamp health.
  Status SyncOnce();

  /// Background SyncOnce every poll_interval. Stop() (and the
  /// destructor) joins. Sync errors are recorded, never fatal.
  void Start();
  void Stop();

  /// The replica has diverged from what the primary can serve; syncing
  /// has stopped and the operator must re-bootstrap.
  bool resync_required() const {
    return resync_required_.load(std::memory_order_relaxed);
  }
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }
  /// The last SyncOnce error (OK when the last sync succeeded).
  Status last_status() const;

 private:
  /// Syncs one listed segment; adds its unmirrored bytes to *lag.
  Status SyncSegment(const WireSegment& segment, uint64_t* lag);
  /// Applies records [cursor..) of a scanned mirror segment.
  Status ApplySegment(const std::string& path, int shard, uint64_t seq,
                      uint64_t base_gen, bool truncate_torn_tail);

  HpmClient* client_;
  MovingObjectStore* store_;
  ReplicaHealth* health_;
  const uint64_t floor_gen_;
  ReplicatorOptions options_;
  std::string mirror_dir_;

  /// Records already applied per (shard, seq) mirror segment.
  std::map<std::pair<int, uint64_t>, size_t> cursors_;

  std::atomic<bool> resync_required_{false};
  std::atomic<uint64_t> applied_records_{0};

  mutable std::mutex status_mutex_;
  Status last_status_;

  std::thread sync_thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
};

}  // namespace hpm

#endif  // HPM_SERVER_REPLICATION_H_
