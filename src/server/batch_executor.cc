#include "server/batch_executor.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace hpm {

std::vector<size_t> BatchExecutor::LocalityOrder(
    const std::vector<size_t>& shard_of,
    const std::vector<const void*>& model_of) {
  HPM_CHECK(shard_of.size() == model_of.size());
  std::vector<size_t> order(shard_of.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Stable: input order breaks ties, so the admission order (and with it
  // which queries get interleaved together) is deterministic for a given
  // batch against a given table state.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (shard_of[a] != shard_of[b]) return shard_of[a] < shard_of[b];
    return model_of[a] < model_of[b];
  });
  return order;
}

void BatchExecutor::Run(const std::vector<size_t>& items,
                        const PrepareFn& prepare, const EmitFn& emit) {
  const size_t width =
      std::max<size_t>(1, std::min(options_.width, items.size()));
  const size_t step = options_.step_entries == 0
                          ? std::numeric_limits<size_t>::max()
                          : options_.step_entries;

  /// One in-flight prediction: the task plus everything it borrows.
  struct Slot {
    HybridPredictor::PredictTask task;
    PredictiveQuery query;
    PredictScratch scratch;
    size_t item = 0;
    bool active = false;
  };
  std::vector<Slot> slots(width);

  size_t next = 0;
  size_t active = 0;

  // Admits items into `slot` until one leaves a traversal in flight
  // (or the batch is exhausted); items that finish in the preamble or
  // at Start are emitted immediately.
  const auto refill = [&](Slot& slot) {
    while (next < items.size()) {
      const size_t item = items[next++];
      std::optional<Result> finished =
          prepare(item, &slot.query, &slot.scratch, &slot.task);
      if (finished.has_value()) {
        emit(item, std::move(*finished));
        continue;
      }
      if (slot.task.done()) {
        emit(item, slot.task.TakeResult());
        continue;
      }
      slot.item = item;
      slot.active = true;
      ++active;
      return;
    }
  };

  for (Slot& slot : slots) refill(slot);

  for (size_t cursor = 0; active > 0; cursor = (cursor + 1) % width) {
    Slot& slot = slots[cursor];
    if (!slot.active) continue;
    if (slot.task.Step(step)) {
      emit(slot.item, slot.task.TakeResult());
      slot.active = false;
      --active;
      refill(slot);
    } else if (active > 1) {
      // Stalled with company: warm the block this task needs next, then
      // spend the stall advancing someone else's traversal.
      slot.task.Prefetch();
      if (ctx_ != nullptr) ctx_->CountBatchInterleaved();
    }
  }
}

}  // namespace hpm
