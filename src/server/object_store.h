// MovingObjectStore: the moving-objects-database front end around
// HybridPredictor.
//
// The paper's model is per-object (patterns are mined from one object's
// history); a deployment tracks a fleet. This store ingests per-object
// location reports, bootstraps a HybridPredictor per object once enough
// periods accumulate, folds newly accumulated data in batches through
// the §V-B insertion path, and serves two query types:
//   * point prediction  — "where will object O be at time tq?"
//   * predictive range  — "which objects will probably be inside region
//     R at time tq?" (the query type TPR-tree-style predictive indexes
//     serve, here answered from patterns + motion fallback).

#ifndef HPM_SERVER_OBJECT_STORE_H_
#define HPM_SERVER_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/hybrid_predictor.h"

namespace hpm {

/// Identifies one tracked moving object.
using ObjectId = int64_t;

/// Store configuration.
struct ObjectStoreOptions {
  /// Training / query configuration shared by every object's predictor.
  HybridPredictorOptions predictor;

  /// Train an object's first model once this many complete periods of
  /// history exist.
  int min_training_periods = 5;

  /// After initial training, run the §V-B incremental incorporation
  /// whenever this many new complete periods accumulate.
  int update_batch_periods = 2;

  /// Recent movements handed to queries (and the motion fallback).
  int recent_window = 10;
};

/// One object's answer to a predictive range query.
struct RangeHit {
  ObjectId id = 0;

  /// The best-scored prediction that falls inside the query range.
  Prediction prediction;
};

/// Per-object ingestion + prediction service. Not thread-safe; wrap
/// externally if shared.
class MovingObjectStore {
 public:
  explicit MovingObjectStore(ObjectStoreOptions options);

  /// Appends one location sample for `id` at the object's next
  /// timestamp (each object's clock starts at 0 and advances by 1 per
  /// report). Training and incremental updates run inline when their
  /// thresholds are crossed; their errors propagate.
  Status ReportLocation(ObjectId id, const Point& location);

  /// Bulk ingestion convenience.
  Status ReportTrajectory(ObjectId id, const Trajectory& trajectory);

  /// Ids of all tracked objects, ascending.
  std::vector<ObjectId> ObjectIds() const;

  size_t NumObjects() const { return objects_.size(); }

  /// Samples reported so far for `id` (0 when unknown).
  size_t HistoryLength(ObjectId id) const;

  /// The object's trained predictor, or NotFound / FailedPrecondition
  /// when the object is unknown / not yet trained.
  StatusOr<const HybridPredictor*> GetPredictor(ObjectId id) const;

  /// Predicts object `id`'s location at `tq` (absolute time on the
  /// object's clock, after its last report). Uses the object's trained
  /// predictor when available and a pure motion-function answer before
  /// the first training threshold.
  StatusOr<std::vector<Prediction>> PredictLocation(ObjectId id,
                                                    Timestamp tq,
                                                    int k = 1) const;

  /// Predictive range query: every object whose predicted location(s)
  /// at `tq` (its own clock) fall inside `range`. At most one hit per
  /// object (its best-scored matching prediction); hits sorted by score
  /// descending. `k_per_object` controls how many candidate locations
  /// are considered per object. Objects whose last report precedes `tq`
  /// by less than one step are skipped.
  StatusOr<std::vector<RangeHit>> PredictiveRangeQuery(
      const BoundingBox& range, Timestamp tq, int k_per_object = 3) const;

  /// Predictive n-nearest-neighbours: the `n` objects whose top-1
  /// predicted location at `tq` lies closest to `target`, nearest
  /// first. Objects that cannot be queried at `tq` are skipped.
  StatusOr<std::vector<RangeHit>> PredictiveNearestNeighbors(
      const Point& target, Timestamp tq, int n) const;

  /// ---- Continuous monitoring -----------------------------------------
  /// Registers a standing range query: after every location report, the
  /// reporting object's predicted membership in `range` at
  /// (its now + horizon) is re-evaluated, and a ContinuousEvent is
  /// queued whenever the membership flips. Returns the query id.
  int RegisterContinuousQuery(const BoundingBox& range, Timestamp horizon,
                              int k_per_object = 3);

  /// Removes a standing query; pending events for it stay in the queue.
  void UnregisterContinuousQuery(int query_id);

  /// One membership flip detected by a standing query.
  struct ContinuousEvent {
    int query_id = 0;
    ObjectId object = 0;
    /// True when the object is now predicted inside the range; false
    /// when it just left.
    bool entered = false;
    /// The triggering prediction (last matching one when entering; the
    /// best available when leaving).
    Prediction prediction;
    /// The object-clock time the evaluation targeted (now + horizon).
    Timestamp evaluated_at = 0;
  };

  /// Returns and clears the queued events, oldest first.
  std::vector<ContinuousEvent> DrainContinuousEvents();

  /// ---- Persistence ----------------------------------------------------
  /// Writes the whole store (per-object history CSV + trained model +
  /// manifest) under `directory`, creating it if needed.
  Status SaveToDirectory(const std::string& directory) const;

  /// Restores a store written by SaveToDirectory. `options` must match
  /// the one the store was built with (per-object models carry their
  /// own training options; the store options govern thresholds).
  static StatusOr<MovingObjectStore> LoadFromDirectory(
      const std::string& directory, ObjectStoreOptions options);

 private:
  struct ObjectState {
    Trajectory history;
    std::unique_ptr<HybridPredictor> predictor;
    /// Samples already consumed by Train / IncorporateNewHistory.
    size_t consumed_samples = 0;
  };

  struct ContinuousQuery {
    int id = 0;
    BoundingBox range;
    Timestamp horizon = 0;
    int k_per_object = 3;
    /// Last known predicted-membership per object.
    std::map<ObjectId, bool> inside;
  };

  /// Runs initial training or batch incorporation if thresholds allow.
  Status MaybeTrain(ObjectState* state);

  StatusOr<std::vector<Prediction>> PredictForState(
      const ObjectState& state, Timestamp tq, int k) const;

  /// Re-evaluates every standing query for the object that just
  /// reported.
  void EvaluateContinuousQueries(ObjectId id, const ObjectState& state);

  ObjectStoreOptions options_;
  std::map<ObjectId, ObjectState> objects_;
  int next_query_id_ = 1;
  std::map<int, ContinuousQuery> continuous_queries_;
  std::vector<ContinuousEvent> pending_events_;
};

}  // namespace hpm

#endif  // HPM_SERVER_OBJECT_STORE_H_
