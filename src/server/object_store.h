// MovingObjectStore: the moving-objects-database front end around
// HybridPredictor.
//
// The paper's model is per-object (patterns are mined from one object's
// history); a deployment tracks a fleet. This store ingests per-object
// location reports, bootstraps a HybridPredictor per object once enough
// periods accumulate, folds newly accumulated data in batches through
// the §V-B insertion path, and serves two query types:
//   * point prediction  — "where will object O be at time tq?"
//   * predictive range  — "which objects will probably be inside region
//     R at time tq?" (the query type TPR-tree-style predictive indexes
//     serve, here answered from patterns + motion fallback).
//
// Threading model (see docs/ARCHITECTURE.md §8 for the full story): the
// fleet is hash-partitioned into `num_shards` shards. The query read
// path takes NO lock: each shard publishes an immutable directory
// (ShardTable) of stable-address ObjectRecords, and each record
// publishes an immutable per-object snapshot (ObjectView); readers pin
// the store's epoch with an RAII guard, acquire-load those pointers and
// use them in place. Writers (ingest, training swaps, persistence)
// serialise on a per-shard plain mutex, publish replacement
// tables/views with release stores and Retire() the old ones through
// the EpochManager, which frees them only after every reader pinned at
// or before the retirement has unpinned. Fleet queries fan out across
// shards on an internal thread pool; batches execute stall-interleaved
// (server/batch_executor.h). Every public member is safe to call
// concurrently from any number of threads, except move
// construction/assignment and SaveToDirectory/LoadFromDirectory's
// returned store before it is published to other threads.

#ifndef HPM_SERVER_OBJECT_STORE_H_
#define HPM_SERVER_OBJECT_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/admission.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/epoch.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/exec_context.h"
#include "core/hybrid_predictor.h"
#include "io/wal.h"
#include "mining/incremental_miner.h"
#include "server/batch_executor.h"
#include "server/query_pipeline.h"
#include "server/rebuild_scheduler.h"
#include "server/store_types.h"

namespace hpm {

/// The fault site that fails shard `shard`'s share of every fan-out
/// query in a -DHPM_ENABLE_FAULTS=ON build: "server/shard_query:<shard>".
/// Arming it `always` is the circuit-breaker kill switch.
std::string ShardQueryFaultSite(int shard);

/// Durable-ingest configuration (docs/ROBUSTNESS.md has the durability
/// matrix and the degradation contract).
struct DurabilityOptions {
  /// When non-empty, every acknowledged report is appended to a
  /// per-shard write-ahead journal under this directory *before* its
  /// epoch-published view swap makes it visible, and LoadFromDirectory
  /// replays journal segments newer than the loaded snapshot generation.
  /// Empty (the default) disables the journal entirely.
  ///
  /// Point this at a fresh directory (conventionally <store_dir>/wal)
  /// for a fresh store, and at the same directory when recovering via
  /// LoadFromDirectory; constructing a *fresh* store over a journal that
  /// belonged to different store contents is undefined.
  std::string wal_dir;

  /// When appended records reach the device (docs/ROBUSTNESS.md):
  /// every_record survives power loss, interval bounds the power-loss
  /// window, none survives process crashes only.
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryRecord;

  /// kInterval only: minimum spacing between fdatasync calls.
  std::chrono::microseconds sync_interval{50000};

  /// kInterval only: injectable time source for the spacing check
  /// (null = steady clock), so tests drive the policy deterministically.
  std::function<std::chrono::steady_clock::time_point()> clock;

  /// Per-shard segment rollover size.
  size_t max_segment_bytes = 4 * 1024 * 1024;

  /// Retention cap for <store_dir>/quarantine/: once more than this many
  /// files accumulate, the oldest are evicted. 0 = unbounded (the
  /// pre-cap behaviour).
  size_t max_quarantine_files = 64;
};

/// Incremental pattern maintenance + drift-triggered model rebuilds
/// (docs/ARCHITECTURE.md has the counts → candidates → rebuild →
/// freeze → publish walkthrough).
struct RebuildOptions {
  /// Master switch. Off (default) keeps the legacy batch path: initial
  /// training plus §V-B WithNewHistory incorporation on period
  /// thresholds. On, every object carries an IncrementalMiner fed on
  /// the ingest path, and model refreshes are *rebuilds* from the
  /// miner's window, triggered when its drift score crosses
  /// `drift_threshold`.
  bool incremental = false;

  /// Where rebuilds run. true (default): a background worker
  /// (RebuildScheduler) rebuilds off the reporting hot path and the
  /// last-good model keeps serving meanwhile. false: the rebuild runs
  /// inline on the reporting thread — deterministic, what the
  /// differential and crash/replay tests use. WAL replay and
  /// LoadFromDirectory always rebuild inline regardless, so recovery
  /// is deterministic.
  bool background = true;

  /// Per-object miner configuration (window length, candidate bound,
  /// drift scoring). region_match_slack is overridden with the
  /// predictor's value so the miner maps points exactly as training
  /// does.
  IncrementalMinerOptions miner;

  /// Rebuild when an object's drift score reaches this. The score is a
  /// decayed sum of support-crossing and unmatched-point events, so
  /// "3.0" roughly means three recent pattern-set changes.
  double drift_threshold = 3.0;

  /// Bound on the background queue; a full queue drops the request
  /// (rebuild.dropped) and drift re-requests it on a later report.
  size_t max_pending = 64;

  /// Minimum gap between background rebuild starts (0 = unthrottled).
  /// When the whole fleet drifts at once this turns the rebuild storm
  /// into a steady trickle; skipped objects stay queued or are
  /// re-requested by their drift score. FlushRebuilds overrides it.
  std::chrono::milliseconds min_rebuild_interval{0};

  /// Run the rebuild worker at idle scheduling priority (SCHED_IDLE on
  /// Linux; no-op elsewhere): rebuilds then consume only spare CPU and
  /// a waking query or ingest thread preempts a running build instead
  /// of time-slicing against it. This is how "training ranks below
  /// query traffic" holds even when the machine has no free core.
  /// Quiesce points (FlushRebuilds) still work — the drainer sleeps,
  /// which is exactly what lets an idle-priority worker run.
  bool idle_priority = true;
};

/// Store configuration.
struct ObjectStoreOptions {
  /// Training / query configuration shared by every object's predictor.
  HybridPredictorOptions predictor;

  /// Train an object's first model once this many complete periods of
  /// history exist.
  int min_training_periods = 5;

  /// After initial training, run the §V-B incremental incorporation
  /// whenever this many new complete periods accumulate.
  int update_batch_periods = 2;

  /// Recent movements handed to queries (and the motion fallback).
  int recent_window = 10;

  /// Number of hash partitions of the fleet; each shard has its own
  /// writer lock and published table, so independent shards ingest fully
  /// concurrently (reads never contend regardless). Must be >= 1.
  int num_shards = 8;

  /// Stall-interleaved batch execution (PredictLocationBatch): how many
  /// predictions each fan-out lane keeps in flight and the traversal
  /// budget per step. width = 1 runs the batch strictly sequentially.
  BatchExecOptions batch;

  /// Worker threads for fleet-query fan-out (range / kNN / batch).
  /// 0 = ThreadPool::DefaultThreadCount(). With 1, fan-out runs inline
  /// on the calling thread (no pool hop).
  int query_threads = 0;

  /// ---- Overload control (all defaults = off; see docs/ROBUSTNESS.md) ----

  /// Admission control consulted at every entry point (ingest and
  /// queries). The defaults admit everything; configure a rate and/or
  /// in-flight cap to make the store reject excess work with
  /// kUnavailable plus a retry-after hint (rung 2 of the ladder).
  AdmissionOptions admission;

  /// Bound on the fan-out pool's queued-but-unstarted tasks. When the
  /// queue is full, fan-out work runs inline on the calling thread
  /// (backpressure) instead of queueing unboundedly. 0 = unbounded.
  size_t max_pool_queue = 0;

  /// Rung 1 of the load-shedding ladder: once the fan-out pool's queue
  /// depth reaches this, queries skip the pattern side and answer with
  /// the RMF motion function (Prediction::degraded = kOverloaded).
  /// 0 = never degrade on queue depth.
  size_t degrade_queue_depth = 0;

  /// Rung 1, deadline-headroom trigger: a query whose deadline has less
  /// than this much time remaining is answered RMF-only immediately —
  /// the pattern side would blow the budget anyway. 0 = off.
  std::chrono::microseconds degrade_min_headroom{0};

  /// Per-shard circuit breakers over fan-out outcomes: a shard whose
  /// queries keep failing is tripped out of range/kNN fan-outs (the
  /// query returns partial=true) until a half-open probe succeeds.
  /// The defaults never trip on a healthy shard.
  CircuitBreakerOptions breaker;

  /// Observes every per-shard breaker transition (called under the
  /// breaker's lock — keep it cheap). For diagnostics; `hpm_tool
  /// faultcheck` prints these.
  std::function<void(int shard, CircuitBreaker::State from,
                     CircuitBreaker::State to)>
      breaker_listener;

  /// Durable ingest: write-ahead journal + quarantine retention. The
  /// default (empty wal_dir) keeps ingest memory-only between snapshots.
  DurabilityOptions durability;

  /// Incremental pattern maintenance + background rebuilds. Off by
  /// default. NOTE: with `rebuild.incremental && rebuild.background`,
  /// the store must not be moved once reports have been ingested — the
  /// lazily created background worker holds the store's address.
  RebuildOptions rebuild;

  /// When set, every entry-point call records a per-query Trace (pipeline
  /// stage spans, per-object child work, counters) and hands it here from
  /// the pipeline's Account stage, on the calling thread. Unset (the
  /// default) means tracing is fully disabled and costs one branch per
  /// span site. Keep the sink cheap; it runs inside the query's latency.
  TraceSink trace_sink;
};

/// Per-object ingestion + prediction service. Thread-safe: shards, lock
/// striping and model-snapshot swaps are internal (see header comment).
class MovingObjectStore {
 public:
  explicit MovingObjectStore(ObjectStoreOptions options);

  /// Movable so LoadFromDirectory can return by value; moving a store
  /// that other threads are using is undefined (publish after moving).
  MovingObjectStore(MovingObjectStore&&) noexcept = default;
  MovingObjectStore& operator=(MovingObjectStore&&) noexcept = default;

  /// Appends one location sample for `id` at the object's next
  /// timestamp (each object's clock starts at 0 and advances by 1 per
  /// report). Training and incremental updates run on the reporting
  /// thread when their thresholds are crossed — but outside the shard
  /// lock, against a history/model snapshot, so concurrent readers of
  /// the same shard are never blocked behind mining; their errors
  /// propagate. Concurrent reports for the *same* object are safe but
  /// their relative order (and thus the object's trajectory) is up to
  /// the scheduler; give each object one reporting thread for
  /// deterministic histories.
  ///
  /// Hardened against malformed input: NaN/Inf coordinates are rejected
  /// with kInvalidArgument (and counted — RejectedReports(id)) instead
  /// of poisoning later training. Under overload, admission control may
  /// reject with kUnavailable + retry-after, and (re)training is
  /// deferred until pressure clears (queries outrank model refreshes).
  Status ReportLocation(ObjectId id, const Point& location);

  /// ReportLocation with an explicit timestamp: `t` must be exactly the
  /// object's next tick (== HistoryLength(id)). A smaller `t` is a
  /// non-monotone (out-of-order / duplicate) report and a larger one a
  /// gap; both are rejected with kInvalidArgument and counted per
  /// object rather than silently corrupting the trajectory's unit-step
  /// time base.
  Status ReportLocationAt(ObjectId id, Timestamp t, const Point& location);

  /// Bulk ingestion convenience.
  Status ReportTrajectory(ObjectId id, const Trajectory& trajectory);

  /// Malformed reports rejected so far for `id` (NaN/Inf coordinates,
  /// non-monotone timestamps). 0 for unknown objects.
  uint64_t RejectedReports(ObjectId id) const;

  /// Ids of all tracked objects, ascending. Shard-snapshot read: ids
  /// reported while the call runs may or may not be included.
  std::vector<ObjectId> ObjectIds() const;

  size_t NumObjects() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Samples reported so far for `id` (0 when unknown).
  size_t HistoryLength(ObjectId id) const;

  /// A shared snapshot of the object's trained predictor, or NotFound /
  /// FailedPrecondition when the object is unknown / not yet trained.
  /// The snapshot stays valid (and immutable) after later retrains swap
  /// the live model.
  StatusOr<std::shared_ptr<const HybridPredictor>> GetPredictor(
      ObjectId id) const;

  /// Predicts object `id`'s location at `tq` (absolute time on the
  /// object's clock, after its last report). Uses the object's trained
  /// predictor when available and a pure motion-function answer before
  /// the first training threshold. When `deadline` expires mid-query the
  /// answer degrades to the RMF motion function (Prediction::degraded
  /// records why) instead of failing.
  StatusOr<std::vector<Prediction>> PredictLocation(
      ObjectId id, Timestamp tq, int k = 1,
      Deadline deadline = Deadline::Infinite()) const;

  /// Amortised multi-object point prediction: one result per input id,
  /// in input order. Snapshots are taken with one lock acquisition per
  /// shard and the per-object prediction work fans out on the thread
  /// pool. `nullopt`-free: every slot holds the same StatusOr that
  /// PredictLocation(ids[i], tq, k) would have returned at snapshot
  /// time.
  std::vector<StatusOr<std::vector<Prediction>>> PredictLocationBatch(
      const std::vector<ObjectId>& ids, Timestamp tq, int k = 1,
      Deadline deadline = Deadline::Infinite()) const;

  /// Predictive range query: every object whose predicted location(s)
  /// at `tq` (its own clock) fall inside `range`. At most one hit per
  /// object (its best-scored matching prediction); hits sorted by score
  /// descending. `k_per_object` controls how many candidate locations
  /// are considered per object. Objects whose last report precedes `tq`
  /// by less than one step are skipped. Fans out across shards on the
  /// thread pool; each shard's objects are evaluated against their
  /// epoch-protected published views (no lock taken).
  /// A `deadline` bounds the pattern-side work per object: once it
  /// expires, remaining objects are evaluated with their (cheap) RMF
  /// answers, so the result set still covers every eligible object.
  /// A shard whose circuit breaker is open (or whose share fails) is
  /// skipped and the result is flagged partial instead of the whole
  /// query failing; under overload the per-object answers degrade to
  /// RMF (DegradedReason::kOverloaded) or the call is rejected with
  /// kUnavailable + retry-after.
  StatusOr<FleetQueryResult> PredictiveRangeQuery(
      const BoundingBox& range, Timestamp tq, int k_per_object = 3,
      Deadline deadline = Deadline::Infinite()) const;

  /// Predictive n-nearest-neighbours: the `n` objects whose top-1
  /// predicted location at `tq` lies closest to `target`, nearest
  /// first. Objects that cannot be queried at `tq` are skipped. Same
  /// fan-out (and the same partial/overload contract) as
  /// PredictiveRangeQuery.
  StatusOr<FleetQueryResult> PredictiveNearestNeighbors(
      const Point& target, Timestamp tq, int n,
      Deadline deadline = Deadline::Infinite()) const;

  /// ---- Observability --------------------------------------------------
  /// Snapshot of the overload-control counters.
  OverloadStats overload_stats() const;

  /// True when the store was configured with a write-ahead journal
  /// (DurabilityOptions::wal_dir non-empty).
  bool wal_enabled() const { return !options_.durability.wal_dir.empty(); }

  /// True while the journal is healthy: enabled and no disk fault has
  /// dropped the store to non-durable serving. Mirrors the
  /// store.wal_disabled metric (the health flag `hpm_tool stats` reports).
  bool wal_durable() const {
    return wal_enabled() && !wal_disabled_->load(std::memory_order_relaxed);
  }

  /// Snapshot of the serving metrics (per-op admitted/shed counters,
  /// pipeline stage latency histograms, TPT traversal effort, …). Names
  /// are documented in docs/OBSERVABILITY.md.
  MetricsSnapshot metrics_snapshot() const {
    return metrics_registry_->TakeSnapshot();
  }

  /// State of shard `shard`'s circuit breaker.
  CircuitBreaker::State BreakerState(int shard) const;

  /// Queued-but-unstarted fan-out tasks (the rung-1 pressure signal).
  size_t PoolQueueDepth() const { return pool_->queue_depth(); }

  /// Entry-point calls currently admitted and running.
  int InFlight() const { return admission_->in_flight(); }

  /// ---- Continuous monitoring -----------------------------------------
  /// Registers a standing range query: after every location report, the
  /// reporting object's predicted membership in `range` at
  /// (its now + horizon) is re-evaluated, and a ContinuousEvent is
  /// queued whenever the membership flips. Returns the query id.
  int RegisterContinuousQuery(const BoundingBox& range, Timestamp horizon,
                              int k_per_object = 3);

  /// Removes a standing query; pending events for it stay in the queue.
  void UnregisterContinuousQuery(int query_id);

  /// One membership flip detected by a standing query.
  struct ContinuousEvent {
    int query_id = 0;
    ObjectId object = 0;
    /// True when the object is now predicted inside the range; false
    /// when it just left.
    bool entered = false;
    /// The triggering prediction (last matching one when entering; the
    /// best available when leaving).
    Prediction prediction;
    /// The object-clock time the evaluation targeted (now + horizon).
    Timestamp evaluated_at = 0;
  };

  /// Returns and clears the queued events, oldest first. Safe under
  /// concurrent reporters (the event queue has its own mutex).
  std::vector<ContinuousEvent> DrainContinuousEvents();

  /// ---- Persistence ----------------------------------------------------
  /// Writes the whole store (per-object history CSV + trained model +
  /// manifest) under `directory`, creating it if needed. Each object is
  /// snapshotted under its shard's writer lock; objects reported while
  /// the save runs may be missed.
  Status SaveToDirectory(const std::string& directory) const;

  /// Restores a store written by SaveToDirectory. `options` must match
  /// the one the store was built with (per-object models carry their
  /// own training options; the store options govern thresholds).
  static StatusOr<MovingObjectStore> LoadFromDirectory(
      const std::string& directory, ObjectStoreOptions options);

  /// The snapshot generation this store's state sits on: set by
  /// LoadFromDirectory to the generation it loaded and advanced by every
  /// successful SaveToDirectory. 0 for a store that has never touched
  /// disk. Replication stamps replies with it.
  uint64_t generation() const {
    return generation_->load(std::memory_order_relaxed);
  }

  /// ---- Replication (server/replication.h drives this) -----------------
  /// Applies one record shipped from a primary's journal, with the exact
  /// semantics of crash replay: a report at the object's next tick
  /// appends (journaling locally when a journal is attached, retraining
  /// exactly as live ingest would — a replica applying the same records
  /// in the same order converges to bit-identical models); a record the
  /// local state already covers returns false (idempotent re-delivery);
  /// a record *past* the next tick is kOutOfRange — the follower missed
  /// records and must resync rather than fabricate history. Rejected
  /// tallies and baselines apply unconditionally. In incremental mode
  /// the record feeds the object's miner exactly as live ingest does,
  /// so a replica (or a crash-replayed store) converges to the same
  /// pattern state as the primary.
  StatusOr<bool> ApplyReplicated(const WalRecord& record);

  /// ---- Incremental maintenance (RebuildOptions::incremental) ----------
  /// Quiesce point: drains the background rebuild queue, then runs any
  /// still-pending drift-triggered rebuilds inline. After it returns,
  /// every object's model reflects its miner's current window — the
  /// deterministic state the differential tests compare. No-op when
  /// incremental mode is off.
  Status FlushRebuilds();

  /// Introspection snapshot of one object's miner, for tests and
  /// tooling.
  struct MinerSnapshot {
    double drift = 0.0;
    /// Samples covered by completed periods (the rebuild window's end).
    size_t window_end = 0;
    /// Samples the served model was built from.
    size_t consumed_samples = 0;
    /// The miner's window as a trajectory (what a rebuild would train
    /// on).
    Trajectory window;
    /// The maintained pattern set (empty until regions are adopted).
    std::vector<TrajectoryPattern> patterns;
    MinerStats stats;
  };

  /// kNotFound for unknown objects, kFailedPrecondition when the store
  /// is not in incremental mode.
  StatusOr<MinerSnapshot> MinerState(ObjectId id) const;

 private:
  /// Everything a prediction needs, snapshotted by the writer at publish
  /// time. Immutable once published; readers use it in place (no copy,
  /// no refcount touch) while their epoch pin is held, and the epoch
  /// manager frees it after the last such reader unpins.
  struct ObjectView {
    ObjectId id = 0;
    size_t history_size = 0;
    Timestamp now = 0;
    std::vector<TimedPoint> recent;
    /// Shared handle pins the model generation for at least the view's
    /// lifetime; readers go through the raw pointer.
    std::shared_ptr<const HybridPredictor> predictor;
  };

  /// One tracked object. Stable-address (owned by unique_ptr in the
  /// shard's record map, never deleted while the store lives). The
  /// writer fields are guarded by the owning shard's write_mutex; `view`
  /// is the epoch-protected published snapshot, rebuilt and swapped on
  /// every append and every model swap.
  struct ObjectRecord {
    explicit ObjectRecord(ObjectId object_id) : id(object_id) {}
    ~ObjectRecord() { delete view.load(std::memory_order_relaxed); }
    ObjectRecord(const ObjectRecord&) = delete;
    ObjectRecord& operator=(const ObjectRecord&) = delete;

    const ObjectId id;

    // --- writer state (shard write_mutex) --------------------------------
    Trajectory history;
    /// Immutable trained model; replaced wholesale (never mutated) when
    /// training or incremental incorporation completes.
    std::shared_ptr<const HybridPredictor> predictor;
    /// Samples already consumed by Train / WithNewHistory / a rebuild.
    size_t consumed_samples = 0;
    /// Incremental mode only: the streaming pattern-maintenance state
    /// fed on every append (null in legacy mode).
    std::unique_ptr<IncrementalMiner> miner;
    /// True while a reporting thread is mining this object outside the
    /// writer lock; prevents duplicate concurrent (re)trains.
    bool training_in_flight = false;

    // --- read side -------------------------------------------------------
    /// Release-published, acquire-loaded, non-null from the moment the
    /// record becomes reachable through a shard table.
    std::atomic<const ObjectView*> view{nullptr};
  };

  /// A shard's immutable directory: records sorted by id. Replaced
  /// wholesale (publish + retire) when an object is added.
  struct ShardTable {
    std::vector<const ObjectRecord*> records;
    const ObjectRecord* Find(ObjectId id) const;
  };

  struct Shard {
    Shard() : table(new ShardTable) {}
    ~Shard() { delete table.load(std::memory_order_relaxed); }

    /// Serialises writers (ingest, training swaps, persistence reads of
    /// writer state). Never taken on a query read path.
    mutable std::mutex write_mutex;
    /// Record ownership (write_mutex). Records are never erased.
    std::map<ObjectId, std::unique_ptr<ObjectRecord>> records;
    /// Malformed reports rejected per object. Kept beside `records` (not
    /// inside ObjectRecord) so a rejected report never creates a phantom
    /// object in ObjectIds()/NumObjects().
    std::map<ObjectId, uint64_t> rejected_reports;
    /// The shard's write-ahead journal appender (write_mutex; null when
    /// durability is off, or until LoadFromDirectory finishes replaying).
    std::unique_ptr<WalWriter> wal;
    /// Epoch-protected, acquire-loaded by readers.
    std::atomic<const ShardTable*> table;
  };

  struct ContinuousQuery {
    int id = 0;
    BoundingBox range;
    Timestamp horizon = 0;
    int k_per_object = 3;
    /// Last known predicted-membership per object.
    std::map<ObjectId, bool> inside;
  };

  /// Standing-query registry and pending-event queue. Lock ordering:
  /// `mutex` before `events_mutex`; neither is ever held while taking a
  /// shard lock.
  struct ContinuousState {
    std::mutex mutex;
    int next_query_id = 1;
    std::map<int, ContinuousQuery> queries;
    std::mutex events_mutex;
    std::vector<ContinuousEvent> pending_events;
  };

  static size_t ShardIndex(ObjectId id, size_t num_shards);
  Shard& ShardFor(ObjectId id) const {
    return *shards_[ShardIndex(id, shards_.size())];
  }

  /// Builds a fresh view of `record`'s writer state (caller holds the
  /// shard's write_mutex, or owns the record exclusively while loading).
  const ObjectView* BuildView(const ObjectRecord& record) const;

  /// Swaps `view` in as `record`'s published snapshot and retires the
  /// previous one (write_mutex held).
  void PublishView(ObjectRecord& record, const ObjectView* view);

  /// Rebuilds the shard's table from its record map, publishes it and
  /// retires the previous table (write_mutex held). `record`'s view must
  /// already be published — readers must never see a viewless record.
  void PublishTable(Shard& shard);

  /// The published view for `id`, or null when the object is unknown.
  /// Caller must hold an epoch pin taken before the call.
  const ObjectView* FindView(const Shard& shard, ObjectId id) const;

  /// Predicts against a published view; the caller holds an epoch pin,
  /// no locks. Mirrors the pre-shard PredictForState semantics exactly.
  /// The execution context (may be null for context-free callers —
  /// continuous queries) supplies the deadline, the rung-1 shed verdict
  /// (a trained object's answer is then the RMF motion function stamped
  /// DegradedReason::kOverloaded), scratch lane `lane`, and per-query
  /// accounting.
  StatusOr<std::vector<Prediction>> PredictView(const ObjectView& view,
                                                Timestamp tq, int k,
                                                QueryContext* ctx,
                                                int lane) const;

  /// The shared front half of PredictView and the batched path:
  /// validation, accounting, query assembly, and the shed / cold-start
  /// answers. Returns the finished result for queries that never reach
  /// the pattern side; otherwise fills `*query` and returns nullopt —
  /// the caller runs `view.predictor->Predict(*query)` (sequential) or
  /// a PredictTask (batched), which are the same computation.
  std::optional<StatusOr<std::vector<Prediction>>> PreparePredict(
      const ObjectView& view, Timestamp tq, int k, QueryContext* ctx,
      int lane, PredictiveQuery* query) const;

  /// Shared ReportLocation/ReportLocationAt back half, one pipeline
  /// instantiation: validates the sample (including `*expected_t`'s
  /// range when non-null), appends, trains, feeds continuous queries.
  Status Ingest(ObjectId id, const Point& location,
                const Timestamp* expected_t);

  /// Records a malformed report for `id` (creates no trajectory); the
  /// aggregate count flows through `ctx` to the Account stage.
  void RecordRejectedReport(ObjectId id, QueryContext& ctx);

  /// ---- Durable ingest (io/wal; implementation split with store_io.cc) --
  /// Opens per-shard journal writers under durability.wal_dir, continuing
  /// each shard's segment sequence past whatever already exists on disk.
  /// `base_gen` is the snapshot generation the new segments sit on top of
  /// (0 for a fresh store). Constructor/LoadFromDirectory degrade to
  /// non-durable serving via DisableWal when this fails.
  Status InitWal(uint64_t base_gen);

  /// Appends `record` to `shard`'s journal (write_mutex held). A no-op
  /// when the journal is off, not yet attached, or disabled; any append
  /// or sync failure degrades the store instead of propagating.
  void WalAppend(Shard& shard, const WalRecord& record);

  /// Flips the store to non-durable serving (once): sets the health flag
  /// and bumps store.wal_disabled. Reports keep being acknowledged.
  void DisableWal(const Status& cause) const;

  /// Applies one replayed journal record to the freshly loaded store:
  /// records at the object's next tick append (and may retrain, exactly
  /// as live ingest would); records already covered by the snapshot, or
  /// gapped by a stale segment, are skipped. Returns the number of
  /// records applied (0 or 1).
  uint64_t ApplyWalRecord(const WalRecord& record);

  /// Replays every journal segment with base_gen >= `loaded_gen` in
  /// (shard, seq) order: truncates torn tails, quarantines mid-log
  /// corruption (halting that shard's stream), and feeds surviving
  /// records through ApplyWalRecord. Called by LoadFromDirectory before
  /// writers attach, so replay never re-journals itself.
  void ReplayWal(uint64_t loaded_gen);

  /// Runs initial training or batch incorporation for `id` if the
  /// post-append thresholds allow, mining outside the shard lock.
  /// Under rung-1 pressure the train is deferred — query traffic
  /// outranks model refreshes; the thresholds re-fire on a later report.
  /// In incremental mode the refresh trigger is the miner's drift score
  /// instead of the period threshold, and the refresh is a rebuild:
  /// inline when `allow_background` is false (WAL replay, sync mode),
  /// queued on the background scheduler otherwise.
  Status MaybeTrain(Shard& shard, ObjectId id, QueryPipeline& pipeline,
                    bool allow_background);

  /// ---- Incremental maintenance internals ------------------------------
  /// A fresh miner configured from options_ (period, mining params and
  /// region-match slack copied from the predictor options, metric hooks
  /// wired into metrics_).
  std::unique_ptr<IncrementalMiner> NewMiner() const;

  /// One drift-triggered rebuild of `id`: captures the miner's window
  /// under the shard lock, mines + freezes a fresh model off-lock
  /// (fault sites "rebuild/mine" and "rebuild/freeze"), then re-locks
  /// and publishes it via the epoch snapshot swap ("rebuild/publish").
  /// Any failure leaves the last-good model serving and counts
  /// rebuild.failed. Safe to call for ids with nothing to do.
  Status RebuildObject(Shard& shard, ObjectId id);

  /// The background worker, created lazily on the first background
  /// enqueue (never during load/replay, so LoadFromDirectory's returned
  /// store is still movable until it starts ingesting).
  RebuildScheduler* EnsureScheduler();

  /// One shard's share of PredictiveRangeQuery / NearestNeighbors,
  /// running as a fan-out lane of `ctx`: pin the epoch in the lane's
  /// scratch guard, walk the shard's published table and predict against
  /// each eligible view in place — no lock, no copies. `shard_index`
  /// names the per-shard fault site and the scratch lane.
  Status RangeQueryShard(int shard_index, const BoundingBox& range,
                         Timestamp tq, int k_per_object, QueryContext& ctx,
                         std::vector<RangeHit>* hits) const;
  Status NearestNeighborShard(int shard_index, Timestamp tq,
                              QueryContext& ctx,
                              std::vector<RangeHit>* hits) const;

  /// The borrowed-subsystem environment every pipeline instantiation
  /// receives.
  QueryPipeline::Env PipelineEnv() const;

  /// Re-evaluates every standing query for the object that just
  /// reported, against the given view (caller holds an epoch pin).
  void EvaluateContinuousQueries(const ObjectView& view);

  bool HasContinuousQueries() const;

  ObjectStoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ContinuousState> continuous_;
  std::unique_ptr<AdmissionController> admission_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::unique_ptr<AtomicOverloadStats> stats_;
  std::unique_ptr<MetricsRegistry> metrics_registry_;
  std::unique_ptr<StoreMetrics> metrics_;
  /// Set once by DisableWal when a disk fault drops the store to
  /// non-durable serving. Heap-allocated so the store stays movable.
  std::unique_ptr<std::atomic<bool>> wal_disabled_;
  /// Snapshot generation (see generation()); heap-allocated for
  /// movability, mutated by the const SaveToDirectory after commit.
  std::unique_ptr<std::atomic<uint64_t>> generation_;
  /// Destroyed before everything above it, so draining its limbo (which
  /// bumps the epoch.* counters) still has a live metrics registry.
  std::unique_ptr<EpochManager> epoch_;
  /// True while ReplayWal is feeding records back through the ingest
  /// path; forces rebuilds inline (deterministic recovery, and no
  /// background worker is created while the store may still be moved).
  std::unique_ptr<std::atomic<bool>> replaying_;
  /// Background rebuild worker, created lazily by EnsureScheduler.
  /// Declared after epoch_ so it is destroyed (worker joined) while the
  /// epoch manager, shards and metrics it uses are still alive.
  std::unique_ptr<std::mutex> scheduler_mu_;
  std::unique_ptr<std::atomic<RebuildScheduler*>> scheduler_ptr_;
  std::unique_ptr<RebuildScheduler> scheduler_;
};

}  // namespace hpm

#endif  // HPM_SERVER_OBJECT_STORE_H_
