// RebuildScheduler: the background lane for drift-triggered model
// rebuilds.
//
// One worker thread drains a bounded, de-duplicated queue of object ids
// and runs the store-supplied rebuild callback for each — so mining and
// TPT freezing happen off the reporting hot path, and readers keep
// serving the last-good model throughout (the callback publishes via
// the same epoch snapshot swap training uses). Rebuild work ranks below
// query traffic: before each rebuild the worker consults the
// store-supplied pressure probe (the rung-1 queue-depth signal) and
// backs off while it reports pressure, counting each deferral.
//
// Bounded by design: a full queue drops the enqueue (the caller's drift
// score is retained, so a later report re-requests the rebuild), and an
// id already queued is not queued twice.
//
// Drain() waits until the queue is empty and the worker idle — the
// quiesce point FlushRebuilds uses to make a background-mode store's
// final state deterministic. Draining overrides the pressure probe:
// a caller demanding quiesce outranks the deferral heuristic.

#ifndef HPM_SERVER_REBUILD_SCHEDULER_H_
#define HPM_SERVER_REBUILD_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <thread>

#include "common/metrics.h"
#include "server/store_types.h"

namespace hpm {

class RebuildScheduler {
 public:
  struct Options {
    /// Queue bound; Enqueue drops (returns kDropped) beyond it.
    size_t max_pending = 64;

    /// Sleep between pressure re-checks while deferring.
    std::chrono::milliseconds defer_backoff{1};

    /// Minimum gap between rebuild *starts* (0 = unthrottled). Bounds
    /// the worker's duty cycle when the whole fleet drifts at once — a
    /// rebuild storm becomes a steady trickle, and an object whose turn
    /// is skipped stays queued (or is re-requested by its drift score).
    /// Drain() overrides the throttle the same way it overrides the
    /// pressure probe: quiesce outranks pacing.
    std::chrono::milliseconds min_start_interval{0};

    /// Counts deferrals (rebuild.deferred); may be null.
    Counter* deferred_counter = nullptr;

    /// Run the worker at idle scheduling priority (SCHED_IDLE on
    /// Linux): a rebuild then consumes only CPU no runnable ingest or
    /// query thread wants, and a waking query preempts it immediately
    /// instead of time-slicing against it. No-op where the platform
    /// call is unavailable. Off by default at this layer — a caller
    /// that spin-waits on worker progress while hogging every core
    /// would starve an idle-priority worker.
    bool idle_priority = false;
  };

  enum class EnqueueResult { kQueued, kAlreadyPending, kDropped };

  /// `rebuild` runs on the worker thread, one call at a time; it must
  /// not assume any lock is held. `under_pressure` (may be null) is
  /// polled before each rebuild; while it returns true the worker backs
  /// off instead of rebuilding. Both must stay callable until the
  /// scheduler is destroyed.
  RebuildScheduler(Options options, std::function<void(ObjectId)> rebuild,
                   std::function<bool()> under_pressure);

  /// Stops the worker; queued-but-unstarted rebuilds are dropped (the
  /// drift that requested them is retained by the store).
  ~RebuildScheduler();

  RebuildScheduler(const RebuildScheduler&) = delete;
  RebuildScheduler& operator=(const RebuildScheduler&) = delete;

  EnqueueResult Enqueue(ObjectId id);

  /// Blocks until the queue is empty and no rebuild is running.
  /// Enqueues racing with the drain extend it.
  void Drain();

  size_t pending() const;

 private:
  void Worker();

  const Options options_;
  const std::function<void(ObjectId)> rebuild_;
  const std::function<bool()> under_pressure_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<ObjectId> queue_;
  std::set<ObjectId> queued_ids_;
  bool stopping_ = false;
  bool draining_ = false;
  int active_ = 0;

  std::thread worker_;
};

}  // namespace hpm

#endif  // HPM_SERVER_REBUILD_SCHEDULER_H_
