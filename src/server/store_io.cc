// Directory persistence for MovingObjectStore — generational, crash-safe.
//
// Layout (docs/ROBUSTNESS.md has the recovery semantics):
//   <dir>/CURRENT            "MANIFEST-<gen>\n"; atomically swapped *last*,
//                            so it always names a fully written generation
//   <dir>/MANIFEST-<gen>     header "hpm-store-manifest v2", one line per
//                            object:
//                            "object <id> <len> <consumed> <model?> <crc>"
//                            (crc = CRC32 of the object's csv bytes, hex),
//                            and a trailing "crc32 <hex>" line over every
//                            preceding byte
//   <dir>/<id>-<gen>.csv     the object's full reported history
//   <dir>/<id>-<gen>.model   the trained HybridPredictor (when present;
//                            self-validating via its own CRC footer)
//   <dir>/quarantine/        corrupt files are moved here on load, so a
//                            failed generation can be inspected without
//                            being retried forever (bounded: oldest files
//                            are evicted past DurabilityOptions::
//                            max_quarantine_files)
//
// When ObjectStoreOptions::durability.wal_dir is set (conventionally
// <dir>/wal), ingest additionally journals every acknowledged report:
//   <wal_dir>/wal-<shard>-<seq>.log   CRC32-framed report journal segments
//                                     (io/wal.h has the frame format)
//   <wal_dir>/quarantine/             corrupt segments, same bound
// A save rotates every shard's journal to a new segment stamped with the
// new generation *inside the same lock hold that snapshots the shard*, so
// pre-rotation segments are subsets of the snapshot; a load replays the
// segments stamped at-or-after the loaded generation on top of it and
// only then reattaches writers. Segments older than the gen-1 fallback
// target are retired after the CURRENT swap.
//
// Every file is written via AtomicWriteFile (temp + fsync + rename), and a
// save becomes visible only when CURRENT is swapped; a crash anywhere
// before that leaves the previous generation fully intact. Loads verify
// checksums, quarantine whatever fails, and fall back generation by
// generation until one verifies; journal tails torn by a crash are
// truncated at the first bad frame and replay continues.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/retry.h"
#include "io/atomic_file.h"
#include "io/csv.h"
#include "server/object_store.h"

namespace hpm {

namespace {

constexpr char kManifestHeader[] = "hpm-store-manifest v2";
constexpr uint64_t kStoreIoRetrySeed = 0x73746f72655f696fULL;  // "store_io"

std::string CurrentPath(const std::string& dir) { return dir + "/CURRENT"; }

std::string ManifestName(uint64_t gen) {
  return "MANIFEST-" + std::to_string(gen);
}

std::string ManifestPath(const std::string& dir, uint64_t gen) {
  return dir + "/" + ManifestName(gen);
}

std::string CsvPath(const std::string& dir, ObjectId id, uint64_t gen) {
  return dir + "/" + std::to_string(id) + "-" + std::to_string(gen) + ".csv";
}

std::string ModelPath(const std::string& dir, ObjectId id, uint64_t gen) {
  return dir + "/" + std::to_string(id) + "-" + std::to_string(gen) +
         ".model";
}

/// Parses the generation number out of a "MANIFEST-<gen>" name.
bool ParseManifestName(const std::string& name, uint64_t* gen) {
  const std::string prefix = "MANIFEST-";
  if (name.rfind(prefix, 0) != 0 || name.size() == prefix.size()) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *gen = value;
  return true;
}

/// All generations with a manifest file in `dir`, descending.
std::vector<uint64_t> ListGenerations(const std::string& dir) {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t gen = 0;
    if (ParseManifestName(entry.path().filename().string(), &gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end(), std::greater<uint64_t>());
  return gens;
}

/// The generation CURRENT points at, if CURRENT exists and parses.
bool ReadCurrentGeneration(const std::string& dir, uint64_t* gen) {
  StatusOr<std::string> content = ReadFileToString(CurrentPath(dir));
  if (!content.ok()) return false;
  std::string name = *content;
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }
  return ParseManifestName(name, gen);
}

/// Moves a corrupt file into <dir>/quarantine/ (best effort), then
/// enforces the retention cap by evicting the oldest quarantined files
/// (by modification time; `max_files` == 0 means unbounded). Returns
/// whether the file was actually moved.
bool QuarantineFile(const std::string& dir, const std::string& path,
                    size_t max_files) {
  std::error_code ec;
  const std::filesystem::path source(path);
  if (!std::filesystem::exists(source, ec)) return false;
  const std::filesystem::path target_dir =
      std::filesystem::path(dir) / "quarantine";
  std::filesystem::create_directories(target_dir, ec);
  std::filesystem::rename(source, target_dir / source.filename(), ec);
  const bool moved = !ec;

  if (max_files > 0) {
    struct Quarantined {
      std::filesystem::file_time_type mtime;
      std::filesystem::path path;
    };
    std::vector<Quarantined> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(target_dir, ec)) {
      std::error_code entry_ec;
      if (!entry.is_regular_file(entry_ec)) continue;
      files.push_back({entry.last_write_time(entry_ec), entry.path()});
    }
    if (files.size() > max_files) {
      std::sort(files.begin(), files.end(),
                [](const Quarantined& a, const Quarantined& b) {
                  return a.mtime < b.mtime;
                });
      for (size_t i = 0; i + max_files < files.size(); ++i) {
        std::filesystem::remove(files[i].path, ec);
      }
    }
  }
  return moved;
}

/// One parsed manifest entry.
struct ManifestEntry {
  ObjectId id = 0;
  size_t history_len = 0;
  size_t consumed = 0;
  bool has_model = false;
  uint32_t csv_crc = 0;
};

/// Parses and checksum-verifies a v2 manifest. On failure the manifest
/// itself is the corrupt file.
Status ParseManifest(const std::string& content,
                     std::vector<ManifestEntry>* entries) {
  // The trailing line must be "crc32 <hex>" over every byte before it.
  const size_t last_newline = content.size() >= 2
                                  ? content.rfind('\n', content.size() - 2)
                                  : std::string::npos;
  if (content.empty() || content.back() != '\n' ||
      last_newline == std::string::npos) {
    return Status::DataLoss("manifest missing checksum line");
  }
  const std::string crc_line =
      content.substr(last_newline + 1,
                     content.size() - last_newline - 2);
  uint32_t stored_crc = 0;
  if (std::sscanf(crc_line.c_str(), "crc32 %" SCNx32, &stored_crc) != 1) {
    return Status::DataLoss("manifest missing checksum line");
  }
  if (Crc32(content.data(), last_newline + 1) != stored_crc) {
    return Status::DataLoss("manifest checksum mismatch");
  }

  size_t pos = 0;
  bool header_seen = false;
  while (pos <= last_newline) {
    const size_t eol = content.find('\n', pos);
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (!header_seen) {
      if (line != kManifestHeader) {
        return Status::DataLoss("bad manifest header: " + line);
      }
      header_seen = true;
      continue;
    }
    ManifestEntry entry;
    int has_model = 0;
    if (std::sscanf(line.c_str(),
                    "object %" SCNd64 " %zu %zu %d %" SCNx32, &entry.id,
                    &entry.history_len, &entry.consumed, &has_model,
                    &entry.csv_crc) != 5) {
      return Status::DataLoss("malformed manifest line: " + line);
    }
    entry.has_model = has_model != 0;
    entries->push_back(entry);
  }
  return Status::OK();
}

/// Reads a file through the load-side fault site with transient-failure
/// retry.
StatusOr<std::string> ReadStoreFile(const std::string& path, Random& rng) {
  return RetryWithBackoff(
      RetryPolicy{}, rng, [&]() -> StatusOr<std::string> {
        HPM_INJECT_FAULT("store/load_read");
        return ReadFileToString(path);
      });
}

}  // namespace

Status MovingObjectStore::SaveToDirectory(
    const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory " + directory +
                                   ": " + ec.message());
  }

  // The new generation is one past everything visible in the directory,
  // whether or not CURRENT points at the newest manifest.
  uint64_t gen = 1;
  const std::vector<uint64_t> existing = ListGenerations(directory);
  if (!existing.empty()) gen = existing.front() + 1;
  uint64_t current_gen = 0;
  if (ReadCurrentGeneration(directory, &current_gen) && current_gen >= gen) {
    gen = current_gen + 1;
  }

  Random retry_rng(kStoreIoRetrySeed ^ gen);
  const RetryPolicy policy;

  // Snapshot shard by shard, rotating each shard's journal to a segment
  // stamped with the new generation *inside the same lock hold*: every
  // record in the pre-rotation segments is therefore contained in this
  // snapshot, and every report accepted after the rotation lands in a
  // segment that recovery replays on top of it. A rotation failure
  // degrades durability (the save itself still proceeds).
  struct ObjectSnapshot {
    ObjectId id = 0;
    Trajectory history;
    std::shared_ptr<const HybridPredictor> predictor;
    size_t consumed = 0;
  };
  std::vector<ObjectSnapshot> snapshot;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    if (shard.wal != nullptr &&
        !wal_disabled_->load(std::memory_order_relaxed)) {
      if (Status rotated = shard.wal->Rotate(gen); !rotated.ok()) {
        DisableWal(rotated.Annotate("wal rotate"));
      } else {
        // Snapshots don't carry rejection tallies; seed the new segment
        // with each object's total so replay-from-this-generation starts
        // from the right count before later kRejected increments.
        for (const auto& [id, count] : shard.rejected_reports) {
          if (count == 0) continue;
          WalRecord baseline;
          baseline.type = WalRecord::Type::kRejectedBaseline;
          baseline.id = id;
          baseline.t = static_cast<int64_t>(count);
          if (Status appended = shard.wal->Append(baseline, nullptr);
              !appended.ok()) {
            DisableWal(appended.Annotate("wal baseline"));
            break;
          }
        }
      }
    }
    for (const auto& [id, record] : shard.records) {
      snapshot.push_back({id, record->history, record->predictor,
                          record->consumed_samples});
    }
  }
  // Ascending by id, matching the pre-shard manifest order.
  std::sort(snapshot.begin(), snapshot.end(),
            [](const ObjectSnapshot& a, const ObjectSnapshot& b) {
              return a.id < b.id;
            });

  std::string manifest = kManifestHeader;
  manifest += '\n';
  for (const ObjectSnapshot& object : snapshot) {
    const ObjectId id = object.id;
    const bool has_model = object.predictor != nullptr;
    const std::string csv = FormatTrajectoryCsv(object.history);

    Status written = RetryWithBackoff(policy, retry_rng, [&]() -> Status {
      HPM_INJECT_FAULT("store/save_object");
      HPM_RETURN_IF_ERROR(AtomicWriteFile(CsvPath(directory, id, gen), csv));
      if (has_model) {
        return object.predictor->SaveToFile(ModelPath(directory, id, gen));
      }
      return Status::OK();
    });
    if (!written.ok()) {
      return written.Annotate("save object " + std::to_string(id));
    }

    char line[160];
    std::snprintf(line, sizeof(line),
                  "object %" PRId64 " %zu %zu %d %08x\n", id,
                  object.history.size(), object.consumed, has_model ? 1 : 0,
                  Crc32(csv));
    manifest += line;
  }

  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc32 %08x\n", Crc32(manifest));
  manifest += crc_line;

  Status wrote_manifest =
      RetryWithBackoff(policy, retry_rng, [&]() -> Status {
        HPM_INJECT_FAULT("store/save_manifest");
        return AtomicWriteFile(ManifestPath(directory, gen), manifest);
      });
  if (!wrote_manifest.ok()) return wrote_manifest.Annotate("save manifest");

  // The commit point: after this rename the new generation is live.
  Status committed = RetryWithBackoff(policy, retry_rng, [&]() -> Status {
    HPM_INJECT_FAULT("store/save_commit");
    return AtomicWriteFile(CurrentPath(directory), ManifestName(gen) + "\n");
  });
  if (!committed.ok()) return committed.Annotate("commit");
  generation_->store(gen, std::memory_order_relaxed);

  // Best-effort cleanup: keep this generation and the previous one (the
  // recovery target if this generation's files later rot).
  for (uint64_t old_gen : ListGenerations(directory)) {
    if (old_gen + 1 >= gen) continue;
    StatusOr<std::string> old_manifest =
        ReadFileToString(ManifestPath(directory, old_gen));
    if (old_manifest.ok()) {
      std::vector<ManifestEntry> entries;
      if (ParseManifest(*old_manifest, &entries).ok()) {
        for (const ManifestEntry& entry : entries) {
          std::remove(CsvPath(directory, entry.id, old_gen).c_str());
          std::remove(ModelPath(directory, entry.id, old_gen).c_str());
        }
      }
    }
    std::remove(ManifestPath(directory, old_gen).c_str());
  }

  // Journal retention mirrors the manifest retention above: a segment
  // stamped before the gen-1 fallback target is covered by both loadable
  // generations, so it can never be needed again. A retire failure only
  // costs durability, never the committed save.
  if (wal_enabled() && !wal_disabled_->load(std::memory_order_relaxed)) {
    const uint64_t retire_below = gen > 0 ? gen - 1 : 0;
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::lock_guard<std::mutex> lock(shard.write_mutex);
      if (shard.wal == nullptr) continue;
      if (Status retired = shard.wal->RetireBelow(retire_below);
          !retired.ok()) {
        DisableWal(retired.Annotate("wal retire"));
        break;
      }
    }
  }
  return Status::OK();
}

void MovingObjectStore::ReplayWal(uint64_t loaded_gen) {
  // Replayed records run the full ingest path (miner feed + training
  // thresholds), but rebuilds must happen inline: recovery has to be
  // deterministic, and the background worker must not be created while
  // the freshly loaded store may still be moved.
  replaying_->store(true, std::memory_order_relaxed);
  const std::string& wal_dir = options_.durability.wal_dir;
  const size_t cap = options_.durability.max_quarantine_files;
  // Replay halts per shard at the first corrupt segment: records past a
  // hole must not be applied out of order (ApplyWalRecord would refuse
  // the resulting gaps anyway, but halting also quarantines exactly the
  // segment that broke the stream, not its innocent successors).
  std::vector<int> halted;
  const auto is_halted = [&](int shard) {
    return std::find(halted.begin(), halted.end(), shard) != halted.end();
  };
  for (const WalSegmentInfo& info : ListWalSegments(wal_dir)) {
    if (!info.header_ok) {
      // A torn header is the normal crash-during-rotation shape when the
      // segment is the shard's newest; anywhere else it is corruption.
      // Either way nothing in the file is replayable — quarantine it
      // even when the shard is already halted, so junk never sits in
      // the journal directory forever.
      if (QuarantineFile(wal_dir, info.path, cap)) {
        metrics_->quarantined_files->Increment();
      }
      if (!is_halted(info.shard)) halted.push_back(info.shard);
      continue;
    }
    if (is_halted(info.shard)) continue;
    if (info.base_gen < loaded_gen) continue;  // covered by the snapshot
    StatusOr<WalSegmentContents> contents =
        ReadWalSegment(info.path, /*truncate_torn_tail=*/true);
    if (!contents.ok()) {
      if (QuarantineFile(wal_dir, info.path, cap)) {
        metrics_->quarantined_files->Increment();
      }
      halted.push_back(info.shard);
      continue;
    }
    uint64_t applied = 0;
    for (const WalRecord& record : contents->records) {
      applied += ApplyWalRecord(record);
    }
    metrics_->wal_replayed_records->Increment(applied);
    metrics_->wal_truncated_bytes->Increment(contents->truncated_bytes);
    if (contents->corrupt) {
      if (QuarantineFile(wal_dir, info.path, cap)) {
        metrics_->quarantined_files->Increment();
      }
      halted.push_back(info.shard);
    }
  }
  replaying_->store(false, std::memory_order_relaxed);
}

StatusOr<MovingObjectStore> MovingObjectStore::LoadFromDirectory(
    const std::string& directory, ObjectStoreOptions options) {
  // The journal is attached only after the snapshot load + replay are
  // done: the store under construction must not journal replayed records
  // back into the segments it is reading, and a fresh writer opened too
  // early would interleave with recovery. Strip the wal_dir for the
  // duration and restore it in `finish`.
  const DurabilityOptions durability = options.durability;
  options.durability.wal_dir.clear();
  size_t quarantined = 0;
  const auto finish = [&](MovingObjectStore& store, uint64_t gen) {
    store.options_.durability = durability;
    store.generation_->store(gen, std::memory_order_relaxed);
    if (!durability.wal_dir.empty()) {
      store.ReplayWal(gen);
      if (Status ready = store.InitWal(gen); !ready.ok()) {
        store.DisableWal(ready);
      }
    }
    if (quarantined > 0) {
      store.metrics_->quarantined_files->Increment(quarantined);
    }
  };

  // Attempts a full verified load of one generation. On failure,
  // `*bad_file` names the file that should be quarantined.
  Random retry_rng(kStoreIoRetrySeed);
  const auto try_load_generation =
      [&](uint64_t gen,
          std::string* bad_file) -> StatusOr<MovingObjectStore> {
    const std::string manifest_path = ManifestPath(directory, gen);
    *bad_file = manifest_path;
    StatusOr<std::string> manifest = ReadStoreFile(manifest_path, retry_rng);
    if (!manifest.ok()) return manifest.status();
    std::vector<ManifestEntry> entries;
    HPM_RETURN_IF_ERROR(ParseManifest(*manifest, &entries));

    MovingObjectStore store(options);
    for (const ManifestEntry& entry : entries) {
      const std::string csv_path = CsvPath(directory, entry.id, gen);
      *bad_file = csv_path;
      StatusOr<std::string> csv = ReadStoreFile(csv_path, retry_rng);
      if (!csv.ok()) return csv.status();
      if (Crc32(*csv) != entry.csv_crc) {
        return Status::DataLoss("csv checksum mismatch: " + csv_path);
      }
      StatusOr<Trajectory> history = ParseTrajectoryCsv(*csv);
      if (!history.ok()) return history.status();
      if (history->size() != entry.history_len) {
        return Status::DataLoss("history length mismatch for object " +
                                std::to_string(entry.id));
      }
      if (entry.consumed > entry.history_len) {
        return Status::DataLoss("corrupt consumed count for object " +
                                std::to_string(entry.id));
      }
      auto record = std::make_unique<ObjectRecord>(entry.id);
      record->history = std::move(*history);
      record->consumed_samples = entry.consumed;
      if (entry.has_model) {
        const std::string model_path = ModelPath(directory, entry.id, gen);
        *bad_file = model_path;
        auto predictor = RetryWithBackoff(
            RetryPolicy{}, retry_rng,
            [&]() -> StatusOr<std::unique_ptr<HybridPredictor>> {
              HPM_INJECT_FAULT("store/load_read");
              return HybridPredictor::LoadFromFile(model_path);
            });
        if (!predictor.ok()) return predictor.status();
        record->predictor = std::move(*predictor);
        store.metrics_->tpt_frozen_bytes->Increment(
            record->predictor->summary().tpt_frozen_bytes);
      }
      if (store.options_.rebuild.incremental) {
        // Rebuild the miner's window + counts from the loaded history;
        // a primed miner lands on the exact state an always-on miner
        // would hold (the counts are a pure function of the window),
        // with drift accumulating only past the loaded model's data.
        record->miner = store.NewMiner();
        record->miner->Prime(record->history, record->consumed_samples,
                             record->predictor != nullptr
                                 ? &record->predictor->regions()
                                 : nullptr);
      }
      // The store is unpublished while loading; no lock needed, and the
      // tables are (re)published in one sweep below.
      record->view.store(store.BuildView(*record),
                         std::memory_order_relaxed);
      store.ShardFor(entry.id).records.emplace(entry.id,
                                               std::move(record));
    }
    for (const auto& shard : store.shards_) store.PublishTable(*shard);
    bad_file->clear();
    return store;
  };

  // Candidate generations: CURRENT's first, then every other manifest in
  // the directory, newest first.
  std::vector<uint64_t> candidates;
  uint64_t current_gen = 0;
  const bool have_current =
      ReadCurrentGeneration(directory, &current_gen);
  if (have_current) candidates.push_back(current_gen);
  for (uint64_t gen : ListGenerations(directory)) {
    if (!have_current || gen != current_gen) candidates.push_back(gen);
  }
  if (candidates.empty()) {
    // No snapshot, but a journal may still hold every report acknowledged
    // before a crash that preceded the first save: recover from an empty
    // store at generation 0.
    if (!durability.wal_dir.empty() &&
        !ListWalSegments(durability.wal_dir).empty()) {
      MovingObjectStore store(options);
      finish(store, 0);
      return store;
    }
    return Status::InvalidArgument("no manifest in " + directory);
  }

  Status last_error = Status::OK();
  for (uint64_t gen : candidates) {
    std::string bad_file;
    StatusOr<MovingObjectStore> store =
        try_load_generation(gen, &bad_file);
    if (store.ok()) {
      finish(*store, gen);
      return store;
    }
    last_error = store.status().Annotate(ManifestName(gen));
    // Retries are exhausted by now: the file is corrupt (or persistently
    // unreadable), so move it aside and fall back a generation.
    if (!bad_file.empty() &&
        QuarantineFile(directory, bad_file,
                       durability.max_quarantine_files)) {
      ++quarantined;
    }
  }
  return Status::DataLoss("no loadable store generation in " + directory +
                          " (last error: " + last_error.ToString() + ")");
}

}  // namespace hpm
