// Directory persistence for MovingObjectStore.
//
// Layout:
//   <dir>/manifest.txt       one line per object:
//                            "object <id> <history_len> <consumed> <model?>"
//   <dir>/<id>.csv           the object's full reported history
//   <dir>/<id>.model         the trained HybridPredictor (when present)

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>

#include "io/csv.h"
#include "server/object_store.h"

namespace hpm {

namespace {

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.txt";
}

std::string CsvPath(const std::string& dir, ObjectId id) {
  return dir + "/" + std::to_string(id) + ".csv";
}

std::string ModelPath(const std::string& dir, ObjectId id) {
  return dir + "/" + std::to_string(id) + ".model";
}

}  // namespace

Status MovingObjectStore::SaveToDirectory(
    const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory " + directory +
                                   ": " + ec.message());
  }

  std::FILE* manifest = std::fopen(ManifestPath(directory).c_str(), "w");
  if (manifest == nullptr) {
    return Status::InvalidArgument("cannot write manifest in " + directory);
  }
  Status status = Status::OK();
  // ObjectIds() is ascending, matching the pre-shard manifest order.
  for (ObjectId id : ObjectIds()) {
    Trajectory history;
    std::shared_ptr<const HybridPredictor> predictor;
    size_t consumed = 0;
    {
      Shard& shard = ShardFor(id);
      std::shared_lock<std::shared_mutex> lock(shard.mutex);
      const auto it = shard.objects.find(id);
      if (it == shard.objects.end()) continue;
      history = it->second.history;
      predictor = it->second.predictor;
      consumed = it->second.consumed_samples;
    }
    const bool has_model = predictor != nullptr;
    std::fprintf(manifest, "object %" PRId64 " %zu %zu %d\n", id,
                 history.size(), consumed, has_model ? 1 : 0);
    status = WriteTrajectoryCsv(history, CsvPath(directory, id));
    if (!status.ok()) break;
    if (has_model) {
      status = predictor->SaveToFile(ModelPath(directory, id));
      if (!status.ok()) break;
    }
  }
  std::fclose(manifest);
  return status;
}

StatusOr<MovingObjectStore> MovingObjectStore::LoadFromDirectory(
    const std::string& directory, ObjectStoreOptions options) {
  std::FILE* manifest = std::fopen(ManifestPath(directory).c_str(), "r");
  if (manifest == nullptr) {
    return Status::InvalidArgument("no manifest in " + directory);
  }

  MovingObjectStore store(std::move(options));
  char line[256];
  Status status = Status::OK();
  while (std::fgets(line, sizeof(line), manifest) != nullptr) {
    int64_t id = 0;
    size_t history_len = 0, consumed = 0;
    int has_model = 0;
    if (std::sscanf(line, "object %" SCNd64 " %zu %zu %d", &id,
                    &history_len, &consumed, &has_model) != 4) {
      status = Status::InvalidArgument("malformed manifest line: " +
                                       std::string(line));
      break;
    }
    StatusOr<Trajectory> history =
        ReadTrajectoryCsv(CsvPath(directory, id));
    if (!history.ok()) {
      status = history.status();
      break;
    }
    if (history->size() != history_len) {
      status = Status::InvalidArgument(
          "history length mismatch for object " + std::to_string(id));
      break;
    }
    if (consumed > history_len) {
      status = Status::InvalidArgument(
          "corrupt consumed count for object " + std::to_string(id));
      break;
    }
    ObjectState state;
    state.history = std::move(*history);
    state.consumed_samples = consumed;
    if (has_model != 0) {
      auto predictor =
          HybridPredictor::LoadFromFile(ModelPath(directory, id));
      if (!predictor.ok()) {
        status = predictor.status();
        break;
      }
      state.predictor = std::move(*predictor);
    }
    // The store is unpublished while loading; no lock needed.
    store.ShardFor(id).objects.emplace(id, std::move(state));
  }
  std::fclose(manifest);
  if (!status.ok()) return status;
  return store;
}

}  // namespace hpm
