// Stall-interleaved batch execution for PredictLocationBatch.
//
// A point prediction's cost is dominated by the FrozenTpt signature
// scan: dependent loads over the key-word arena that miss cache on
// every block of a cold tree. One query at a time leaves the core
// stalled on those misses. This executor keeps `width` predictions in
// flight per fan-out lane and round-robins their resumable PredictTasks
// a few entry tests at a time: when a traversal is about to stall it
// issues a prefetch for its next signature block and advances another
// query's traversal instead, so one query's memory latency is hidden
// behind another's compute.
//
// Answers are bit-identical to sequential execution by construction:
// PredictTask *is* Predict() (Predict = Start + Step-to-done), the
// interleave only changes when each task's steps run, and tasks share
// nothing (each slot owns its scratch). prop_batch_exec_test proves the
// equivalence differentially — predictions, degraded stamps and
// accounting totals — including under armed faults and expired
// deadlines; width = 1 degenerates to sequential execution exactly.
//
// The executor is policy-free about *what* runs: the store hands it the
// locality order (LocalityOrder groups a batch by shard, then by model
// generation, so consecutive tasks walk the same arena) and a prepare
// callback that runs the shared per-object preamble and arms the task.

#ifndef HPM_SERVER_BATCH_EXECUTOR_H_
#define HPM_SERVER_BATCH_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/exec_context.h"
#include "core/hybrid_predictor.h"

namespace hpm {

/// Batch-executor tuning (ObjectStoreOptions::batch).
struct BatchExecOptions {
  /// Predictions kept in flight per fan-out lane. 1 = no interleaving
  /// (pure sequential execution); values beyond the lane's share of the
  /// batch are harmless.
  size_t width = 8;

  /// Entry tests a task may run before yielding to the next in-flight
  /// task. 0 = unlimited (each task runs to completion — sequential).
  size_t step_entries = 32;
};

/// Runs one fan-out lane's share of a prediction batch, interleaving the
/// in-flight tasks' TPT traversals. Single-threaded: one executor per
/// lane, used by that lane's thread only.
class BatchExecutor {
 public:
  using Result = StatusOr<std::vector<Prediction>>;

  /// Runs the shared per-object preamble for `item` (an index the caller
  /// understands). Returns a finished result for items that never reach
  /// a TPT search — unknown object, validation failure, load-shed or
  /// cold-start answers; otherwise fills `*query` (which outlives the
  /// task) and Start()s `*task` against `scratch`, returning nullopt.
  /// The task may already be done (degraded, no premise, empty tree).
  using PrepareFn = std::function<std::optional<Result>(
      size_t item, PredictiveQuery* query, PredictScratch* scratch,
      HybridPredictor::PredictTask* task)>;

  /// Receives item `item`'s finished answer, exactly once per item.
  /// Emission order is completion order; callers index a result array.
  using EmitFn = std::function<void(size_t item, Result result)>;

  /// `ctx` (may be null) receives CountBatchInterleaved() on every
  /// switch-away from a stalled traversal.
  BatchExecutor(const BatchExecOptions& options, QueryContext* ctx)
      : options_(options), ctx_(ctx) {}

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Executes every item in `items`, admitting them in order into the
  /// in-flight window and emitting each exactly once.
  void Run(const std::vector<size_t>& items, const PrepareFn& prepare,
           const EmitFn& emit);

  /// The admission order for a batch: input indices grouped by shard,
  /// then by model identity within a shard (consecutive tasks traverse
  /// the same frozen arena), input order within a group. `shard_of` and
  /// `model_of` are parallel to the batch's input.
  static std::vector<size_t> LocalityOrder(
      const std::vector<size_t>& shard_of,
      const std::vector<const void*>& model_of);

 private:
  BatchExecOptions options_;
  QueryContext* ctx_;
};

}  // namespace hpm

#endif  // HPM_SERVER_BATCH_EXECUTOR_H_
