#include "geo/trajectory.h"

#include <algorithm>

namespace hpm {

Trajectory::Trajectory(std::vector<Point> points)
    : points_(std::move(points)) {}

void Trajectory::Append(const Point& p) { points_.push_back(p); }

const Point& Trajectory::At(Timestamp t) const {
  HPM_CHECK(t >= 0 && static_cast<size_t>(t) < points_.size());
  return points_[static_cast<size_t>(t)];
}

StatusOr<Trajectory> Trajectory::Slice(Timestamp begin, Timestamp end) const {
  if (begin < 0 || end < begin ||
      static_cast<size_t>(end) > points_.size()) {
    return Status::OutOfRange("invalid slice range");
  }
  return Trajectory(std::vector<Point>(points_.begin() + begin,
                                       points_.begin() + end));
}

size_t Trajectory::NumSubTrajectories(Timestamp period) const {
  if (period <= 0) return 0;
  return points_.size() / static_cast<size_t>(period);
}

StatusOr<std::vector<Trajectory>> Trajectory::DecomposePeriodic(
    Timestamp period) const {
  if (period <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  const size_t n = NumSubTrajectories(period);
  if (n == 0) {
    return Status::FailedPrecondition(
        "trajectory shorter than one period");
  }
  std::vector<Trajectory> subs;
  subs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Timestamp begin = static_cast<Timestamp>(i) * period;
    subs.push_back(std::move(Slice(begin, begin + period).value()));
  }
  return subs;
}

StatusOr<std::vector<OffsetGroup>> Trajectory::GroupByOffset(
    Timestamp period, int limit) const {
  if (period <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  size_t n = NumSubTrajectories(period);
  if (n == 0) {
    return Status::FailedPrecondition(
        "trajectory shorter than one period");
  }
  if (limit > 0) n = std::min(n, static_cast<size_t>(limit));
  std::vector<OffsetGroup> groups(static_cast<size_t>(period));
  for (Timestamp t = 0; t < period; ++t) {
    groups[static_cast<size_t>(t)].offset = t;
    groups[static_cast<size_t>(t)].locations.reserve(n);
  }
  for (size_t i = 0; i < n; ++i) {
    for (Timestamp t = 0; t < period; ++t) {
      groups[static_cast<size_t>(t)].locations.push_back(
          {static_cast<int>(i),
           points_[i * static_cast<size_t>(period) +
                   static_cast<size_t>(t)]});
    }
  }
  return groups;
}

std::vector<TimedPoint> Trajectory::RecentMovements(Timestamp now,
                                                    int count) const {
  HPM_CHECK(now >= 0 && static_cast<size_t>(now) < points_.size());
  HPM_CHECK(count > 0);
  const Timestamp begin = std::max<Timestamp>(0, now - count + 1);
  std::vector<TimedPoint> result;
  result.reserve(static_cast<size_t>(now - begin + 1));
  for (Timestamp t = begin; t <= now; ++t) {
    result.push_back({t, points_[static_cast<size_t>(t)]});
  }
  return result;
}

}  // namespace hpm
