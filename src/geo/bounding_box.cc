#include "geo/bounding_box.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace hpm {

BoundingBox::BoundingBox() : empty_(true) {}

BoundingBox::BoundingBox(const Point& a, const Point& b) : empty_(false) {
  min_ = {std::min(a.x, b.x), std::min(a.y, b.y)};
  max_ = {std::max(a.x, b.x), std::max(a.y, b.y)};
}

void BoundingBox::Extend(const Point& p) {
  if (empty_) {
    min_ = max_ = p;
    empty_ = false;
    return;
  }
  min_.x = std::min(min_.x, p.x);
  min_.y = std::min(min_.y, p.y);
  max_.x = std::max(max_.x, p.x);
  max_.y = std::max(max_.y, p.y);
}

void BoundingBox::Extend(const BoundingBox& other) {
  if (other.empty_) return;
  Extend(other.min_);
  Extend(other.max_);
}

bool BoundingBox::Contains(const Point& p) const {
  if (empty_) return false;
  return p.x >= min_.x && p.x <= max_.x && p.y >= min_.y && p.y <= max_.y;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  if (empty_ || other.empty_) return false;
  return min_.x <= other.max_.x && max_.x >= other.min_.x &&
         min_.y <= other.max_.y && max_.y >= other.min_.y;
}

Point BoundingBox::Center() const {
  HPM_CHECK(!empty_);
  return {(min_.x + max_.x) / 2.0, (min_.y + max_.y) / 2.0};
}

double BoundingBox::Area() const {
  if (empty_) return 0.0;
  return (max_.x - min_.x) * (max_.y - min_.y);
}

double BoundingBox::MinDistance(const Point& p) const {
  HPM_CHECK(!empty_);
  const double dx = std::max({min_.x - p.x, 0.0, p.x - max_.x});
  const double dy = std::max({min_.y - p.y, 0.0, p.y - max_.y});
  return std::sqrt(dx * dx + dy * dy);
}

std::string BoundingBox::ToString() const {
  if (empty_) return "[empty]";
  return "[" + min_.ToString() + " - " + max_.ToString() + "]";
}

}  // namespace hpm
