// 2-D point primitive used throughout hpm.

#ifndef HPM_GEO_POINT_H_
#define HPM_GEO_POINT_H_

#include <string>

namespace hpm {

/// A location in the (normalised) 2-D data space.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  Point operator/(double s) const { return {x / s, y / s}; }
  bool operator==(const Point& o) const { return x == o.x && y == o.y; }

  /// Euclidean length of the vector from the origin.
  double Norm() const;

  /// "(x, y)" with two decimals.
  std::string ToString() const;
};

/// Euclidean distance between two points. This is the paper's prediction
/// error metric ("distance between a predicted location and its actual
/// location").
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt in hot loops).
double SquaredDistance(const Point& a, const Point& b);

}  // namespace hpm

#endif  // HPM_GEO_POINT_H_
