// Axis-aligned bounding box (MBR) used to describe frequent regions.

#ifndef HPM_GEO_BOUNDING_BOX_H_
#define HPM_GEO_BOUNDING_BOX_H_

#include <string>

#include "geo/point.h"

namespace hpm {

/// Axis-aligned minimum bounding rectangle.
///
/// A default-constructed box is *empty* (contains nothing); extending an
/// empty box with a point makes it that single point.
class BoundingBox {
 public:
  /// Creates an empty box.
  BoundingBox();

  /// Creates the box spanning the two corner points (any corner order).
  BoundingBox(const Point& a, const Point& b);

  /// True if no point has been added yet.
  bool IsEmpty() const { return empty_; }

  /// Grows the box to cover `p`.
  void Extend(const Point& p);

  /// Grows the box to cover `other` (no-op if `other` is empty).
  void Extend(const BoundingBox& other);

  /// True if `p` lies inside or on the boundary. Empty boxes contain nothing.
  bool Contains(const Point& p) const;

  /// True if the two boxes overlap (boundary touch counts).
  bool Intersects(const BoundingBox& other) const;

  /// Geometric centre. Precondition: !IsEmpty().
  Point Center() const;

  /// Width * height; zero for empty or degenerate boxes.
  double Area() const;

  /// Minimum distance from `p` to the box (0 when inside).
  /// Precondition: !IsEmpty().
  double MinDistance(const Point& p) const;

  const Point& min() const { return min_; }
  const Point& max() const { return max_; }

  /// "[(x0,y0) - (x1,y1)]" or "[empty]".
  std::string ToString() const;

 private:
  bool empty_;
  Point min_;
  Point max_;
};

}  // namespace hpm

#endif  // HPM_GEO_BOUNDING_BOX_H_
