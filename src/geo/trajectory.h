// Trajectory model: a moving object's history sampled at unit timestamps,
// plus the periodic decomposition used by the pattern-discovery pipeline
// (paper §III, Fig. 2).

#ifndef HPM_GEO_TRAJECTORY_H_
#define HPM_GEO_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geo/point.h"

namespace hpm {

/// Discrete time. Trajectory samples live at timestamps 0, 1, 2, ...
using Timestamp = int64_t;

/// A location observed at an explicit timestamp (used for query input,
/// where the recent movements are not anchored at 0).
struct TimedPoint {
  Timestamp time = 0;
  Point location;
};

/// One location of one sub-trajectory inside an offset group G_t.
struct GroupedLocation {
  /// Which sub-trajectory (period instance) the location came from.
  int sub_trajectory = 0;
  Point location;
};

/// All locations the object has occupied at one time offset t of the
/// period T, across every sub-trajectory — the paper's G_t.
struct OffsetGroup {
  /// Time offset in [0, T).
  Timestamp offset = 0;
  std::vector<GroupedLocation> locations;
};

/// A moving object's trajectory: locations at consecutive timestamps
/// 0..size()-1, following the paper's sequence model {(l_0, ..., l_{n-1})}.
class Trajectory {
 public:
  Trajectory() = default;

  /// Builds a trajectory from locations at timestamps 0..points.size()-1.
  explicit Trajectory(std::vector<Point> points);

  /// Appends the location at the next timestamp.
  void Append(const Point& p);

  /// Number of samples (== number of timestamps covered).
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Location at timestamp t. Precondition: 0 <= t < size().
  const Point& At(Timestamp t) const;

  const std::vector<Point>& points() const { return points_; }

  /// Sub-trajectory [begin, end) as a new trajectory (timestamps re-based
  /// to 0). Returns OutOfRange if the range is invalid.
  StatusOr<Trajectory> Slice(Timestamp begin, Timestamp end) const;

  /// Number of complete periods of length T contained. Partial trailing
  /// data is ignored, matching the paper's floor(n/T) decomposition.
  size_t NumSubTrajectories(Timestamp period) const;

  /// Splits the trajectory into floor(n/T) complete sub-trajectories of
  /// length `period` (Fig. 2(a)). Returns InvalidArgument when period<=0,
  /// FailedPrecondition when no complete period fits.
  StatusOr<std::vector<Trajectory>> DecomposePeriodic(Timestamp period) const;

  /// Projects the first `limit` sub-trajectories onto the period,
  /// producing one OffsetGroup G_t per offset t in [0, period)
  /// (Fig. 2(b)). `limit` <= 0 means "all complete sub-trajectories".
  StatusOr<std::vector<OffsetGroup>> GroupByOffset(Timestamp period,
                                                   int limit = 0) const;

  /// The timed points of the `count` most recent samples ending at
  /// timestamp `now` inclusive, oldest first. Clamps count to what exists.
  /// Precondition: 0 <= now < size().
  std::vector<TimedPoint> RecentMovements(Timestamp now, int count) const;

 private:
  std::vector<Point> points_;
};

}  // namespace hpm

#endif  // HPM_GEO_TRAJECTORY_H_
