#include "geo/point.h"

#include <cmath>
#include <cstdio>

namespace hpm {

double Point::Norm() const { return std::sqrt(x * x + y * y); }

std::string Point::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.2f, %.2f)", x, y);
  return buf;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace hpm
