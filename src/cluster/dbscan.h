// DBSCAN density-based clustering (Ester et al., KDD'96).
//
// The pattern-discovery pipeline (paper §IV) runs DBSCAN on every offset
// group G_t to find the dense clusters that become frequent regions; the
// Eps / MinPts parameters play the role of support in classic frequent
// item-set mining.

#ifndef HPM_CLUSTER_DBSCAN_H_
#define HPM_CLUSTER_DBSCAN_H_

#include <vector>

#include "common/status.h"
#include "geo/point.h"

namespace hpm {

/// Clustering outcome: one label per input point.
struct DbscanResult {
  /// Label for noise points.
  static constexpr int kNoise = -1;

  /// labels[i] is the cluster id of points[i] (0-based, dense), or
  /// kNoise.
  std::vector<int> labels;

  /// Number of clusters found.
  int num_clusters = 0;
};

/// DBSCAN parameters.
struct DbscanParams {
  /// Maximum neighbour distance (the paper's Eps).
  double eps = 30.0;

  /// Minimum neighbourhood size — including the point itself — for a
  /// point to be a core point (the paper's MinPts).
  int min_pts = 4;
};

/// Clusters `points` with DBSCAN. Border points are assigned to the first
/// cluster that reaches them (standard DBSCAN tie behaviour); points
/// density-reachable from no core point are labelled noise.
///
/// Returns InvalidArgument when eps <= 0 or min_pts < 1. An empty input
/// yields an empty result.
StatusOr<DbscanResult> Dbscan(const std::vector<Point>& points,
                              const DbscanParams& params);

}  // namespace hpm

#endif  // HPM_CLUSTER_DBSCAN_H_
