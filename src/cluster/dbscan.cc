#include "cluster/dbscan.h"

#include <deque>

#include "cluster/grid_index.h"

namespace hpm {

StatusOr<DbscanResult> Dbscan(const std::vector<Point>& points,
                              const DbscanParams& params) {
  if (params.eps <= 0.0) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (params.min_pts < 1) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }

  DbscanResult result;
  result.labels.assign(points.size(), DbscanResult::kNoise);
  if (points.empty()) return result;

  constexpr int kUnvisited = -2;
  std::vector<int>& labels = result.labels;
  std::fill(labels.begin(), labels.end(), kUnvisited);

  GridIndex index(points, params.eps);
  std::vector<int> neighbours;
  std::deque<int> frontier;

  int next_cluster = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels[i] != kUnvisited) continue;
    index.RangeQuery(points[i], &neighbours);
    if (static_cast<int>(neighbours.size()) < params.min_pts) {
      labels[i] = DbscanResult::kNoise;
      continue;
    }
    // i is a core point: start a new cluster and expand it breadth-first
    // over density-reachable points.
    const int cluster = next_cluster++;
    labels[i] = cluster;
    frontier.assign(neighbours.begin(), neighbours.end());
    while (!frontier.empty()) {
      const int j = frontier.front();
      frontier.pop_front();
      if (labels[j] == DbscanResult::kNoise) {
        labels[j] = cluster;  // Noise becomes a border point.
        continue;
      }
      if (labels[j] != kUnvisited) continue;
      labels[j] = cluster;
      index.RangeQuery(points[static_cast<size_t>(j)], &neighbours);
      if (static_cast<int>(neighbours.size()) >= params.min_pts) {
        // j is itself core: its neighbourhood joins the cluster too.
        for (int k : neighbours) {
          if (labels[k] == kUnvisited || labels[k] == DbscanResult::kNoise) {
            frontier.push_back(k);
          }
        }
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace hpm
