#include "cluster/grid_index.h"

#include <cmath>

#include "common/status.h"

namespace hpm {

GridIndex::GridIndex(const std::vector<Point>& points, double radius)
    : points_(&points), radius_(radius) {
  HPM_CHECK(radius > 0.0);
  cells_.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const uint64_t key =
        CellKey(CellCoord(points[i].x), CellCoord(points[i].y));
    cells_[key].push_back(static_cast<int>(i));
  }
}

int64_t GridIndex::CellCoord(double v) const {
  return static_cast<int64_t>(std::floor(v / radius_));
}

uint64_t GridIndex::CellKey(int64_t cx, int64_t cy) const {
  // Interleave the two 32-bit halves; coordinates this large would need a
  // data space of ~radius * 2^31, far beyond the normalised [0,10000]².
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(cy));
}

std::vector<int> GridIndex::RangeQuery(const Point& center) const {
  std::vector<int> out;
  RangeQuery(center, &out);
  return out;
}

void GridIndex::RangeQuery(const Point& center, std::vector<int>* out) const {
  out->clear();
  const int64_t cx = CellCoord(center.x);
  const int64_t cy = CellCoord(center.y);
  const double r2 = radius_ * radius_;
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find(CellKey(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (int idx : it->second) {
        if (SquaredDistance((*points_)[static_cast<size_t>(idx)], center) <=
            r2) {
          out->push_back(idx);
        }
      }
    }
  }
}

}  // namespace hpm
