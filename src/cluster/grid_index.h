// Uniform-grid spatial index for fixed-radius neighbour queries.
//
// DBSCAN issues one Eps-range query per point; a grid with cell size Eps
// answers each from at most nine cells, which keeps the frequent-region
// mining pass linear-ish instead of quadratic.

#ifndef HPM_CLUSTER_GRID_INDEX_H_
#define HPM_CLUSTER_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace hpm {

/// Static grid index over a point set, built once for a fixed query
/// radius. Points are referenced by their index in the input vector.
class GridIndex {
 public:
  /// Builds the index. `radius` must be positive; it sets the cell size
  /// and is the only radius RangeQuery supports exactly (larger radii
  /// would miss neighbours).
  GridIndex(const std::vector<Point>& points, double radius);

  /// Indices of all points within `radius` (inclusive) of `center`,
  /// where `radius` is the radius given at construction. The `center`
  /// need not be an indexed point. Order is unspecified.
  std::vector<int> RangeQuery(const Point& center) const;

  /// Same, but appends into `out` (cleared first) to avoid reallocation
  /// in tight loops.
  void RangeQuery(const Point& center, std::vector<int>* out) const;

  size_t num_points() const { return points_->size(); }
  double radius() const { return radius_; }

 private:
  int64_t CellCoord(double v) const;
  uint64_t CellKey(int64_t cx, int64_t cy) const;

  const std::vector<Point>* points_;
  double radius_;
  std::unordered_map<uint64_t, std::vector<int>> cells_;
};

}  // namespace hpm

#endif  // HPM_CLUSTER_GRID_INDEX_H_
