#include "mining/incremental_miner.h"

#include <algorithm>
#include <utility>

#include "common/status.h"
#include "mining/offline_miner.h"
#include "mining/transaction.h"

namespace hpm {

IncrementalMiner::IncrementalMiner(IncrementalMinerOptions options,
                                   Timestamp period, AprioriParams mining)
    : options_(options), period_(period), mining_(mining) {
  HPM_CHECK(period_ > 0);
  HPM_CHECK(options_.window_periods >= 0);
  HPM_CHECK(mining_.min_support >= 1);
  partial_.reserve(static_cast<size_t>(period_));
}

size_t IncrementalMiner::total_observed() const {
  return periods_seen_ * static_cast<size_t>(period_) + partial_.size();
}

void IncrementalMiner::Observe(const Point& location) {
  ++stats_.points_observed;
  partial_.push_back(location);
  if (partial_.size() == static_cast<size_t>(period_)) FinalizePeriod();
}

std::vector<int> IncrementalMiner::MapEntry(const std::vector<Point>& points,
                                            size_t* unmatched) const {
  const std::vector<RegionVisit> visits = MapPeriodPointsToVisits(
      *regions_, points, options_.region_match_slack);
  *unmatched = points.size() - visits.size();
  return Transaction(visits, regions_->NumRegions()).items();
}

template <typename Fn>
void IncrementalMiner::ForEachValidItemset(const std::vector<int>& items,
                                           Fn&& fn) const {
  if (items.size() < 2 || mining_.max_pattern_length < 2) return;
  const size_t max_len = static_cast<size_t>(mining_.max_pattern_length);
  std::vector<int> chosen;
  chosen.reserve(max_len);
  const auto offset_of = [this](int id) {
    return regions_->Region(id).offset;
  };
  // DFS over combinations in ascending-id (== ascending-offset) order.
  // A set is emitted at size >= 2; extending a size >= 2 prefix makes
  // that prefix the extension's premise, so the premise-window span is
  // checked exactly where the offline candidate generation checks it.
  const auto recurse = [&](const auto& self, size_t start) -> void {
    if (chosen.size() >= 2) fn(chosen);
    if (chosen.size() >= max_len) return;
    if (chosen.size() >= 2 && mining_.premise_window > 0 &&
        offset_of(chosen.back()) - offset_of(chosen.front()) >
            mining_.premise_window) {
      return;
    }
    for (size_t i = start; i < items.size(); ++i) {
      if (!chosen.empty() &&
          offset_of(items[i]) <= offset_of(chosen.back())) {
        continue;
      }
      chosen.push_back(items[i]);
      self(self, i + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
}

size_t IncrementalMiner::ApplyCounts(const std::vector<int>& items,
                                     int delta) {
  for (int item : items) {
    single_counts_[static_cast<size_t>(item)] += delta;
  }
  size_t crossings = 0;
  ForEachValidItemset(items, [&](const std::vector<int>& set) {
    if (delta > 0) {
      auto [it, inserted] = multi_.try_emplace(set);
      if (inserted) {
        it->second.seq = next_seq_++;
        ++stats_.candidate_inserts;
      }
      const int before = it->second.count;
      it->second.count = before + 1;
      if (before < mining_.min_support &&
          it->second.count >= mining_.min_support) {
        ++crossings;
        ++stats_.promoted;
        if (hooks_.promoted != nullptr) hooks_.promoted->Increment();
      }
    } else {
      const auto it = multi_.find(set);
      if (it == multi_.end()) return;  // evicted under the memory bound
      const int before = it->second.count;
      it->second.count = before - 1;
      if (before >= mining_.min_support &&
          it->second.count < mining_.min_support) {
        ++crossings;
        ++stats_.demoted;
        if (hooks_.demoted != nullptr) hooks_.demoted->Increment();
      }
      if (it->second.count <= 0) multi_.erase(it);
    }
  });
  return crossings;
}

void IncrementalMiner::EvictOverflow() {
  if (options_.max_candidates == 0 ||
      multi_.size() <= options_.max_candidates) {
    return;
  }
  const size_t excess = multi_.size() - options_.max_candidates;
  // The victim set — the `excess` smallest by (count, insertion seq) —
  // is deterministic: seq is unique, so the order is total and the
  // selected set does not depend on hash-map iteration order.
  std::vector<std::pair<std::pair<int, uint64_t>, const std::vector<int>*>>
      order;
  order.reserve(multi_.size());
  for (const auto& [items, entry] : multi_) {
    order.push_back({{entry.count, entry.seq}, &items});
  }
  std::nth_element(order.begin(), order.begin() + (excess - 1), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (size_t i = 0; i < excess; ++i) {
    multi_.erase(*order[i].second);
  }
  stats_.candidates_evicted += excess;
  if (hooks_.candidates_evicted != nullptr) {
    hooks_.candidates_evicted->Increment(excess);
  }
}

void IncrementalMiner::FinalizePeriod() {
  ++periods_seen_;
  WindowEntry entry;
  entry.points = std::move(partial_);
  partial_.clear();
  partial_.reserve(static_cast<size_t>(period_));

  size_t crossings = 0;
  size_t unmatched = 0;
  if (regions_) {
    entry.items = MapEntry(entry.points, &entry.unmatched);
    unmatched = entry.unmatched;
    crossings += ApplyCounts(entry.items, +1);
    ++stats_.transactions;
    stats_.unmatched_points += unmatched;
    if (hooks_.transactions != nullptr) hooks_.transactions->Increment();
    if (hooks_.unmatched_points != nullptr && unmatched > 0) {
      hooks_.unmatched_points->Increment(unmatched);
    }
  }
  window_.push_back(std::move(entry));
  if (options_.window_periods > 0 &&
      window_.size() > static_cast<size_t>(options_.window_periods)) {
    if (regions_) crossings += ApplyCounts(window_.front().items, -1);
    window_.pop_front();
  }
  if (regions_) {
    EvictOverflow();
    if (window_end() > drift_from_) {
      drift_ = drift_ * options_.drift_decay +
               options_.crossing_weight * static_cast<double>(crossings) +
               options_.unmatched_weight *
                   (static_cast<double>(unmatched) /
                    static_cast<double>(period_));
    }
  }
}

void IncrementalMiner::AdoptRegions(const FrequentRegionSet& regions) {
  regions_ = regions;
  single_counts_.assign(regions_->NumRegions(), 0);
  multi_.clear();
  next_seq_ = 0;
  drift_ = 0.0;
  drift_from_ = window_end();
  // Re-derive the whole count table under the new universe. Exact window
  // counts are a pure function of (window contents, regions), so this
  // recount lands on the identical state an always-on miner would hold —
  // the invariant the crash/replay property leans on. Recount crossings
  // are not promote/demote events (the pattern set is being re-based,
  // not drifting), so stats and hooks stay untouched across it.
  const MinerStats saved = stats_;
  const MinerMetricHooks saved_hooks = hooks_;
  hooks_ = MinerMetricHooks{};
  for (WindowEntry& e : window_) {
    e.items = MapEntry(e.points, &e.unmatched);
    ApplyCounts(e.items, +1);
  }
  hooks_ = saved_hooks;
  stats_.promoted = saved.promoted;
  stats_.demoted = saved.demoted;
  EvictOverflow();
}

void IncrementalMiner::Prime(const Trajectory& history, size_t adopted_at,
                             const FrequentRegionSet* regions) {
  HPM_CHECK(total_observed() == 0);
  if (regions != nullptr) AdoptRegions(*regions);
  drift_from_ = adopted_at;
  for (const Point& p : history.points()) Observe(p);
}

Trajectory IncrementalMiner::WindowTrajectory() const {
  Trajectory trajectory;
  for (const WindowEntry& e : window_) {
    for (const Point& p : e.points) trajectory.Append(p);
  }
  return trajectory;
}

int IncrementalMiner::SupportOf(const std::vector<int>& items) const {
  if (!regions_ || items.empty()) return 0;
  if (items.size() == 1) {
    const size_t id = static_cast<size_t>(items[0]);
    return id < single_counts_.size() ? single_counts_[id] : 0;
  }
  const auto it = multi_.find(items);
  return it != multi_.end() ? it->second.count : 0;
}

std::vector<TrajectoryPattern> IncrementalMiner::CurrentPatterns() const {
  std::vector<TrajectoryPattern> patterns;
  if (!regions_) return patterns;
  for (const auto& [items, entry] : multi_) {
    if (entry.count < mining_.min_support) continue;
    std::vector<int> premise(items.begin(), items.end() - 1);
    int premise_support = 0;
    if (premise.size() == 1) {
      premise_support = single_counts_[static_cast<size_t>(premise[0])];
    } else {
      const auto it = multi_.find(premise);
      if (it != multi_.end()) {
        premise_support = it->second.count;
      } else {
        // The premise was evicted under the memory bound; recount it
        // from the retained window (the offline CountSupport fallback).
        for (const WindowEntry& e : window_) {
          if (std::includes(e.items.begin(), e.items.end(), premise.begin(),
                            premise.end())) {
            ++premise_support;
          }
        }
      }
    }
    if (premise_support <= 0) continue;
    const double confidence = static_cast<double>(entry.count) /
                              static_cast<double>(premise_support);
    if (confidence < mining_.min_confidence) continue;
    TrajectoryPattern p;
    p.premise = std::move(premise);
    p.consequence = items.back();
    p.confidence = confidence;
    p.support = entry.count;
    patterns.push_back(std::move(p));
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const TrajectoryPattern& a, const TrajectoryPattern& b) {
              if (a.premise.size() != b.premise.size()) {
                return a.premise.size() < b.premise.size();
              }
              if (a.premise != b.premise) return a.premise < b.premise;
              return a.consequence < b.consequence;
            });
  return patterns;
}

}  // namespace hpm
