// Frequent-region discovery (paper §III–IV, Fig. 2).
//
// The object's trajectory is decomposed into sub-trajectories of length T
// (the period); all locations with the same time offset t form the group
// G_t; DBSCAN on each G_t yields the dense clusters R_t^j — the frequent
// regions in which the object often appears at offset t. Region ids are
// assigned in (offset, cluster) order, which is exactly the ordering the
// TPT pattern keys rely on (paper §V-A).

#ifndef HPM_MINING_FREQUENT_REGION_H_
#define HPM_MINING_FREQUENT_REGION_H_

#include <vector>

#include "cluster/dbscan.h"
#include "common/status.h"
#include "geo/bounding_box.h"
#include "geo/trajectory.h"

namespace hpm {

/// One frequent region R_t^j.
struct FrequentRegion {
  /// Global id, dense, assigned in ascending (offset, j) order. Region id
  /// order therefore equals time-offset order (ties broken by j), which
  /// Property 1 of the paper depends on.
  int id = 0;

  /// Time offset t in [0, period).
  Timestamp offset = 0;

  /// Index j among the regions at this offset.
  int index_at_offset = 0;

  /// Centroid of the member locations; FQP/BQP return consequence
  /// centres as predicted locations.
  Point center;

  /// Minimum bounding rectangle of the member locations; used to test
  /// whether a query's recent movement falls in the region.
  BoundingBox mbr;

  /// Number of member locations (cluster size) — the region's support.
  int support = 0;
};

/// Parameters of the discovery pass.
struct FrequentRegionParams {
  /// Period T: number of timestamps after which patterns may re-appear.
  Timestamp period = 300;

  /// DBSCAN parameters (Eps / MinPts); these play the role of support in
  /// frequent item-set mining.
  DbscanParams dbscan;

  /// Use only the first `limit_sub_trajectories` periods of history
  /// (0 = all). This is the x-axis of the paper's Fig. 6/10 sweeps.
  int limit_sub_trajectories = 0;
};

/// The discovered regions plus, for every sub-trajectory, which region it
/// was in at each offset — the raw material for transaction building.
class FrequentRegionSet {
 public:
  FrequentRegionSet() = default;

  /// All regions, ascending id.
  const std::vector<FrequentRegion>& regions() const { return regions_; }

  size_t NumRegions() const { return regions_.size(); }

  /// Region by id. Precondition: 0 <= id < NumRegions().
  const FrequentRegion& Region(int id) const;

  /// Ids of the regions at time offset t (ascending j); empty when the
  /// offset has none or is out of range.
  std::vector<int> RegionsAtOffset(Timestamp offset) const;

  /// Number of distinct offsets that have at least one region.
  size_t NumOccupiedOffsets() const;

  /// The region at `offset` containing `location` (inside the MBR). When
  /// several match (MBRs may touch), the one whose centre is nearest is
  /// returned. Returns -1 when none contains it.
  int FindContainingRegion(Timestamp offset, const Point& location) const;

  /// As above but accepts locations within `slack` distance of the MBR,
  /// used when matching noisy query movements to regions.
  int FindNearbyRegion(Timestamp offset, const Point& location,
                       double slack) const;

  /// Internal: appends a region; ids must arrive dense and ascending.
  void AddRegion(FrequentRegion region);

  Timestamp period() const { return period_; }
  void set_period(Timestamp p) { period_ = p; }

 private:
  Timestamp period_ = 0;
  std::vector<FrequentRegion> regions_;
  /// offset -> ids of regions at that offset.
  std::vector<std::vector<int>> by_offset_;
};

/// One sub-trajectory's region visits, offset-ascending: the transaction
/// a pattern miner consumes.
struct RegionVisit {
  Timestamp offset = 0;
  int region_id = 0;
};

/// Output of the discovery pass.
struct FrequentRegionMiningResult {
  FrequentRegionSet region_set;

  /// visits[i] lists sub-trajectory i's region memberships (taken from
  /// the DBSCAN labels, not re-derived geometrically), offset-ascending;
  /// offsets where the location was noise are absent.
  std::vector<std::vector<RegionVisit>> visits;
};

/// Runs the full discovery pass (decompose -> group -> DBSCAN per offset).
/// Propagates errors from decomposition and clustering.
StatusOr<FrequentRegionMiningResult> MineFrequentRegions(
    const Trajectory& trajectory, const FrequentRegionParams& params);

}  // namespace hpm

#endif  // HPM_MINING_FREQUENT_REGION_H_
