// The builder-only offline mining pass: the paper's one-shot discovery
// pipeline (periodic decompose -> DBSCAN per offset -> transactions ->
// Apriori) packaged as a single call. HybridPredictor::Train runs on
// this for bootstrap and eval parity; the serving-time counterpart that
// maintains the same pattern set continuously is mining/incremental_miner.
//
// Keeping the one-shot pass separate (rather than inlined in Train) is
// what lets the incremental path and the differential property suite
// invoke the exact offline semantics over an arbitrary window and
// compare against the incrementally maintained state.

#ifndef HPM_MINING_OFFLINE_MINER_H_
#define HPM_MINING_OFFLINE_MINER_H_

#include <vector>

#include "common/status.h"
#include "geo/trajectory.h"
#include "mining/apriori.h"
#include "mining/frequent_region.h"
#include "mining/transaction.h"

namespace hpm {

/// Everything the one-shot pass produces, in pipeline order.
struct OfflineMineResult {
  /// Region universe + per-sub-trajectory visits (DBSCAN labels).
  FrequentRegionMiningResult discovery;

  /// One transaction per complete sub-trajectory.
  std::vector<Transaction> transactions;

  /// Frequent item sets reduced to prediction-form rules.
  AprioriResult mined;
};

/// Runs discovery, transaction building and Apriori over `history`.
/// Fails when the history is shorter than one period or parameters are
/// invalid; an empty pattern set is not an error.
StatusOr<OfflineMineResult> MineOffline(const Trajectory& history,
                                        const FrequentRegionParams& regions,
                                        const AprioriParams& mining);

/// Maps one period's worth of points (offset t = index) onto an existing
/// region universe with FindNearbyRegion — the geometric re-mapping used
/// when the region universe is held fixed (the paper's §V-B insertion
/// path and the incremental miner's transaction builder, as opposed to
/// the DBSCAN labels discovery itself emits). Offsets whose point
/// matches no region are absent from the result.
std::vector<RegionVisit> MapPeriodPointsToVisits(
    const FrequentRegionSet& regions, const std::vector<Point>& points,
    double slack);

}  // namespace hpm

#endif  // HPM_MINING_OFFLINE_MINER_H_
