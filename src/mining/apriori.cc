#include "mining/apriori.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace hpm {

namespace {

/// Hash for item-set keys (sorted region-id vectors).
struct ItemsetHash {
  size_t operator()(const std::vector<int>& items) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int v : items) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

using SupportMap =
    std::unordered_map<std::vector<int>, int, ItemsetHash>;

/// A frequent item set at some level, items ascending.
struct Itemset {
  std::vector<int> items;
  int support = 0;
};

/// Counts how many transactions contain every item of `items`.
int CountSupport(const std::vector<Transaction>& transactions,
                 const std::vector<int>& items) {
  int support = 0;
  for (const Transaction& t : transactions) {
    bool all = true;
    for (int item : items) {
      if (!t.Contains(item)) {
        all = false;
        break;
      }
    }
    if (all) ++support;
  }
  return support;
}

/// True when the item set (ascending ids == ascending offsets) has
/// strictly increasing offsets, i.e. no two items share a time offset.
bool OffsetsStrictlyIncreasing(const std::vector<int>& items,
                               const FrequentRegionSet& regions) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (regions.Region(items[i]).offset <=
        regions.Region(items[i - 1]).offset) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TrajectoryPattern::ToString() const {
  std::string s;
  for (size_t i = 0; i < premise.size(); ++i) {
    if (i > 0) s += " ^ ";
    s += "R" + std::to_string(premise[i]);
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), " -(%.2f)-> R%d", confidence, consequence);
  s += buf;
  return s;
}

StatusOr<AprioriResult> MineTrajectoryPatterns(
    const std::vector<Transaction>& transactions,
    const FrequentRegionSet& regions, const AprioriParams& params) {
  if (params.min_confidence < 0.0 || params.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0,1]");
  }
  if (params.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (params.max_pattern_length < 2) {
    return Status::InvalidArgument("max_pattern_length must be >= 2");
  }
  if (params.premise_window < 0) {
    return Status::InvalidArgument("premise_window must be >= 0");
  }

  AprioriResult result;
  const size_t num_regions = regions.NumRegions();
  if (num_regions == 0 || transactions.empty()) return result;

  // --- Level 1: frequent single regions. -------------------------------
  std::vector<int> item_support(num_regions, 0);
  for (const Transaction& t : transactions) {
    for (int item : t.items()) ++item_support[static_cast<size_t>(item)];
  }
  std::vector<Itemset> previous_level;
  for (size_t id = 0; id < num_regions; ++id) {
    if (item_support[id] >= params.min_support) {
      previous_level.push_back(
          {{static_cast<int>(id)}, item_support[id]});
    }
  }
  result.stats.num_frequent_itemsets += previous_level.size();

  // Support lookups for rule confidence (and subset pruning).
  SupportMap all_supports;
  for (const Itemset& s : previous_level) {
    all_supports.emplace(s.items, s.support);
  }

  std::vector<Itemset> all_frequent_rules_source;  // size >= 2 item sets

  // --- Levels k >= 2: join, prune, count. ------------------------------
  for (int k = 2; k <= params.max_pattern_length && previous_level.size() > 1;
       ++k) {
    std::vector<Itemset> current_level;
    // previous_level is sorted lexicographically (construction order).
    for (size_t i = 0; i < previous_level.size(); ++i) {
      const std::vector<int>& a_items = previous_level[i].items;
      // For k >= 3 the candidate's premise is exactly `a`; hoist the
      // premise-window check out of the join so wide-span prefixes are
      // skipped before candidate construction.
      if (params.premise_window > 0 && k >= 3) {
        const Timestamp span =
            regions.Region(a_items.back()).offset -
            regions.Region(a_items.front()).offset;
        if (span > params.premise_window) continue;
      }
      for (size_t j = i + 1; j < previous_level.size(); ++j) {
        const std::vector<int>& a = previous_level[i].items;
        const std::vector<int>& b = previous_level[j].items;
        // Classic Apriori join: equal prefixes, differing last item.
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) {
          // Sorted order means no later j can share the prefix either.
          break;
        }
        std::vector<int> candidate = a;
        candidate.push_back(b.back());

        // Trajectory constraint: strictly increasing offsets. (Pruning
        // rule 1 applied during generation — an item set that is not a
        // time-ordered sequence can never form a valid pattern.)
        if (!OffsetsStrictlyIncreasing(candidate, regions)) continue;

        // Premise-window constraint: the first k-1 items will be the
        // premise; bound their offset span.
        if (params.premise_window > 0 && candidate.size() >= 3) {
          const Timestamp first =
              regions.Region(candidate.front()).offset;
          const Timestamp last_premise =
              regions.Region(candidate[candidate.size() - 2]).offset;
          if (last_premise - first > params.premise_window) continue;
        }

        // Downward closure: every (k-1)-subset must be frequent.
        bool closed = true;
        if (k > 2) {
          std::vector<int> subset(candidate.size() - 1);
          for (size_t drop = 0; drop + 2 < candidate.size() && closed;
               ++drop) {
            size_t idx = 0;
            for (size_t m = 0; m < candidate.size(); ++m) {
              if (m != drop) subset[idx++] = candidate[m];
            }
            if (all_supports.find(subset) == all_supports.end()) {
              // The subset may have been excluded by the window
              // constraint rather than support; verify by counting.
              if (CountSupport(transactions, subset) < params.min_support) {
                closed = false;
              }
            }
          }
        }
        if (!closed) continue;

        ++result.stats.num_candidates_counted;
        const int support = CountSupport(transactions, candidate);
        if (support >= params.min_support) {
          current_level.push_back({std::move(candidate), support});
        }
      }
    }
    result.stats.num_frequent_itemsets += current_level.size();
    for (const Itemset& s : current_level) {
      all_supports.emplace(s.items, s.support);
      all_frequent_rules_source.push_back(s);
    }
    previous_level = std::move(current_level);
  }

  // --- Rule generation. -------------------------------------------------
  for (const Itemset& s : all_frequent_rules_source) {
    const size_t k = s.items.size();

    // The single prediction-form rule: premise = all but the last
    // (max-offset) item, consequence = last item.
    std::vector<int> premise(s.items.begin(), s.items.end() - 1);
    const auto premise_it = all_supports.find(premise);
    const int premise_support = premise_it != all_supports.end()
                                    ? premise_it->second
                                    : CountSupport(transactions, premise);
    ++result.stats.rules_evaluated;
    const double confidence =
        static_cast<double>(s.support) / premise_support;
    if (confidence >= params.min_confidence) {
      TrajectoryPattern p;
      p.premise = std::move(premise);
      p.consequence = s.items.back();
      p.confidence = confidence;
      p.support = s.support;
      result.patterns.push_back(std::move(p));
      ++result.stats.patterns_emitted;
    }

    // Ablation accounting: how many rules classic (unpruned) Apriori
    // would additionally have produced from this item set.
    if (!params.enable_pruning) {
      const size_t num_partitions = (size_t{1} << k) - 2;
      for (size_t mask = 1; mask <= num_partitions; ++mask) {
        std::vector<int> cons, prem;
        for (size_t m = 0; m < k; ++m) {
          if (mask & (size_t{1} << m)) {
            cons.push_back(s.items[m]);
          } else {
            prem.push_back(s.items[m]);
          }
        }
        // Skip the valid prediction-form rule counted above.
        if (cons.size() == 1 && cons[0] == s.items.back()) continue;

        const auto it = all_supports.find(prem);
        const int psupp = it != all_supports.end()
                              ? it->second
                              : CountSupport(transactions, prem);
        if (psupp <= 0) continue;
        const double c = static_cast<double>(s.support) / psupp;
        if (c < params.min_confidence) continue;
        if (cons.size() > 1) {
          ++result.stats.rules_pruned_multi_consequence;
        } else {
          ++result.stats.rules_pruned_time_order;
        }
      }
    }
  }
  return result;
}

}  // namespace hpm
