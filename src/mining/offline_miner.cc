#include "mining/offline_miner.h"

#include <utility>

namespace hpm {

StatusOr<OfflineMineResult> MineOffline(const Trajectory& history,
                                        const FrequentRegionParams& regions,
                                        const AprioriParams& mining) {
  OfflineMineResult result;

  StatusOr<FrequentRegionMiningResult> discovery =
      MineFrequentRegions(history, regions);
  if (!discovery.ok()) return discovery.status();
  result.discovery = std::move(*discovery);

  result.transactions = BuildTransactions(result.discovery);

  StatusOr<AprioriResult> mined = MineTrajectoryPatterns(
      result.transactions, result.discovery.region_set, mining);
  if (!mined.ok()) return mined.status();
  result.mined = std::move(*mined);
  return result;
}

std::vector<RegionVisit> MapPeriodPointsToVisits(
    const FrequentRegionSet& regions, const std::vector<Point>& points,
    double slack) {
  std::vector<RegionVisit> visits;
  for (size_t t = 0; t < points.size(); ++t) {
    const int region = regions.FindNearbyRegion(
        static_cast<Timestamp>(t), points[t], slack);
    if (region >= 0) {
      visits.push_back({static_cast<Timestamp>(t), region});
    }
  }
  return visits;
}

}  // namespace hpm
