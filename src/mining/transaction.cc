#include "mining/transaction.h"

#include <algorithm>

namespace hpm {

Transaction::Transaction(const std::vector<RegionVisit>& visits,
                         size_t num_regions)
    : bits_(num_regions) {
  items_.reserve(visits.size());
  for (const RegionVisit& v : visits) {
    HPM_CHECK(v.region_id >= 0 &&
              static_cast<size_t>(v.region_id) < num_regions);
    if (!bits_.Test(static_cast<size_t>(v.region_id))) {
      bits_.Set(static_cast<size_t>(v.region_id));
      items_.push_back(v.region_id);
    }
  }
  std::sort(items_.begin(), items_.end());
}

std::vector<Transaction> BuildTransactions(
    const FrequentRegionMiningResult& mining_result) {
  const size_t num_regions = mining_result.region_set.NumRegions();
  std::vector<Transaction> transactions;
  transactions.reserve(mining_result.visits.size());
  for (const auto& visits : mining_result.visits) {
    transactions.emplace_back(visits, num_regions);
  }
  return transactions;
}

std::vector<int> MapMovementsToRegions(const FrequentRegionSet& regions,
                                       const std::vector<TimedPoint>& recent,
                                       double slack) {
  std::vector<int> ids;
  const Timestamp period = regions.period();
  for (const TimedPoint& tp : recent) {
    Timestamp offset = tp.time;
    if (period > 0) {
      offset = tp.time % period;
      if (offset < 0) offset += period;
    }
    const int id = regions.FindNearbyRegion(offset, tp.location, slack);
    if (id >= 0) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace hpm
