// Trajectory-pattern mining: a modified Apriori over region transactions
// (paper §IV).
//
// A trajectory pattern is an association rule
//   R_{t1}^{j1} ∧ ... ∧ R_{tm}^{jm} --c--> R_{tn}^{jn},  t1<...<tm<tn,
// i.e. a time-ordered premise of frequent regions implying a single
// later frequent region with confidence c. The miner applies the paper's
// two pruning rules during generation:
//   1. time-monotonicity — rules that predict past/current positions from
//      future ones are never generated;
//   2. single-region consequence — by Theorem 1, a rule with a
//      multi-region consequence is dominated by its single-region
//      sibling and is never useful for prediction.
// Both can be disabled (enable_pruning=false) to reproduce the paper's
// pruning-effect ablation ("58% of trajectory patterns were reduced").

#ifndef HPM_MINING_APRIORI_H_
#define HPM_MINING_APRIORI_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "mining/frequent_region.h"
#include "mining/transaction.h"

namespace hpm {

/// One mined trajectory pattern (always in the pruned, prediction-ready
/// form: time-ordered premise, single consequence).
struct TrajectoryPattern {
  /// Premise region ids, ascending (region-id order == offset order).
  std::vector<int> premise;

  /// Consequence region id; its offset is strictly greater than every
  /// premise offset.
  int consequence = 0;

  /// Rule confidence c = supp(premise ∪ consequence) / supp(premise).
  double confidence = 0.0;

  /// Number of transactions containing premise ∪ consequence.
  int support = 0;

  /// "R0 ^ R1 -(0.50)-> R3" style rendering.
  std::string ToString() const;
};

/// Miner parameters.
struct AprioriParams {
  /// Rules below this confidence are discarded (paper default 0.3).
  double min_confidence = 0.3;

  /// Item sets must occur in at least this many transactions.
  int min_support = 2;

  /// Maximum items per rule (premise size + 1). The paper's examples use
  /// up to 3 (two-region premises).
  int max_pattern_length = 3;

  /// Maximum offset span of a premise (last premise offset minus first),
  /// 0 = unbounded. Query premises come from a short run of *recent*
  /// movements, so premises spread over wide offset ranges can never
  /// fully match a query; bounding the span keeps level-3+ candidate
  /// generation tractable on dense trajectories without affecting any
  /// reachable prediction. (Documented design decision; see DESIGN.md.)
  Timestamp premise_window = 5;

  /// Apply the paper's two pruning rules (set false only for the
  /// ablation study).
  bool enable_pruning = true;
};

/// Counters describing what the miner did; drives the pruning ablation.
struct AprioriStats {
  size_t num_frequent_itemsets = 0;
  size_t num_candidates_counted = 0;
  /// Rules evaluated against min_confidence (valid, prediction-form ones).
  size_t rules_evaluated = 0;
  /// Rules (passing min_confidence) that pruning rule 1 removed — their
  /// consequence precedes or ties some premise offset.
  size_t rules_pruned_time_order = 0;
  /// Rules (passing min_confidence) that Theorem 1 removed — consequences
  /// with more than one region.
  size_t rules_pruned_multi_consequence = 0;
  /// Patterns surviving all filters.
  size_t patterns_emitted = 0;
};

/// Mining outcome.
struct AprioriResult {
  std::vector<TrajectoryPattern> patterns;
  AprioriStats stats;
};

/// Mines trajectory patterns from transactions. `regions` supplies the
/// offset of each region id (needed for the time-order constraints).
/// Returns InvalidArgument for out-of-domain parameters. With
/// enable_pruning=false the emitted patterns are the same valid ones,
/// but the stats additionally count every rule classic Apriori would have
/// produced, so callers can measure the pruning effect.
StatusOr<AprioriResult> MineTrajectoryPatterns(
    const std::vector<Transaction>& transactions,
    const FrequentRegionSet& regions, const AprioriParams& params);

}  // namespace hpm

#endif  // HPM_MINING_APRIORI_H_
