// Transactions: the item-set view of sub-trajectories consumed by the
// Apriori pattern miner (paper §IV).
//
// Each sub-trajectory becomes one transaction whose items are the
// frequent-region ids it visited. Because region ids are assigned in
// offset order, a transaction's sorted item list is automatically a
// time-ordered region sequence.

#ifndef HPM_MINING_TRANSACTION_H_
#define HPM_MINING_TRANSACTION_H_

#include <vector>

#include "bitset/dynamic_bitset.h"
#include "mining/frequent_region.h"

namespace hpm {

/// One sub-trajectory's region visits as an item set.
class Transaction {
 public:
  /// Creates a transaction over a universe of `num_regions` items from
  /// the given visits (region ids may repeat across offsets if the object
  /// lingers; duplicates collapse in the set view, as in the paper's
  /// association-rule framing).
  Transaction(const std::vector<RegionVisit>& visits, size_t num_regions);

  /// Sorted distinct region ids (== time-offset order).
  const std::vector<int>& items() const { return items_; }

  /// Membership bitmap over region ids for O(1) subset checks.
  const DynamicBitset& bits() const { return bits_; }

  /// True if every id in `subset_bits` is contained here.
  bool ContainsAll(const DynamicBitset& subset_bits) const {
    return bits_.Contains(subset_bits);
  }

  bool Contains(int region_id) const {
    return bits_.Test(static_cast<size_t>(region_id));
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  std::vector<int> items_;
  DynamicBitset bits_;
};

/// Builds one transaction per sub-trajectory from a discovery result.
std::vector<Transaction> BuildTransactions(
    const FrequentRegionMiningResult& mining_result);

/// Maps an object's recent movements onto frequent regions: for each
/// movement, finds the region at its time offset (time mod period) whose
/// MBR contains (or is within `slack` of) the location. Returns the
/// matched region ids, de-duplicated, ascending. This is how a query's
/// premise is derived at prediction time (paper §V-C).
std::vector<int> MapMovementsToRegions(const FrequentRegionSet& regions,
                                       const std::vector<TimedPoint>& recent,
                                       double slack = 0.0);

}  // namespace hpm

#endif  // HPM_MINING_TRANSACTION_H_
