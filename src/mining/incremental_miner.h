// IncrementalMiner: continuous counterpart of the offline Apriori pass.
//
// The offline pipeline (mining/offline_miner.h) fits a model once from a
// static history. Under continuous ingest the store instead feeds every
// report into an IncrementalMiner, which maintains — per object — the
// frequent-region support counts and the Apriori-derived pattern set
// over a sliding window of complete periods, plus a decayed drift score
// that tells the serving layer when the maintained set has diverged
// enough from the published model to justify a background TPT rebuild
// (GeT_Move's incremental maintenance idea applied to this paper's
// pattern language; see docs/ARCHITECTURE.md §incremental mining).
//
// Exactness contract. Window counts are *exact*, not decayed: a new
// transaction increments every constraint-valid item set it contains,
// and the transaction expiring out of the window decrements the same
// sets. Because the offline miner's level-wise generation is complete
// for constraint-valid item sets (both join prefixes of a valid
// frequent set are themselves valid and frequent), an item-set count
// table maintained this way reproduces the offline frequent set — and
// therefore the offline rule set, support and confidence included —
// over the same window and region universe, which is what
// prop_incremental_mining_test proves differentially. Decay applies
// only to the drift score, never to counts.
//
// The exactness guarantee assumes an unbounded candidate table
// (max_candidates = 0). A bound makes the table a lossy cache: the
// lowest-count sets are evicted first (counted by the
// miner.candidates_evicted metric) and an evicted set re-entering the
// table restarts from the transactions that still contain it.
//
// Thread safety: none. The store drives each object's miner under its
// shard writer mutex, exactly like the history it mirrors.

#ifndef HPM_MINING_INCREMENTAL_MINER_H_
#define HPM_MINING_INCREMENTAL_MINER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "geo/trajectory.h"
#include "mining/apriori.h"
#include "mining/frequent_region.h"

namespace hpm {

struct IncrementalMinerOptions {
  /// Complete sub-trajectories retained (the mining window and the
  /// history a rebuild re-mines). 0 = unbounded.
  int window_periods = 16;

  /// Bound on the number of tracked item sets of size >= 2. 0 keeps the
  /// table exact; a bound trades exactness for memory (see header).
  size_t max_candidates = 0;

  /// Per-transaction multiplicative decay of the drift score: calm
  /// periods pull accumulated drift back toward zero.
  double drift_decay = 0.9;

  /// Drift added per support-threshold crossing (a pattern-set
  /// promote/demote event).
  double crossing_weight = 1.0;

  /// Drift added per fully-unmatched period (scaled by the fraction of
  /// the period's points no adopted region contains — the signal that
  /// the region universe itself has gone stale).
  double unmatched_weight = 1.0;

  /// MBR slack when matching points to adopted regions (mirrors
  /// HybridPredictorOptions::region_match_slack).
  double region_match_slack = 0.0;
};

/// Cumulative per-miner accounting, mirrored into the store's miner.*
/// metrics via MinerMetricHooks.
struct MinerStats {
  uint64_t points_observed = 0;
  uint64_t transactions = 0;
  uint64_t unmatched_points = 0;
  uint64_t promoted = 0;
  uint64_t demoted = 0;
  uint64_t candidate_inserts = 0;
  uint64_t candidates_evicted = 0;
};

/// Optional metric sinks (registry counters owned by the store). Null
/// pointers are skipped, so a standalone miner needs no registry.
struct MinerMetricHooks {
  Counter* transactions = nullptr;
  Counter* unmatched_points = nullptr;
  Counter* promoted = nullptr;
  Counter* demoted = nullptr;
  Counter* candidates_evicted = nullptr;
};

class IncrementalMiner {
 public:
  /// `period` is the paper's T; `mining` the Apriori thresholds the
  /// maintained set must agree with (same values the offline rebuild
  /// uses, or the differential guarantee is vacuous).
  IncrementalMiner(IncrementalMinerOptions options, Timestamp period,
                   AprioriParams mining);

  void set_metric_hooks(const MinerMetricHooks& hooks) { hooks_ = hooks; }

  /// Feeds the next report (offset = total_observed() mod period). Every
  /// period-th call completes a sub-trajectory: it enters the window, its
  /// item sets are counted, the oldest window entry expires, and the
  /// drift score advances.
  void Observe(const Point& location);

  /// Installs a (re)built region universe: every window entry is
  /// re-mapped, the count table is re-derived from scratch, and drift
  /// resets to zero. Called right before a rebuilt model is published
  /// (and once at bootstrap).
  void AdoptRegions(const FrequentRegionSet& regions);

  /// Rebuilds miner state from a persisted history: adopts `regions`
  /// (when non-null), then replays every sample through Observe with
  /// drift suppressed up to absolute sample index `adopted_at` (the
  /// store's consumed-samples mark — the point the serving model was
  /// last rebuilt at). Because exact window counts are a pure function
  /// of window contents, the primed miner matches the pre-crash miner's
  /// counts and post-`adopted_at` drift exactly; see
  /// prop_incremental_mining_test's crash/replay property.
  void Prime(const Trajectory& history, size_t adopted_at,
             const FrequentRegionSet* regions);

  /// Decayed divergence score (threshold crossings + unmatched mass).
  double drift() const { return drift_; }

  bool has_regions() const { return regions_.has_value(); }
  const FrequentRegionSet* regions() const {
    return regions_ ? &*regions_ : nullptr;
  }

  /// Absolute samples fed so far (including the current partial period).
  size_t total_observed() const;

  /// Absolute sample index of the last complete period boundary — the
  /// end of what WindowTrajectory() covers.
  size_t window_end() const { return periods_seen_ * period_; }

  /// Complete sub-trajectories currently in the window.
  size_t WindowSize() const { return window_.size(); }

  /// The window's sub-trajectories concatenated oldest-first: the
  /// history a background rebuild re-mines offline.
  Trajectory WindowTrajectory() const;

  /// The maintained rule set, derived from the count table with the
  /// offline rule-generation semantics (premise = all but the max-offset
  /// item, confidence = supp(set)/supp(premise) >= min_confidence).
  /// Returned sorted by (size, items) for deterministic comparison.
  std::vector<TrajectoryPattern> CurrentPatterns() const;

  /// Window support of an item set (ascending ids); 0 when untracked.
  int SupportOf(const std::vector<int>& items) const;

  /// Item sets of size >= 2 currently tracked (the bounded table).
  size_t NumTrackedItemsets() const { return multi_.size(); }

  const MinerStats& stats() const { return stats_; }
  Timestamp period() const { return period_; }

 private:
  struct ItemsetHash {
    size_t operator()(const std::vector<int>& items) const {
      uint64_t h = 0xcbf29ce484222325ULL;
      for (int v : items) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
        h *= 0x100000001b3ULL;
      }
      return static_cast<size_t>(h);
    }
  };

  struct CountEntry {
    int count = 0;
    /// Monotonic touch stamp; the eviction tie-break (older first).
    uint64_t seq = 0;
  };

  struct WindowEntry {
    std::vector<Point> points;
    /// Sorted distinct region ids under the *current* universe.
    std::vector<int> items;
    size_t unmatched = 0;
  };

  void FinalizePeriod();
  /// Maps a complete period's points to sorted distinct items.
  std::vector<int> MapEntry(const std::vector<Point>& points,
                            size_t* unmatched) const;
  /// Applies one transaction's item sets to the counts; returns the
  /// number of min_support crossings (promotes + demotes).
  size_t ApplyCounts(const std::vector<int>& items, int delta);
  /// Invokes `fn` on every constraint-valid item set of `items` with
  /// size in [2, max_pattern_length] (strictly increasing offsets,
  /// premise span bounded) — the offline candidate language.
  template <typename Fn>
  void ForEachValidItemset(const std::vector<int>& items, Fn&& fn) const;
  void EvictOverflow();

  IncrementalMinerOptions options_;
  Timestamp period_;
  AprioriParams mining_;
  MinerMetricHooks hooks_;

  std::optional<FrequentRegionSet> regions_;
  std::vector<Point> partial_;
  std::deque<WindowEntry> window_;
  size_t periods_seen_ = 0;

  std::vector<int> single_counts_;
  std::unordered_map<std::vector<int>, CountEntry, ItemsetHash> multi_;
  uint64_t next_seq_ = 0;

  double drift_ = 0.0;
  /// Transactions ending at or before this absolute sample index do not
  /// move drift (replay below the last rebuild point).
  size_t drift_from_ = 0;

  MinerStats stats_;
};

}  // namespace hpm

#endif  // HPM_MINING_INCREMENTAL_MINER_H_
