#include "mining/frequent_region.h"

#include <algorithm>
#include <limits>

namespace hpm {

const FrequentRegion& FrequentRegionSet::Region(int id) const {
  HPM_CHECK(id >= 0 && static_cast<size_t>(id) < regions_.size());
  return regions_[static_cast<size_t>(id)];
}

std::vector<int> FrequentRegionSet::RegionsAtOffset(Timestamp offset) const {
  if (offset < 0 || static_cast<size_t>(offset) >= by_offset_.size()) {
    return {};
  }
  return by_offset_[static_cast<size_t>(offset)];
}

size_t FrequentRegionSet::NumOccupiedOffsets() const {
  size_t count = 0;
  for (const auto& ids : by_offset_) {
    if (!ids.empty()) ++count;
  }
  return count;
}

int FrequentRegionSet::FindContainingRegion(Timestamp offset,
                                            const Point& location) const {
  return FindNearbyRegion(offset, location, 0.0);
}

int FrequentRegionSet::FindNearbyRegion(Timestamp offset,
                                        const Point& location,
                                        double slack) const {
  if (offset < 0 || static_cast<size_t>(offset) >= by_offset_.size()) {
    return -1;
  }
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int id : by_offset_[static_cast<size_t>(offset)]) {
    const FrequentRegion& r = regions_[static_cast<size_t>(id)];
    if (r.mbr.MinDistance(location) > slack) continue;
    const double d = SquaredDistance(r.center, location);
    if (d < best_dist) {
      best_dist = d;
      best = id;
    }
  }
  return best;
}

void FrequentRegionSet::AddRegion(FrequentRegion region) {
  HPM_CHECK(region.id == static_cast<int>(regions_.size()));
  HPM_CHECK(region.offset >= 0);
  if (static_cast<size_t>(region.offset) >= by_offset_.size()) {
    by_offset_.resize(static_cast<size_t>(region.offset) + 1);
  }
  by_offset_[static_cast<size_t>(region.offset)].push_back(region.id);
  regions_.push_back(std::move(region));
}

StatusOr<FrequentRegionMiningResult> MineFrequentRegions(
    const Trajectory& trajectory, const FrequentRegionParams& params) {
  StatusOr<std::vector<OffsetGroup>> groups = trajectory.GroupByOffset(
      params.period, params.limit_sub_trajectories);
  if (!groups.ok()) return groups.status();

  const size_t num_subs =
      groups->empty() ? 0 : (*groups)[0].locations.size();

  FrequentRegionMiningResult result;
  result.region_set.set_period(params.period);
  result.visits.assign(num_subs, {});

  int next_id = 0;
  std::vector<Point> points;
  for (const OffsetGroup& group : *groups) {
    points.clear();
    points.reserve(group.locations.size());
    for (const GroupedLocation& gl : group.locations) {
      points.push_back(gl.location);
    }
    StatusOr<DbscanResult> clustering = Dbscan(points, params.dbscan);
    if (!clustering.ok()) return clustering.status();

    if (clustering->num_clusters == 0) continue;

    // Build one FrequentRegion per cluster at this offset.
    const int first_id = next_id;
    std::vector<FrequentRegion> offset_regions(
        static_cast<size_t>(clustering->num_clusters));
    for (int j = 0; j < clustering->num_clusters; ++j) {
      FrequentRegion& r = offset_regions[static_cast<size_t>(j)];
      r.id = next_id++;
      r.offset = group.offset;
      r.index_at_offset = j;
    }
    for (size_t i = 0; i < points.size(); ++i) {
      const int label = clustering->labels[i];
      if (label == DbscanResult::kNoise) continue;
      FrequentRegion& r = offset_regions[static_cast<size_t>(label)];
      r.center = r.center + points[i];
      r.mbr.Extend(points[i]);
      ++r.support;
      // Record the sub-trajectory's visit for transaction building.
      result.visits[static_cast<size_t>(group.locations[i].sub_trajectory)]
          .push_back({group.offset, first_id + label});
    }
    for (FrequentRegion& r : offset_regions) {
      HPM_CHECK(r.support > 0);
      r.center = r.center / static_cast<double>(r.support);
      result.region_set.AddRegion(std::move(r));
    }
  }

  // Visits were appended offset-by-offset in ascending order already, but
  // make the invariant explicit and robust.
  for (auto& visit_list : result.visits) {
    std::sort(visit_list.begin(), visit_list.end(),
              [](const RegionVisit& a, const RegionVisit& b) {
                return a.offset < b.offset;
              });
  }
  return result;
}

}  // namespace hpm
